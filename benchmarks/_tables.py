"""Table emission for the benchmark harness.

Every bench computes the series a paper claim predicts, prints it, and
persists it under benchmarks/results/ so EXPERIMENTS.md can cite the
numbers.  pytest-benchmark handles the wall-clock side; these tables are
the round-complexity side (the paper's own metric).
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(name: str, title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [list(r) for r in rows]
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    text = "\n".join(lines)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")
    print("\n" + text)
    return text
