"""Ablations for the design choices DESIGN.md calls out.

1. cclique engine on *dense* contracted instances (where they separate);
2. Rerouting Lemma on/off (naive broadcasting) under skew;
3. path decomposition vs per-edge processing for addition batches
   (one-at-a-time additions = the no-decomposition strategy).
"""

import numpy as np

from _tables import emit_table
from repro.cclique import CCEdge, cc_msf
from repro.comm import naive_broadcasts, scheduled_broadcasts
from repro.core import DynamicMST
from repro.graphs import growing_stream, random_weighted_graph
from repro.sim import KMachineNetwork


def _dense_cc_rounds(k, engine, seed=0):
    rng = np.random.default_rng(seed)
    nv = k + 1
    g = random_weighted_graph(nv, nv * (nv - 1) // 2, rng)
    local = [[] for _ in range(k)]
    for e in g.edges():
        local[int(rng.integers(0, k))].append(CCEdge.make(e.u, e.v, e.key()))
    net = KMachineNetwork(k)
    cc_msf(net, nv, local, engine=engine, rng=rng)
    return net.ledger.rounds


def test_ablation_cc_engine(benchmark):
    rows = []
    for k in (8, 16, 32, 64):
        rows.append((k,) + tuple(
            _dense_cc_rounds(k, e) for e in ("boruvka", "lotker", "sample_gather")
        ))
    emit_table(
        "ablation_cc_engine",
        "Ablation — congested-clique engine on dense contracted instances "
        "(n'=k+1 super-vertices, complete): rounds",
        ["k", "boruvka", "lotker", "sample_gather"],
        rows,
    )
    benchmark(_dense_cc_rounds, 16, "sample_gather")


def test_ablation_rerouting(benchmark):
    rows = []
    for k in (8, 32):
        for B in (4 * k, 16 * k):
            nets = {}
            for name, fn in (("scheduled", scheduled_broadcasts),
                             ("naive", naive_broadcasts)):
                net = KMachineNetwork(k)
                fn(net, [(0, i, 1) for i in range(B)])
                nets[name] = net.ledger.rounds
            rows.append((k, B, nets["scheduled"], nets["naive"],
                         round(nets["naive"] / nets["scheduled"], 1)))
    emit_table(
        "ablation_rerouting",
        "Ablation — Rerouting Lemma vs naive broadcasting under skew",
        ["k", "B", "scheduled", "naive", "naive/scheduled"],
        rows,
    )
    assert all(r[4] >= 2 for r in rows)
    benchmark(scheduled_broadcasts, KMachineNetwork(8), [(0, i, 1) for i in range(32)])


def test_ablation_decomposition(benchmark):
    """Lemma 6.3 decomposition vs per-edge addition processing."""
    rows = []
    for k in (8, 16, 32):
        rng = np.random.default_rng(k)
        g = random_weighted_graph(300, 600, rng)
        batched = DynamicMST.build(g, k, rng=rng, init="free")
        naive = DynamicMST.build(g, k, rng=rng, init="free")
        b_costs, n_costs = [], []
        for batch in growing_stream(g, k, 3, rng):
            b_costs.append(batched.apply_batch(batch).rounds)
            n_costs.append(naive.apply_one_at_a_time(batch).rounds)
        rows.append((k, round(float(np.mean(b_costs))),
                     round(float(np.mean(n_costs))),
                     round(float(np.mean(n_costs)) / float(np.mean(b_costs)), 1)))
    emit_table(
        "ablation_decomposition",
        "Ablation — Lemma 6.3 path decomposition vs per-edge addition "
        "processing (rounds per size-k insertion batch)",
        ["k", "decomposed", "per_edge", "ratio"],
        rows,
    )
    assert rows[-1][3] > 1.5  # the decomposition pays off at larger k
    benchmark(lambda: None)
