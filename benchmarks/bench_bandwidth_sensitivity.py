"""Bandwidth sensitivity: rounds vs the per-link word budget.

The model fixes Θ(log n) bits per link per round; real deployments have
fatter links.  Sweeping ``words_per_round`` shows the protocol's round
count is inversely proportional until the R (dependency-set) term of
Lemma 4.2 floors it — i.e. the measured O(B/k + R) decomposition.
"""

import numpy as np

from _tables import emit_table
from repro.core import DynamicMST
from repro.graphs import churn_stream, random_weighted_graph


def _mean_rounds(words_per_round, n=300, k=12, seed=0):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    dm = DynamicMST.build(g, k, rng=rng, init="free",
                          words_per_round=words_per_round)
    costs = [
        dm.apply_batch(b).rounds
        for b in churn_stream(dm.shadow.copy(), k, 4, rng=rng)
        if b
    ]
    return float(np.mean(costs))


def test_bandwidth_table(benchmark):
    rows = []
    base = None
    for w in (1, 2, 4, 8, 32, 128):
        r = _mean_rounds(w)
        if base is None:
            base = r
        rows.append((w, round(r, 1), round(base / r, 2)))
    emit_table(
        "bandwidth_sensitivity",
        "Rounds per size-k batch vs per-link words/round (n=300, k=12)",
        ["words_per_round", "mean_rounds", "speedup_vs_1"],
        rows,
    )
    by = {r[0]: r[1] for r in rows}
    assert by[8] < by[1] / 3          # bandwidth helps
    assert by[128] >= by[32] * 0.5    # ...until the R term floors it
    assert by[128] > 5                # supersteps never go below R
    benchmark(_mean_rounds, 4, 100, 8)
