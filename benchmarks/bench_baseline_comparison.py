"""Cross-engine comparison: batch-dynamic vs one-at-a-time vs recompute.

The headline figure of the reproduction: per-batch rounds for size-k
batches across the three strategies — who wins and by what factor.
"""

import numpy as np

from _tables import emit_table
from repro.baselines import OneAtATimeBaseline, RecomputeBaseline
from repro.core import DynamicMST
from repro.graphs import churn_stream, random_weighted_graph


def _compare(n, k, seed=0, n_batches=3):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    stream = list(churn_stream(g, k, n_batches, rng=rng))
    dm = DynamicMST.build(g, k, rng=rng, init="free")
    one = OneAtATimeBaseline(g, k, rng=rng)
    rec = RecomputeBaseline(g, k, rng=rng)
    dyn = []
    for batch in stream:
        dyn.append(dm.apply_batch(batch).rounds)
        one.apply_batch(batch)
        rec.apply_batch(batch)
    return (
        float(np.mean(dyn)),
        float(np.mean(one.batch_rounds)),
        float(np.mean(rec.batch_rounds)),
    )


def test_baseline_comparison_table(benchmark):
    rows = []
    for n, k in ((200, 8), (400, 8), (800, 8), (400, 16), (400, 32)):
        d, o, r = _compare(n, k)
        rows.append((n, k, round(d), round(o), round(r),
                     round(o / d, 1), round(r / d, 1)))
    emit_table(
        "baseline_comparison",
        "Batch-dynamic vs one-at-a-time (Italiano-style) vs full recompute "
        "(Theorem 5.8): mean rounds per size-k batch",
        ["n", "k", "batch_dynamic", "one_at_a_time", "recompute",
         "speedup_vs_single", "speedup_vs_recompute"],
        rows,
    )
    for r in rows:
        assert r[2] < r[3] and r[2] < r[4]  # batch-dynamic wins everywhere
    # The baselines cross each other: one-at-a-time scales with k while
    # recompute scales with n/k — by k=32 recompute is cheaper again,
    # exactly the trade-off the batch algorithm removes.
    # Recompute grows with n; batch-dynamic does not.
    by_n = {r[0]: (r[2], r[4]) for r in rows if r[1] == 8}
    assert by_n[800][1] / by_n[200][1] > 2.0
    assert by_n[800][0] / by_n[200][0] < 1.5
    benchmark(_compare, 100, 8, 0, 1)
