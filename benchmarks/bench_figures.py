"""Regenerate the paper's figures as data (Figures 1-4).

Each figure is a worked example, not a measurement; we rebuild the
structure it illustrates and emit the same annotations.
"""

from _tables import emit_table
from repro.core.decomposition import AnchorInfo, build_paths, in_m_prime
from repro.euler import BracketComponents, EulerForest
from repro.graphs import Edge


def test_figure_1_euler_tour(benchmark):
    """Figure 1: an Euler tour over an MST rooted at r, edge labels."""
    edges = [
        Edge(0, 1, 0.1), Edge(0, 2, 0.2), Edge(1, 3, 0.3),
        Edge(1, 4, 0.4), Edge(2, 5, 0.5),
    ]
    ef = EulerForest.build(range(6), edges)
    tid = ef.tour_of[0]
    rows = [
        (f"({e.u},{e.v})", e.e_min, e.e_max,
         f"{e.tail_at(e.e_min)}->{e.head_at(e.e_min)}")
        for e in sorted(ef.tour_edges(tid), key=lambda e: e.e_min)
    ]
    emit_table(
        "figure_1_euler_tour",
        "Figure 1 — Euler tour labels over the example MST (root r = 0)",
        ["edge", "e_in", "e_out", "first_traversal"],
        rows,
    )
    assert [r[1] for r in rows] == sorted(r[1] for r in rows)
    benchmark(EulerForest.build, range(6), edges)


def test_figures_2_3_decomposition(benchmark):
    """Figures 2-3: M -> M' -> M'' with sets A and B.

    The instance: an MST path with a branching vertex, three new edges;
    the decomposition keeps one removable edge per path and the shaded
    branch vertex lands in B.
    """
    #       0 - 1 - 2 - 3 - 4      (MST path, (2,19)-style heavy middle)
    #               |
    #               5 - 6          (branch below 2)
    edges = [
        Edge(0, 1, 1.0), Edge(1, 2, 19.0), Edge(2, 3, 2.0), Edge(3, 4, 2.5),
        Edge(2, 5, 1.2), Edge(5, 6, 1.4),
    ]
    ef = EulerForest.build(range(7), edges)
    tid = ef.tour_of[0]
    new_edges = [(0, 4, 3.0), (0, 6, 3.5), (4, 6, 4.0)]
    a_vertices = sorted({x for e in new_edges for x in e[:2]})
    size = ef.tour_size[tid]
    anchors, entries = [], []
    for a in a_vertices:
        inc = [e for e in ef.tour_edges(tid) if a in (e.u, e.v)]
        p = min(inc, key=lambda e: e.e_min)
        interval = p.labels() if p.head_at(p.e_min) == a else (-1, size)
        anchors.append(AnchorInfo(a, tid, interval))
        entries.append(interval[0])
    m_prime = [
        (e.u, e.v) for e in ef.tour_edges(tid) if in_m_prime(e.labels(), entries)
    ]
    b_vertices = []
    for x in range(7):
        if x in a_vertices:
            continue
        deg = sum(
            1 for e in ef.tour_edges(tid)
            if x in (e.u, e.v) and in_m_prime(e.labels(), entries)
        )
        if deg >= 3:
            b_vertices.append(x)
            inc = [e for e in ef.tour_edges(tid) if x in (e.u, e.v)]
            p = min(inc, key=lambda e: e.e_min)
            interval = p.labels() if p.head_at(p.e_min) == x else (-1, size)
            anchors.append(AnchorInfo(x, tid, interval))
    paths = build_paths(anchors, {tid: sorted(entries)})
    rows = [
        ("A", str(a_vertices)),
        ("B (shaded vertex)", str(b_vertices)),
        ("M' edges", str(sorted(m_prime))),
        ("path sets (M'' edges)", str(sorted(f"{p.child.vertex}-{p.parent.vertex}" for p in paths))),
    ]
    emit_table(
        "figures_2_3_decomposition",
        "Figures 2-3 — decomposition of the example: M -> M' -> M''",
        ["item", "value"],
        rows,
    )
    assert b_vertices == [2]  # the branching (shaded) vertex
    assert len(paths) <= len(anchors)
    benchmark(build_paths, anchors, {tid: sorted(entries)})


def test_figure_4_brackets(benchmark):
    """Figure 4: deleted-edge label pairs as brackets -> components."""
    bc = BracketComponents([(2, 11), (4, 7), (13, 16)], size=18)
    rows = []
    for lbl in range(18):
        try:
            rows.append((lbl, bc.component_of_label(lbl)))
        except Exception:
            rows.append((lbl, "deleted"))
    emit_table(
        "figure_4_brackets",
        "Figure 4 — component of every Euler label after 3 deletions "
        "(components in Euler-tour order)",
        ["label", "component"],
        rows,
    )
    assert bc.n_components == 4
    benchmark(BracketComponents, [(2, 11), (4, 7), (13, 16)], 18)
