"""The title question: how fast can you update your MST?

Sweeps the stream arrival rate (updates per communication round) against
the batch-dynamic maintainer and reports the steady-state backlog — the
throughput ceiling of Θ(k) per O(1) rounds appears as a sharp phase
transition, and the ceiling scales with k (more machines = more stream).
"""

import numpy as np

from _tables import emit_table
from repro.core import DynamicMST
from repro.core.stream_driver import OnlineChurn, StreamDriver
from repro.graphs import random_weighted_graph


def _run(rate, k, n=200, seed=0, total_rounds=10_000):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    dm = DynamicMST.build(g, k, rng=rng, init="free")
    src = OnlineChurn(g, rng=rng)
    return StreamDriver(dm, src, rate=rate).run(total_rounds)


def test_keeping_up_table(benchmark):
    rows = []
    for k in (8, 32):
        for rate in (0.02, 0.05, 0.1, 0.2, 0.4):
            tr = _run(rate, k)
            rows.append(
                (k, rate, tr.applied, tr.peak_backlog, tr.final_backlog,
                 "DIVERGES" if tr.diverged() else "keeps up")
            )
    emit_table(
        "keeping_up",
        "Can the cluster keep up?  Backlog vs stream rate "
        "(updates per round; ceiling = Θ(k) per O(1) rounds)",
        ["k", "rate", "applied", "peak_backlog", "final_backlog", "verdict"],
        rows,
    )
    by = {(r[0], r[1]): r[5] for r in rows}
    assert by[(8, 0.02)] == "keeps up"
    assert by[(8, 0.4)] == "DIVERGES"
    # More machines push the ceiling up: a rate that sinks k=8 is
    # sustainable at k=32.
    k8_diverge_rates = [r for (kk, r), v in by.items() if kk == 8 and v == "DIVERGES"]
    assert any(by[(32, r)] == "keeps up" for r in k8_diverge_rates), by
    benchmark(_run, 0.05, 8, 100, 0, 600)
