"""L4.2 — B broadcasts in R sets complete in O(B/k + R) rounds.

Series: rounds vs B at fixed k (linear in B/k), and scheduled-vs-naive
under worst-case skew (all broadcasts from one machine).
"""

from _tables import emit_table
from repro.comm import naive_broadcasts, scheduled_broadcasts
from repro.sim import KMachineNetwork


def _rounds(strategy, k, B):
    net = KMachineNetwork(k)
    strategy(net, [(0, i, 1) for i in range(B)])
    return net.ledger.rounds


def test_rerouting_round_table(benchmark):
    k = 16
    rows = []
    for B in (16, 32, 64, 128, 256):
        rows.append((B, B // k, _rounds(scheduled_broadcasts, k, B),
                     _rounds(naive_broadcasts, k, B)))
    emit_table(
        "lemma_4_2_rerouting",
        f"Lemma 4.2 — B skewed broadcasts on k={k} (claim: O(B/k) vs naive Θ(B))",
        ["B", "B/k", "scheduled_rounds", "naive_rounds"],
        rows,
    )
    # Scheduled ~ 2B/k + O(1); naive = B.
    for B, bok, sched, naive in rows:
        assert sched <= 3 * bok + 4
        assert naive == B
    benchmark(_rounds, scheduled_broadcasts, 16, 128)
