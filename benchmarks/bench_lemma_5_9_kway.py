"""L5.9 — k structural MST updates apply in O(1) rounds.

Series: rounds for a batch of b cuts (or links) vs b at fixed k, and vs
k at b = k.
"""

import numpy as np

from _tables import emit_table
from repro.core.init_build import free_init, make_states
from repro.core.scripts import run_structural_batch
from repro.graphs import random_tree
from repro.sim import KMachineNetwork, random_vertex_partition


def _cut_batch_rounds(n, k, b, seed=0):
    rng = np.random.default_rng(seed)
    g = random_tree(n, rng)
    net = KMachineNetwork(k)
    vp = random_vertex_partition(sorted(g.vertices()), k, rng)
    states, tid = make_states(g, vp, net)
    _, tid = free_init(g, vp, states, tid)
    edges = sorted((e.u, e.v) for e in g.edges())[:b]
    before = net.ledger.rounds
    run_structural_batch(net, vp, states, cuts=edges, links=[], next_tour_id=tid)
    return net.ledger.rounds - before


def test_kway_merge_round_table(benchmark):
    rows = []
    for k, b in ((16, 1), (16, 4), (16, 16), (4, 4), (8, 8), (32, 32), (64, 64)):
        rows.append((k, b, _cut_batch_rounds(256, k, b)))
    emit_table(
        "lemma_5_9_kway",
        "Lemma 5.9 — rounds for b structural updates (claim: O(b/k + 1))",
        ["k", "b", "rounds"],
        rows,
    )
    at_bk = {r[0]: r[2] for r in rows if r[0] == r[1]}
    assert at_bk[64] <= 2 * at_bk[4] + 10  # flat at b = k
    benchmark(_cut_batch_rounds, 128, 8, 8)
