"""Process-parallel machine-local computation (GIL workaround demo).

The DESIGN.md substitution notes Python's GIL blocks faithful
shared-memory parallelism; the *local* phases are still parallelizable
across processes.  This measures the fork-pool speedup of the heaviest
local step (per-machine cycle deletion) at sizes where it pays.
"""

import os
import time

import numpy as np

from _tables import emit_table
from repro.sim.executor import parallel_local_map


def _local_msf_size(edge_list):
    from repro.graphs.dsu import DisjointSet

    dsu = DisjointSet()
    kept = 0
    for (w, u, v) in sorted(edge_list):
        if dsu.union(u, v):
            kept += 1
    return kept


def _inputs(k, m, seed=0):
    rng = np.random.default_rng(seed)
    return [
        [
            (float(rng.random()), int(rng.integers(0, 500)), int(rng.integers(500, 1000)))
            for _ in range(m)
        ]
        for _ in range(k)
    ]


def test_parallel_local_table(benchmark):
    rows = []
    for k, m in ((8, 2_000), (8, 40_000)):
        inputs = _inputs(k, m)
        t0 = time.perf_counter()
        seq = [_local_msf_size(x) for x in inputs]
        t_seq = time.perf_counter() - t0
        workers = min(4, os.cpu_count() or 1)
        t0 = time.perf_counter()
        par = parallel_local_map(_local_msf_size, inputs, workers=workers)
        t_par = time.perf_counter() - t0
        assert par == seq
        rows.append((k, m, workers, f"{t_seq*1e3:.0f}ms", f"{t_par*1e3:.0f}ms",
                     round(t_seq / max(t_par, 1e-9), 2)))
    emit_table(
        "parallel_local",
        "Machine-local cycle deletion: sequential vs fork-pool",
        ["machines", "edges_per_machine", "workers", "sequential", "parallel",
         "speedup"],
        rows,
    )
    benchmark(parallel_local_map, _local_msf_size, _inputs(4, 2000), 2)
