"""Query protocol costs: connectivity, batched connectivity, bottleneck.

Not a paper table (the paper does not discuss queries) but the natural
companion claim: the maintained structure answers in O(1) rounds, with
batching amortizing like updates do.
"""

import numpy as np

from _tables import emit_table
from repro.core import DynamicMST
from repro.graphs import random_weighted_graph


def _costs(n=400, k=16, seed=0):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    dm = DynamicMST.build(g, k, rng=rng, init="free")
    out = {}
    before = dm.net.ledger.rounds
    dm.connected(1, n // 2)
    out["connectivity(1)"] = dm.net.ledger.rounds - before
    before = dm.net.ledger.rounds
    dm.batch_connected([(i, i + n // 2) for i in range(min(64, n // 2 - 1))])
    out["connectivity(64 batched)"] = dm.net.ledger.rounds - before
    before = dm.net.ledger.rounds
    dm.bottleneck_edge(0, n - 1)
    out["bottleneck"] = dm.net.ledger.rounds - before
    before = dm.net.ledger.rounds
    dm.lca(3, n - 2)
    out["lca"] = dm.net.ledger.rounds - before
    before = dm.net.ledger.rounds
    dm.distributed_weight()
    out["forest_weight"] = dm.net.ledger.rounds - before
    return out


def test_query_cost_table(benchmark):
    rows = []
    for k in (8, 32):
        costs = _costs(k=k)
        for name in sorted(costs):
            rows.append((k, name, costs[name]))
    emit_table(
        "query_costs",
        "Read-query round costs over the maintained structure (n=400)",
        ["k", "query", "rounds"],
        rows,
    )
    by = {(r[0], r[1]): r[2] for r in rows}
    # O(1) single queries; 64 batched cost << 64 singles.
    assert by[(32, "connectivity(1)")] <= by[(8, "connectivity(1)")] + 4
    assert by[(32, "connectivity(64 batched)")] <= 20 * by[(32, "connectivity(1)")]
    benchmark(_costs, 200, 8)
