"""Where do the rounds go?  Per-phase breakdown of the batch protocols.

Uses the ledger's nested phase attribution to decompose the cost of a
size-k addition batch and a size-k deletion batch into their protocol
steps — the engineering view behind the O(1) claims.
"""

import numpy as np

from _tables import emit_table
from repro.core import DynamicMST
from repro.graphs import growing_stream, random_weighted_graph, shrinking_stream


def _phase_profile(kind, n=400, k=16, seed=0, n_batches=4):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    dm = DynamicMST.build(g, k, rng=rng, init="free")
    stream_fn = growing_stream if kind == "add" else shrinking_stream
    for batch in stream_fn(dm.shadow.copy(), k, n_batches, rng):
        dm.apply_batch(batch)
    phases = {
        name: stats.rounds / n_batches
        for name, stats in dm.net.ledger.phases.items()
        if name.startswith(kind)
    }
    return phases


def test_round_breakdown_table(benchmark):
    rows = []
    for kind in ("add", "del"):
        phases = _phase_profile(kind)
        total = sum(phases.values())
        for name in sorted(phases):
            rows.append(
                (kind, name.split(".", 1)[1], round(phases[name], 1),
                 f"{100 * phases[name] / total:.0f}%")
            )
        rows.append((kind, "TOTAL", round(total, 1), "100%"))
    emit_table(
        "round_breakdown",
        "Per-phase rounds of one size-k batch (k=16, n=400, mean of 4)",
        ["batch kind", "phase", "rounds", "share"],
        rows,
    )
    # The structural update (Lemma 5.9) must not dominate asymptotically
    # differently from the rest — all phases are O(1) at b = k.
    assert all(r[2] < 400 for r in rows)
    benchmark(_phase_profile, "add", 100, 8, 0, 1)
