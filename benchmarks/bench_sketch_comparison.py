"""Comparison: Euler-tour exact MST vs sketch-based connectivity.

The related work (Dhulipala et al.) maintains batch-dynamic
*connectivity* with AGM sketches; the paper's remark is that its exact
MST needs no sketching outside the deletion subroutine.  This bench puts
numbers on the trade: per-vertex state (words) and query capability.
"""

import numpy as np

from _tables import emit_table
from repro.cclique import SketchConnectivity
from repro.core import DynamicMST
from repro.graphs import random_weighted_graph
from repro.sim.message import WORDS_ET_EDGE


def test_sketch_vs_euler_state_table(benchmark):
    rows = []
    for n in (64, 256, 1024):
        rng = np.random.default_rng(n)
        g = random_weighted_graph(n, 3 * n, rng)
        dm = DynamicMST.build(g, 8, rng=rng, init="free")
        # Euler per-vertex state: MST incidences + one witness per vertex.
        euler_words = sum(
            WORDS_ET_EDGE * (len(st.mst) + len(st.witness)) for st in dm.states
        ) / n
        sc = SketchConnectivity(g, rng=rng)
        sc.components()
        sketch_words = sc.words_per_vertex()
        rows.append((n, round(euler_words, 1), sketch_words,
                     "exact MST + weights", "connectivity only"))
    emit_table(
        "sketch_comparison",
        "Euler-tour exact MST vs AGM-sketch connectivity: per-vertex words",
        ["n", "euler_words_per_vertex", "sketch_words_per_vertex",
         "euler_answers", "sketch_answers"],
        rows,
    )
    # Sketches pay polylog^2 words for a weaker answer.
    for r in rows:
        assert r[2] > r[1]
    benchmark(lambda: SketchConnectivity(
        random_weighted_graph(64, 128, 0), rng=0).components())
