"""T6.1 (space) — peak per-machine words ≤ const · max(k, m/k + Δ).

Series: measured peak vs the bound across workload shapes, including the
max-degree star stress.
"""

import numpy as np

from _tables import emit_table
from repro.core import DynamicMST
from repro.graphs import churn_stream, powerlaw_graph, random_weighted_graph, star_graph


def _peak(graph, k, seed=0, batches=4):
    rng = np.random.default_rng(seed)
    dm = DynamicMST.build(graph, k, rng=rng, init="free")
    for batch in churn_stream(dm.shadow.copy(), k, batches, rng=rng):
        dm.apply_batch(batch)
    bound = max(k, graph.m // k + graph.max_degree())
    return dm.peak_space_words(), bound


def test_space_table(benchmark):
    rng = np.random.default_rng(0)
    cases = [
        ("uniform", random_weighted_graph(200, 1000, rng), 8),
        ("uniform_k32", random_weighted_graph(200, 1000, rng), 32),
        ("powerlaw", powerlaw_graph(200, attach=3, rng=rng), 8),
        ("star", star_graph(150, rng=rng), 8),
    ]
    rows = []
    for name, g, k in cases:
        peak, bound = _peak(g, k)
        rows.append((name, k, g.m, g.max_degree(), bound, peak,
                     round(peak / bound, 2)))
    emit_table(
        "space_usage",
        "Theorem 6.1 (space) — peak machine words vs max(k, m/k + Δ)",
        ["workload", "k", "m", "Δ", "bound", "peak_words", "ratio"],
        rows,
    )
    assert all(r[6] <= 40 for r in rows)  # constant-factor overhead
    benchmark(_peak, random_weighted_graph(100, 400, 1), 8)
