"""T4.1 — Lenzen routing and sorting run in O(1) rounds.

Series: rounds vs k at full load (k messages/keys per machine).  The
claim holds if the curve flattens; wall-clock tracks simulator throughput.
"""

import numpy as np

from _tables import emit_table
from repro.comm import lenzen_route, lenzen_sort
from repro.sim import KMachineNetwork, Message


def _route_rounds(k, seed=0):
    net = KMachineNetwork(k)
    msgs = [
        Message(s, (s + j + 1) % k, (s, j), 1)
        for s in range(k)
        for j in range(k - 1)
    ]
    lenzen_route(net, msgs)
    return net.ledger.rounds


def _sort_rounds(k, seed=0):
    net = KMachineNetwork(k)
    rng = np.random.default_rng(seed)
    items = [[float(x) for x in rng.random(k)] for _ in range(k)]
    lenzen_sort(net, items)
    return net.ledger.rounds


def test_lenzen_round_table(benchmark):
    ks = [4, 8, 16, 32, 64, 128]
    rows = [(k, _route_rounds(k), _sort_rounds(k)) for k in ks]
    emit_table(
        "theorem_4_1_lenzen",
        "Theorem 4.1 — Lenzen routing/sorting rounds at full load (claim: O(1))",
        ["k", "route_rounds", "sort_rounds"],
        rows,
    )
    # O(1) claim: 32x more machines, bounded round growth.
    assert rows[-1][1] <= 2 * rows[1][1] + 8
    assert rows[-1][2] <= 2 * rows[1][2] + 8
    benchmark(_sort_rounds, 32)
