"""T5.1 — one update in O(1) rounds, independent of n.

Series: mean rounds per single update vs n and vs k.
"""

import numpy as np

from _tables import emit_table
from repro.core import DynamicMST
from repro.graphs import churn_stream, random_weighted_graph


def _mean_single_rounds(n, k, seed=0, updates=16):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    dm = DynamicMST.build(g, k, rng=rng, init="free")
    costs = [
        dm.apply_one_at_a_time(b).rounds
        for b in churn_stream(dm.shadow.copy(), 1, updates, rng=rng)
        if b
    ]
    return float(np.mean(costs))


def test_single_update_round_table(benchmark):
    rows = []
    for n, k in ((64, 8), (256, 8), (1024, 8), (256, 4), (256, 16), (256, 32)):
        rows.append((n, k, round(_mean_single_rounds(n, k), 1)))
    emit_table(
        "theorem_5_1_single_update",
        "Theorem 5.1 — rounds per single update (claim: O(1), no n dependence)",
        ["n", "k", "mean_rounds_per_update"],
        rows,
    )
    by_n = {r[0]: r[2] for r in rows if r[1] == 8}
    assert by_n[1024] <= 1.6 * by_n[64]
    benchmark(_mean_single_rounds, 128, 8, 0, 4)
