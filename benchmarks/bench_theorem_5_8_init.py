"""T5.8 — MST construction + Euler init in O(n/k + log n) rounds.

Series: init rounds vs n at fixed k (linear), vs k at fixed n (inverse);
plus the fast-vs-reference init wall-clock table in the same schema as
the trajectory harness (``fast_path_speedup`` / ``tools/bench_run.py``),
digest-checked.
"""

import time

import numpy as np

from _tables import emit_table
from repro.core import DynamicMST
from repro.graphs import random_weighted_graph


def _init_rounds(n, k, seed=0):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    dm = DynamicMST.build(g, k, rng=rng, init="distributed")
    return dm.init_rounds


def _fast_vs_reference_init(n, k, seed=0):
    """Same build on both engines; returns (ref_s, fast_s, digest)."""
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    wall = []
    digests = []
    for fast in (False, True):
        t0 = time.perf_counter()
        dm = DynamicMST.build(g, k, rng=np.random.default_rng(seed),
                              init="distributed", fast=fast)
        wall.append(time.perf_counter() - t0)
        dm.check()
        digests.append(dm.net.ledger.digest())
    assert digests[0] == digests[1], "fast init charged a different ledger"
    return wall[0], wall[1], digests[0]


def test_init_round_table(benchmark):
    rows = []
    for n, k in ((128, 8), (256, 8), (512, 8), (1024, 8), (512, 4), (512, 16), (512, 32)):
        r = _init_rounds(n, k)
        rows.append((n, k, n // k, r, round(r / (n / k), 2)))
    emit_table(
        "theorem_5_8_init",
        "Theorem 5.8 — initialisation rounds (claim: O(n/k + log n))",
        ["n", "k", "n/k", "rounds", "rounds_per_(n/k)"],
        rows,
    )
    # Linear in n at fixed k; inverse in k at fixed n.
    per_unit = [r[4] for r in rows]
    assert max(per_unit) <= 3 * min(per_unit)
    benchmark(_init_rounds, 128, 8)


def test_init_fast_path_table():
    """Columnar init vs scalar reference, byte-identical ledgers.

    Same schema as ``fast_path_speedup`` (the trajectory harness's
    reference/fast/speedup/digest columns), so EXPERIMENTS.md can cite
    init and update speedups side by side.
    """
    rows = []
    for name, n, k in (("small", 512, 8), ("medium", 1024, 8), ("large", 2048, 16)):
        ref_s, fast_s, digest = _fast_vs_reference_init(n, k)
        rows.append((name, n, k, round(ref_s, 3), round(fast_s, 3),
                     round(ref_s / max(fast_s, 1e-9), 2), digest[:12]))
    emit_table(
        "theorem_5_8_init_fast",
        "Theorem 5.8 init — columnar fast path vs scalar reference "
        "(identical ledger digests)",
        ["scenario", "n", "k", "reference_s", "fast_s", "speedup_x",
         "ledger_digest"],
        rows,
    )
    # The vectorized scan must win clearly once n is non-trivial.
    assert rows[-1][5] >= 2.0, rows
