"""T5.8 — MST construction + Euler init in O(n/k + log n) rounds.

Series: init rounds vs n at fixed k (linear), vs k at fixed n (inverse).
"""

import numpy as np

from _tables import emit_table
from repro.core import DynamicMST
from repro.graphs import random_weighted_graph


def _init_rounds(n, k, seed=0):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    dm = DynamicMST.build(g, k, rng=rng, init="distributed")
    return dm.init_rounds


def test_init_round_table(benchmark):
    rows = []
    for n, k in ((128, 8), (256, 8), (512, 8), (1024, 8), (512, 4), (512, 16), (512, 32)):
        r = _init_rounds(n, k)
        rows.append((n, k, n // k, r, round(r / (n / k), 2)))
    emit_table(
        "theorem_5_8_init",
        "Theorem 5.8 — initialisation rounds (claim: O(n/k + log n))",
        ["n", "k", "n/k", "rounds", "rounds_per_(n/k)"],
        rows,
    )
    # Linear in n at fixed k; inverse in k at fixed n.
    per_unit = [r[4] for r in rows]
    assert max(per_unit) <= 3 * min(per_unit)
    benchmark(_init_rounds, 128, 8)
