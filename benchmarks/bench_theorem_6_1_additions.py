"""T6.1 (additions) — k insertions in O(1) rounds, deterministic.

Series: rounds per batch vs batch size b at fixed k (flat to b = k,
linear in b/k beyond) and vs k at b = k (flat).
"""

import numpy as np

from _tables import emit_table
from repro.core import DynamicMST
from repro.graphs import growing_stream, random_weighted_graph


def _mean_add_batch_rounds(n, k, b, seed=0, n_batches=4):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 2 * n, rng)
    dm = DynamicMST.build(g, k, rng=rng, init="free")
    costs = [
        dm.apply_batch(batch).rounds
        for batch in growing_stream(dm.shadow.copy(), b, n_batches, rng)
        if batch
    ]
    return float(np.mean(costs))


def test_addition_round_table(benchmark):
    k = 16
    rows_b = [
        (k, b, round(_mean_add_batch_rounds(400, k, b), 1))
        for b in (1, 2, 4, 8, 16, 32, 64)
    ]
    rows_k = [
        (kk, kk, round(_mean_add_batch_rounds(400, kk, kk), 1))
        for kk in (4, 8, 16, 32, 64)
    ]
    emit_table(
        "theorem_6_1_additions",
        "Theorem 6.1 (additions) — rounds per batch "
        "(claims: flat in b up to k; flat in k at b = k)",
        ["k", "batch", "mean_rounds"],
        rows_b + rows_k,
    )
    flat_k = [r[2] for r in rows_k[2:]]
    assert max(flat_k) <= 1.5 * min(flat_k)
    by_b = {r[1]: r[2] for r in rows_b}
    assert by_b[64] / by_b[16] >= 1.8  # linear regime beyond b = k
    benchmark(_mean_add_batch_rounds, 200, 8, 8, 0, 2)
