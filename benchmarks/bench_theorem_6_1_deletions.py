"""T6.1 (deletions) — k deletions in O(1) rounds w.h.p.

Series: rounds per batch vs k for each congested-clique engine (the
DESIGN.md substitution: sample_gather should be flattest).
"""

import numpy as np

from _tables import emit_table
from repro.core import DynamicMST
from repro.graphs import random_weighted_graph, shrinking_stream


def _mean_del_batch_rounds(n, k, b, engine, seed=0, n_batches=4):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    dm = DynamicMST.build(g, k, rng=rng, init="free", engine=engine)
    costs = [
        dm.apply_batch(batch).rounds
        for batch in shrinking_stream(dm.shadow.copy(), b, n_batches, rng)
        if batch
    ]
    return float(np.mean(costs))


def test_deletion_round_table(benchmark):
    rows = []
    for k in (4, 8, 16, 32):
        row = [k]
        for engine in ("boruvka", "lotker", "sample_gather"):
            row.append(round(_mean_del_batch_rounds(400, k, k, engine), 1))
        rows.append(row)
    emit_table(
        "theorem_6_1_deletions",
        "Theorem 6.1 (deletions) — rounds per size-k batch by engine "
        "(claim: O(1) w.h.p.; JN substituted per DESIGN.md)",
        ["k", "boruvka", "lotker", "sample_gather"],
        rows,
    )
    sg = {r[0]: r[3] for r in rows}
    assert sg[32] <= 1.6 * sg[8]
    benchmark(_mean_del_batch_rounds, 200, 8, 8, "sample_gather", 0, 2)
