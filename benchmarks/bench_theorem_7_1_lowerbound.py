"""T7.1 — batches of size k^(1+δ) force ω(k) total rounds.

Series: per-hard-batch rounds and u-machine ingress vs δ; the entropy
bound Ω(b) words is printed next to the measurement.
"""

import numpy as np

from _tables import emit_table
from repro.graphs import random_weighted_graph
from repro.lowerbound import run_lower_bound_experiment


def test_lower_bound_table(benchmark):
    rng = np.random.default_rng(0)
    g = random_weighted_graph(150, 4000, rng)
    rows = []
    for delta in (0.5, 1.0, 1.5, 2.0):
        meter = run_lower_bound_experiment(g, k=4, delta=delta, rng=0, pairs=3)
        rows.append(
            (4, delta, meter.b,
             round(float(np.mean(meter.hard_rounds)), 1),
             round(float(np.mean(meter.hard_u_ingress)), 1))
        )
    emit_table(
        "theorem_7_1_lowerbound",
        "Theorem 7.1 — adversarial batches of size k^(1+δ): per-hard-batch "
        "cost grows superlinearly vs flat O(1) for size-k batches",
        ["k", "delta", "b=K-2 (entropy bound, words)", "hard_batch_rounds", "u_ingress_words"],
        rows,
    )
    assert rows[-1][3] > rows[0][3]          # bigger δ, more rounds
    assert all(r[4] >= r[2] for r in rows)   # ingress ≥ Ω(b) words
    benchmark(
        run_lower_bound_experiment,
        random_weighted_graph(60, 600, 1), 4, 0.5, 0, 2,
    )
