"""T8.1 — MPC: S updates in O(1) rounds; init in O(log n) rounds.

Series: init rounds vs n (logarithmic) and batch rounds vs batch size up
to S (flat; bandwidth scales with space, not machine count).
"""

import numpy as np

from _tables import emit_table
from repro.graphs import churn_stream, random_weighted_graph
from repro.mpc import MPCDynamicMST


def _mpc_init_rounds(n, k, seed=0):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    dm = MPCDynamicMST.build(g, k, rng=rng)
    return dm.init_rounds


def _mpc_batch_rounds(n, k, b, seed=0, n_batches=4):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    dm = MPCDynamicMST.build(g, k, rng=rng, init="free")
    costs = [
        dm.apply_batch(batch).rounds
        for batch in churn_stream(dm.shadow.copy(), b, n_batches, rng=rng)
        if batch
    ]
    return float(np.mean(costs))


def test_mpc_round_table(benchmark):
    init_rows = [(n, 8, _mpc_init_rounds(n, 8)) for n in (128, 256, 512, 1024)]
    emit_table(
        "theorem_8_1_mpc_init",
        "Theorem 8.1 — MPC initialisation rounds (claim: O(log n), not O(n/S))",
        ["n", "k", "init_rounds"],
        init_rows,
    )
    batch_rows = [
        (400, 8, b, round(_mpc_batch_rounds(400, 8, b), 1)) for b in (4, 16, 64)
    ]
    emit_table(
        "theorem_8_1_mpc_batches",
        "Theorem 8.1 — MPC batch rounds (claim: flat up to S updates/batch)",
        ["n", "k", "batch", "mean_rounds"],
        batch_rows,
    )
    # log-ish init: 8x n, far less than 8x rounds.
    assert init_rows[-1][2] <= 3 * init_rows[0][2]
    # near-flat batches up to S (S ~ 4m/k = 600 here).
    assert batch_rows[-1][3] <= 3 * batch_rows[0][3]
    benchmark(_mpc_init_rounds, 128, 8)
