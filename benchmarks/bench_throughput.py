"""Wall-clock throughput of the simulator (updates/second).

The round counts are the reproduction; this tracks how fast the
simulator itself processes updates, against the single-machine
sequential oracle — the price of simulating k machines faithfully —
and how much the columnar fast path (:mod:`repro.perf`) buys over the
scalar reference engine at identical ledgers.
"""

import os
import time

import numpy as np

from _tables import emit_table
from repro.baselines import SequentialDynamicMST
from repro.core import DynamicMST
from repro.graphs import churn_stream, random_weighted_graph


def _throughput(n, k, batch, n_batches=6, seed=0):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    stream = list(churn_stream(g, batch, n_batches, rng=rng))
    n_updates = sum(len(b) for b in stream)

    dm = DynamicMST.build(g, k, rng=rng, init="free")
    t0 = time.perf_counter()
    for b in stream:
        dm.apply_batch(b)
    t_dm = time.perf_counter() - t0

    seq = SequentialDynamicMST(g)
    t0 = time.perf_counter()
    for b in stream:
        seq.apply_batch(b)
    t_seq = time.perf_counter() - t0
    return n_updates / max(t_dm, 1e-9), n_updates / max(t_seq, 1e-9)


def test_throughput_table(benchmark):
    rows = []
    for n, k in ((300, 8), (1000, 8), (1000, 32), (3000, 16)):
        sim_ups, seq_ups = _throughput(n, k, k)
        rows.append((n, k, round(sim_ups), round(seq_ups),
                     round(seq_ups / sim_ups, 1)))
    emit_table(
        "throughput",
        "Simulator throughput: batch-dynamic updates/second (wall clock)",
        ["n", "k", "simulated_cluster_ups", "sequential_oracle_ups",
         "sim_overhead_x"],
        rows,
    )
    assert all(r[2] > 20 for r in rows)  # usable scale for experiments
    benchmark(_throughput, 200, 8, 8, 2)


def _fast_vs_reference(n, k, batch, n_batches, seed=0):
    """Same trajectory on both engines; returns (ref_ups, fast_ups, digest)."""
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    stream = list(churn_stream(g.copy(), batch, n_batches, rng=rng))
    n_updates = sum(len(b) for b in stream)

    out = []
    digests = []
    for fast in (False, True):
        dm = DynamicMST.build(g, k, rng=np.random.default_rng(seed),
                              init="free", fast=fast)
        t0 = time.perf_counter()
        for b in stream:
            dm.apply_batch(b)
        out.append(n_updates / max(time.perf_counter() - t0, 1e-9))
        dm.check()
        digests.append(dm.net.ledger.digest())
    assert digests[0] == digests[1], "fast path charged a different ledger"
    return out[0], out[1], digests[0]


def test_fast_path_speedup_table():
    """Columnar fast path vs scalar reference at byte-identical ledgers.

    The speedup scales with *steps per structural script* (batch size),
    not with n: both engines are linear in n, but the fast path pays a
    fixed pack/scatter cost per script that amortises over its steps.
    The large row is the headline: batch 64 must be >= 3x (override the
    floor with REPRO_BENCH_MIN_SPEEDUP).
    """
    scenarios = (
        ("small", 300, 8, 8, 4),
        ("wide", 1000, 32, 32, 3),
        ("large", 3000, 16, 64, 3),
    )
    rows = []
    speedups = {}
    for name, n, k, batch, n_batches in scenarios:
        ref_ups, fast_ups, digest = _fast_vs_reference(n, k, batch, n_batches)
        speedups[name] = fast_ups / ref_ups
        rows.append((name, n, k, batch, round(ref_ups), round(fast_ups),
                     round(speedups[name], 2), digest[:12]))
    emit_table(
        "fast_path_speedup",
        "Columnar fast path vs scalar reference (identical ledger digests)",
        ["scenario", "n", "k", "batch", "reference_ups", "fast_ups",
         "speedup_x", "ledger_digest"],
        rows,
    )
    floor = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))
    assert speedups["large"] >= floor, (
        f"large scenario speedup {speedups['large']:.2f}x < {floor}x")
