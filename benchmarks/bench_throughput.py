"""Wall-clock throughput of the simulator (updates/second).

The round counts are the reproduction; this tracks how fast the
simulator itself processes updates, against the single-machine
sequential oracle — the price of simulating k machines faithfully.
"""

import time

import numpy as np

from _tables import emit_table
from repro.baselines import SequentialDynamicMST
from repro.core import DynamicMST
from repro.graphs import churn_stream, random_weighted_graph


def _throughput(n, k, batch, n_batches=6, seed=0):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    stream = list(churn_stream(g, batch, n_batches, rng=rng))
    n_updates = sum(len(b) for b in stream)

    dm = DynamicMST.build(g, k, rng=rng, init="free")
    t0 = time.perf_counter()
    for b in stream:
        dm.apply_batch(b)
    t_dm = time.perf_counter() - t0

    seq = SequentialDynamicMST(g)
    t0 = time.perf_counter()
    for b in stream:
        seq.apply_batch(b)
    t_seq = time.perf_counter() - t0
    return n_updates / max(t_dm, 1e-9), n_updates / max(t_seq, 1e-9)


def test_throughput_table(benchmark):
    rows = []
    for n, k in ((300, 8), (1000, 8), (1000, 32), (3000, 16)):
        sim_ups, seq_ups = _throughput(n, k, k)
        rows.append((n, k, round(sim_ups), round(seq_ups),
                     round(seq_ups / sim_ups, 1)))
    emit_table(
        "throughput",
        "Simulator throughput: batch-dynamic updates/second (wall clock)",
        ["n", "k", "simulated_cluster_ups", "sequential_oracle_ups",
         "sim_overhead_x"],
        rows,
    )
    assert all(r[2] > 20 for r in rows)  # usable scale for experiments
    benchmark(_throughput, 200, 8, 8, 2)
