"""Throughput: scalar vs vectorized Euler label kernels.

The per-machine transforms are the inner loop of every structural batch;
this measures the crossover where the NumPy kernels pay off (the
scale-up path documented in repro/euler/vectorized.py).
"""

import numpy as np

from _tables import emit_table
from repro.euler.labels import SplitSpec, split_label
from repro.euler.vectorized import split_labels


def _scalar(labels, spec):
    return [split_label(int(w), spec) for w in labels]


def _vector(labels, spec):
    return split_labels(labels, spec)


def test_vectorized_throughput_table(benchmark):
    import time

    rows = []
    for n in (100, 10_000, 1_000_000):
        spec = SplitSpec(1, n - 2, n, 0, 1)
        labels = np.array([w for w in range(n) if w not in (1, n - 2)])
        t0 = time.perf_counter()
        _scalar(labels[: min(n, 100_000)], spec)
        t_scalar = (time.perf_counter() - t0) * n / min(n, 100_000)
        t0 = time.perf_counter()
        _vector(labels, spec)
        t_vector = time.perf_counter() - t0
        rows.append((n, f"{t_scalar*1e3:.2f}ms", f"{t_vector*1e3:.2f}ms",
                     round(t_scalar / max(t_vector, 1e-9), 1)))
    emit_table(
        "vectorized_labels",
        "Scalar vs NumPy split-label kernel (per full-tour transform)",
        ["labels", "scalar", "vectorized", "speedup"],
        rows,
    )
    assert rows[-1][3] > 5  # vectorization pays off at scale
    spec = SplitSpec(1, 9_998, 10_000, 0, 1)
    labels = np.array([w for w in range(10_000) if w not in (1, 9_998)])
    benchmark(_vector, labels, spec)
