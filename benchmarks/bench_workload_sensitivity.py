"""Workload sensitivity: per-batch rounds across realistic trace shapes.

Theorem 6.1's O(1) guarantee is worst-case over batches of size ≤ k;
this bench confirms the constant barely moves across structured
workloads (hotspots, cascades, flash crowds, rolling partitions) — the
round cost depends on batch size, not churn structure.
"""

import numpy as np

from _tables import emit_table
from repro.core import DynamicMST
from repro.graphs import churn_stream, random_weighted_graph
from repro.graphs.traces import (
    cascade_stream,
    flash_crowd_stream,
    hotspot_stream,
    rolling_partition_stream,
)


def _mean_rounds(stream_fn, n=300, k=12, seed=0):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(n, 3 * n, rng)
    dm = DynamicMST.build(g, k, rng=rng, init="free")
    costs, sizes = [], []
    for batch in stream_fn(g, rng):
        if batch:
            costs.append(dm.apply_batch(batch).rounds)
            sizes.append(len(batch))
    dm.check()
    return float(np.mean(costs)), float(np.mean(sizes))


WORKLOADS = {
    "uniform_churn": lambda g, rng: churn_stream(g, 12, 5, rng=rng),
    "hotspot": lambda g, rng: hotspot_stream(g, 12, 5, rng=rng),
    "cascade": lambda g, rng: cascade_stream(g, 2, 10, rng=rng),
    "flash_crowd": lambda g, rng: flash_crowd_stream(g, 3, 12, 3, rng=rng),
    "rolling_partition": lambda g, rng: rolling_partition_stream(g, 12, 5, rng=rng),
}


def test_workload_sensitivity_table(benchmark):
    rows = []
    for name in sorted(WORKLOADS):
        mean_rounds, mean_size = _mean_rounds(WORKLOADS[name])
        rows.append((name, round(mean_size, 1), round(mean_rounds),
                     round(mean_rounds / max(mean_size, 1), 1)))
    emit_table(
        "workload_sensitivity",
        "Rounds per batch across workload shapes (n=300, k=12)",
        ["workload", "mean_batch_size", "mean_rounds", "rounds_per_update"],
        rows,
    )
    per_update = [r[3] for r in rows]
    assert max(per_update) <= 8 * min(per_update)
    benchmark(_mean_rounds, WORKLOADS["hotspot"], 100, 8)
