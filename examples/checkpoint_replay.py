"""Scenario: durable maintenance service — checkpoint, crash, resume.

A maintenance service applies update batches from a stream file, writing
a JSON checkpoint after each batch.  We simulate a crash mid-stream and
resume from the checkpoint: the restored cluster state passes the full
consistency audit and finishes the stream bit-identically to an
uninterrupted run.

Run:  python examples/checkpoint_replay.py
"""

import os
import tempfile

import numpy as np

from repro.core import DynamicMST
from repro.core.snapshot import dump, load
from repro.graphs import churn_stream, random_weighted_graph
from repro.graphs.io import read_stream, write_stream
from repro.graphs.mst import msf_key_multiset

rng = np.random.default_rng(3)
g = random_weighted_graph(120, 360, rng)
stream = churn_stream(g, batch_size=8, n_batches=10, rng=rng)

workdir = tempfile.mkdtemp(prefix="repro_ckpt_")
stream_path = os.path.join(workdir, "updates.json")
ckpt_path = os.path.join(workdir, "state.json")
write_stream(stream, stream_path)
print(f"stream written to {stream_path} ({len(stream)} batches)")

# --- uninterrupted reference run -----------------------------------------
ref = DynamicMST.build(g, k=8, rng=0, init="free")
for batch in read_stream(stream_path):
    ref.apply_batch(batch)
print(f"reference run: final weight {ref.total_weight():.4f}")

# --- service run with a crash after batch 5 ------------------------------
svc = DynamicMST.build(g, k=8, rng=0, init="free")
for i, batch in enumerate(read_stream(stream_path)):
    if i == 6:
        print("\n*** simulated crash before batch 6 ***")
        break
    svc.apply_batch(batch)
    dump(svc, ckpt_path)
print(f"last checkpoint covers batches 0..5 "
      f"({os.path.getsize(ckpt_path)} bytes)")

restored = load(ckpt_path)
restored.check()
print("restored state passed the full consistency audit")
for i, batch in enumerate(read_stream(stream_path)):
    if i >= 6:
        restored.apply_batch(batch)
restored.check()

same = msf_key_multiset(restored.msf_edges()) == msf_key_multiset(ref.msf_edges())
print(f"\nresumed run final weight {restored.total_weight():.4f}; "
      f"forest identical to the uninterrupted run: {same}")
