"""The title question, live: how fast can you update your MST?

An update stream arrives at a fixed rate (updates per communication
round) while the cluster maintains the exact MST.  Below the Θ(k)-per-
O(1)-rounds ceiling the backlog stays flat; above it the cluster falls
behind linearly.  Adding machines raises the ceiling — the whole point
of the k-machine result.

Run:  python examples/keeping_up.py
"""

import numpy as np

from repro.core import DynamicMST
from repro.core.stream_driver import OnlineChurn, StreamDriver
from repro.graphs import random_weighted_graph


def run(k, rate, total_rounds=8000, seed=0):
    rng = np.random.default_rng(seed)
    g = random_weighted_graph(200, 600, rng)
    dm = DynamicMST.build(g, k, rng=rng, init="free")
    driver = StreamDriver(dm, OnlineChurn(g, rng=rng), rate=rate)
    return driver.run(total_rounds)


print(f"{'k':>3} {'rate':>6} {'applied':>8} {'final backlog':>13} {'verdict':>10}")
for k in (8, 32):
    for rate in (0.05, 0.1, 0.2):
        tr = run(k, rate)
        verdict = "FALLING BEHIND" if tr.diverged() else "keeps up"
        print(f"{k:>3} {rate:>6} {tr.applied:>8} {tr.final_backlog:>13} {verdict:>14}")

print("\nat k=8 the cluster saturates between 0.05 and 0.1 updates/round;")
print("k=32 absorbs 4x the stream — throughput scales with the cluster,")
print("exactly the O(k)-updates-per-O(1)-rounds claim (and Theorem 7.1")
print("says no algorithm can push the ceiling to k^(1+eps)).")
