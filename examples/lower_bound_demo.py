"""The Theorem 7.1 lower bound, live.

Benign batches of size k cost O(1) rounds.  The adversary instead submits
batches of size k^(1+δ) built from the G_b(X, Y) family with globally
minimal weights, forcing the cluster to re-learn Ω(b) bits at u's machine
on every insertion — per-batch cost grows without bound as δ grows.

Run:  python examples/lower_bound_demo.py
"""

import numpy as np

from repro.core import DynamicMST
from repro.graphs import churn_stream, random_weighted_graph
from repro.lowerbound import conditional_entropy_exact, run_lower_bound_experiment

rng = np.random.default_rng(4)
K = 4

# Benign reference: size-k churn on the same graph.
g = random_weighted_graph(150, 3000, rng)
dm = DynamicMST.build(g, K, rng=rng, init="free")
benign = [dm.apply_batch(b).rounds for b in churn_stream(g, K, 5, rng=rng)]
print(f"benign size-k batches: mean {np.mean(benign):.0f} rounds/batch\n")

print(f"{'delta':>6} {'batch size k^(1+d)':>18} {'b':>4} {'H(Y|X)=2b/3':>12} "
      f"{'hard-batch rounds':>17} {'u-ingress words':>15}")
for delta in (0.5, 1.0, 1.5, 2.0):
    meter = run_lower_bound_experiment(g, k=K, delta=delta, rng=0, pairs=3)
    print(f"{delta:>6} {int(np.ceil(K**(1+delta))):>18} {meter.b:>4} "
          f"{conditional_entropy_exact(meter.b):>12.2f} "
          f"{np.mean(meter.hard_rounds):>17.0f} "
          f"{np.mean(meter.hard_u_ingress):>15.0f}")

print("\nper-batch cost grows superlinearly with the batch size exponent —")
print("no algorithm can keep k^(1+eps) updates per O(1) rounds (Theorem 7.1).")
