"""k-machine vs MPC on one workload: same MSF, different cost scaling.

The k-machine model's bandwidth grows with k; the MPC model's grows with
per-machine space S.  This example runs the identical churn stream on
both and shows (a) bit-identical forests, (b) the differing round
profiles, (c) the differing initialisation behaviour (O(n/k) vs O(log n)).

Run:  python examples/model_comparison.py
"""

import numpy as np

from repro.core import DynamicMST
from repro.graphs import churn_stream, random_weighted_graph
from repro.graphs.mst import msf_key_multiset
from repro.mpc import MPCDynamicMST

rng = np.random.default_rng(11)
g = random_weighted_graph(400, 1200, rng)
stream = list(churn_stream(g, 8, 6, rng=rng))

km = DynamicMST.build(g, 8, rng=rng, init="distributed")
mpc = MPCDynamicMST.build(g, 8, rng=rng)
print(f"init rounds:  k-machine={km.init_rounds} (O(n/k))   "
      f"MPC={mpc.init_rounds} (O(log n))\n")
print(f"{'batch':>5} {'k-machine rounds':>16} {'MPC rounds':>10} {'forests equal':>13}")

for i, batch in enumerate(stream):
    a = km.apply_batch(batch)
    b = mpc.apply_batch(batch)
    same = msf_key_multiset(km.msf_edges()) == msf_key_multiset(mpc.msf_edges())
    print(f"{i:>5} {a.rounds:>16} {b.rounds:>10} {str(same):>13}")

km.check()
mpc.check()
print("\nboth models maintain the identical exact MSF; the MPC run pays "
      "fewer rounds per batch because S > k words move per machine-round.")
