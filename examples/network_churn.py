"""Scenario: maintaining a backbone spanning tree under link churn.

A wide-area network is modelled as a grid of routers with extra random
shortcut links; link weights are latencies.  Links fail and recover in
batches (maintenance windows).  The cluster maintains the minimum-latency
spanning backbone; we compare the paper's batch-dynamic algorithm against
recomputing from scratch each window.

Run:  python examples/network_churn.py
"""

import numpy as np

from repro.baselines import RecomputeBaseline
from repro.core import DynamicMST
from repro.graphs import Update, grid_graph
from repro.graphs.graph import normalize

rng = np.random.default_rng(7)

# 12x12 router grid + 80 shortcut links.
net = grid_graph(12, 12, rng)
n = net.n
added = 0
while added < 80:
    u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
    if u != v and not net.has_edge(u, v):
        net.add_edge(u, v, float(1.0 + rng.random()))  # shortcuts are longer
        added += 1

K = 8
dm = DynamicMST.build(net, K, rng=rng, init="distributed")
rec = RecomputeBaseline(net, K, rng=rng)
print(f"routers={net.n} links={net.m} machines={K}")
print(f"init: {dm.init_rounds} rounds; backbone latency {dm.total_weight():.2f}\n")
print(f"{'window':>6} {'fail':>5} {'repair':>6} {'dyn rounds':>10} "
      f"{'recompute rounds':>16} {'backbone':>9}")

failed: list = []
for window in range(8):
    batch = []
    # Fail up to 4 random live links (not currently failed).
    live = [e for e in dm.shadow.edges()]
    rng.shuffle(live)
    for e in live[:4]:
        batch.append(Update.delete(e.u, e.v))
        failed.append((e.u, e.v, e.weight))
    # Repair up to 3 previously failed links.
    rng.shuffle(failed)
    batch_pairs = {normalize(b.u, b.v) for b in batch}
    repaired = []
    for (u, v, w) in list(failed):
        if len(repaired) == 3:
            break
        if normalize(u, v) not in batch_pairs:
            batch.append(Update.add(u, v, w))
            batch_pairs.add(normalize(u, v))
            repaired.append((u, v, w))
    for r in repaired:
        failed.remove(r)

    rep = dm.apply_batch(batch)
    rec.apply_batch(batch)
    n_fail = sum(1 for b in batch if b.kind == "delete")
    print(f"{window:>6} {n_fail:>5} {len(batch)-n_fail:>6} {rep.rounds:>10} "
          f"{rec.batch_rounds[-1]:>16} {dm.total_weight():>9.2f}")

dm.check()
mean_dyn = np.mean([r.rounds for r in dm.reports])
mean_rec = np.mean(rec.batch_rounds)
print(f"\nmean rounds/window: dynamic={mean_dyn:.0f} recompute={mean_rec:.0f} "
      f"(speedup {mean_rec/mean_dyn:.1f}x) — and identical backbones throughout")
