"""Quickstart: maintain an exact MST over a simulated k-machine cluster.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import DynamicMST
from repro.graphs import Update, random_weighted_graph

rng = np.random.default_rng(0)

# A weighted graph with 200 vertices and 600 edges, distributed over
# k = 8 machines by random vertex partition (the paper's §3 model).
graph = random_weighted_graph(n=200, m=600, rng=rng)
dm = DynamicMST.build(graph, k=8, rng=rng, init="distributed")
print(f"built MST over k={dm.k} machines in {dm.init_rounds} rounds "
      f"(Theorem 5.8: O(n/k + log n))")
print(f"initial MST weight: {dm.total_weight():.3f}")

# A batch of k updates: some deletions, some insertions.
batch = [
    Update.delete(*next(iter(dm.msf_edges())).endpoints),
    Update.add(0, 100, 0.001),
    Update.add(3, 150, 0.002),
    Update.delete(*sorted(dm.msf_edges())[3].endpoints),
]
report = dm.apply_batch(batch)
print(f"\napplied a batch of {report.size} updates in {report.rounds} "
      f"communication rounds (Theorem 6.1: O(1) per size-k batch)")
print(f"new MST weight: {dm.total_weight():.3f}")
print(f"edge (0, 100) in MST: {dm.in_mst(0, 100)}")

# Verify the distributed state against first principles (test helper).
dm.check()
print("\nconsistency check passed: the machines' union is the unique MSF "
      "with a valid Euler-tour labelling")
