"""Scenario: a social-interaction stream in the MPC model.

Interactions (edges weighted by recency/affinity) arrive continuously and
expire after a sliding window — the data-stream setting from the paper's
introduction.  An MPC cluster (Theorem 8.1) maintains the exact minimum
spanning forest of the live interaction graph, which downstream jobs use
as a communication skeleton.

Run:  python examples/social_stream.py
"""

import numpy as np

from repro.graphs import sliding_window_stream
from repro.mpc import MPCDynamicMST

rng = np.random.default_rng(21)

N_USERS = 300
stream = sliding_window_stream(
    n=N_USERS, window=4, batch_size=40, n_batches=12, rng=rng
)

dm = MPCDynamicMST.build(stream.initial, k=8, rng=rng, space=256)
print(f"MPC cluster: k={dm.k} machines, S={dm.space} words each "
      f"(batches of up to S updates per O(1) rounds)")
print(f"{'step':>4} {'arrivals':>8} {'expiries':>8} {'rounds':>7} "
      f"{'live edges':>10} {'forest trees':>12}")

for step, batch in enumerate(stream):
    arrivals = sum(1 for u in batch if u.kind == "add")
    rep = dm.apply_batch(batch)
    n_edges = dm.shadow.m
    n_trees = dm.shadow.n - len(dm.msf_edges())
    print(f"{step:>4} {arrivals:>8} {len(batch)-arrivals:>8} {rep.rounds:>7} "
          f"{n_edges:>10} {n_trees:>12}")

dm.check()
rounds = [r.rounds for r in dm.reports]
print(f"\nsteady-state rounds/batch: {np.mean(rounds[4:]):.0f} "
      f"(flat — batch size stays within S)")
