"""Scenario: multicast-group backbone (dynamic Steiner trees, §9).

A CDN keeps a multicast distribution tree connecting the replicas that
currently subscribe to a stream.  Subscribers join and leave (terminal
churn) while the underlying network's links churn too (edge updates).
The cluster maintains the Steiner subtree of the exact MSF — the paper's
stated future-work direction, built from the same interval predicates as
the batch-addition decomposition.

Run:  python examples/steiner_backbone.py
"""

import numpy as np

from repro.core import DynamicMST
from repro.graphs import churn_stream, gnp_connected_graph
from repro.steiner import DynamicSteinerTree

rng = np.random.default_rng(5)

net = gnp_connected_graph(150, 0.04, rng)
dm = DynamicMST.build(net, k=8, rng=rng, init="free")
subscribers = sorted(int(x) for x in rng.choice(150, size=6, replace=False))
steiner = DynamicSteinerTree(dm, subscribers)

print(f"network: n={net.n} m={net.m}; initial subscribers: {subscribers}")
print(f"backbone: {len(steiner.steiner_edges())} links, "
      f"weight {steiner.weight():.2f}\n")
print(f"{'event':<32} {'rounds':>6} {'links':>6} {'weight':>8} {'groups':>7}")

link_churn = iter(churn_stream(dm.shadow.copy(), 6, 4, rng=rng))
for step in range(8):
    if step % 2 == 0:
        batch = next(link_churn)
        rep = steiner.apply_batch(batch)
        event = f"link churn ({len(batch)} updates)"
    else:
        candidates = [v for v in range(150) if v not in steiner.terminals]
        join = [int(rng.choice(candidates))]
        leave = [int(rng.choice(sorted(steiner.terminals)))] if len(steiner.terminals) > 2 else []
        rep = steiner.update_terminals(add=join, remove=leave)
        event = f"join {join} leave {leave}"
    print(f"{event:<32} {rep.rounds:>6} {len(steiner.steiner_edges()):>6} "
          f"{steiner.weight():>8.2f} {steiner.connected_terminal_groups():>7}")

steiner.dm.check()
print("\nthe backbone is always the exact Steiner subtree of the exact MSF;")
print("membership is a local label test on each machine (zero query rounds).")
