"""Shim so `python setup.py develop` works on offline machines without
the wheel package (pip's editable path needs bdist_wheel)."""

from setuptools import setup

setup()
