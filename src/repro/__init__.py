"""repro — batch-dynamic exact MST for cluster computing.

A production-quality reproduction of *"How fast can you update your MST?
(Dynamic algorithms for cluster computing)"* by Seth Gilbert and Lawrence
Li Er Lu (SPAA 2020).

The public entry points are:

* :class:`repro.core.DynamicMST` — the batch-dynamic MST maintained over a
  simulated k-machine cluster (Theorems 5.1 and 6.1);
* :class:`repro.mpc.MPCDynamicMST` — the MPC-model variant (Theorem 8.1);
* :mod:`repro.graphs` — graph substrate, generators and update streams;
* :mod:`repro.lowerbound` — the Theorem 7.1 adversary and bit-flow meter;
* :mod:`repro.baselines` — recompute / one-at-a-time / sequential oracles.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
per-theorem reproduction results.
"""

from repro._version import __version__

__all__ = ["__version__"]
