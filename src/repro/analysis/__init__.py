"""simlint: model-compliance static analysis for the simulator.

The simulator's scientific claim is only as good as its accounting —
every cross-machine word must be charged, every protocol must be a
deterministic function of (graph, seed), every machine must stay inside
its own state and space budget.  This package enforces those invariants
statically (AST rules SIM001..SIM005, ``python -m repro.analysis``);
:mod:`repro.sim.strict` enforces the same invariants dynamically at
runtime (``Network(strict=True)`` / ``REPRO_STRICT=1``).

See ``docs/static_analysis.md`` for the rule catalog and the suppression
syntax.
"""

from repro.analysis.engine import Report, analyze_source, collect_files, run
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Finding",
    "Report",
    "Rule",
    "analyze_source",
    "collect_files",
    "run",
    "sort_findings",
]
