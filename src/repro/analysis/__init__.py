"""simlint: model-compliance static analysis for the simulator.

The simulator's scientific claim is only as good as its accounting —
every cross-machine word must be charged, every protocol must be a
deterministic function of (graph, seed), every machine must stay inside
its own state and space budget, and the columnar fast paths must put the
*same bytes on the wire* as their scalar fallbacks.  This package
enforces those invariants statically (rules SIM001..SIM009, ``python -m
repro.analysis``); :mod:`repro.sim.strict` enforces the runtime subset
dynamically (``Network(strict=True)`` / ``REPRO_STRICT=1``).

Since v2 the analyzer is whole-program: pass 1
(:mod:`repro.analysis.callgraph`) builds a project symbol table, call
graph, and transitive effect summaries; pass 2 runs flow-sensitive rules
with that project in scope.  Reports serialize to text, JSON, or SARIF
2.1.0; adoption on found debt goes through the baseline ratchet
(:mod:`repro.analysis.baseline`); repeated runs are incremental via
``.simlint_cache/`` (:mod:`repro.analysis.cache`).

See ``docs/static_analysis.md`` for the rule catalog and the suppression
syntax.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.callgraph import (
    CallSite,
    FunctionSummary,
    ModuleSummary,
    Project,
    summarize_module,
)
from repro.analysis.config import SimlintConfig, load_config
from repro.analysis.engine import (
    Report,
    analyze_source,
    build_project,
    collect_files,
    run,
)
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.rules import ALL_RULES, LintContext, Rule
from repro.analysis.sarif import format_sarif, to_sarif

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "CallSite",
    "Finding",
    "FunctionSummary",
    "LintContext",
    "ModuleSummary",
    "Project",
    "Report",
    "Rule",
    "SimlintConfig",
    "analyze_source",
    "build_project",
    "collect_files",
    "format_sarif",
    "load_config",
    "run",
    "sort_findings",
    "summarize_module",
    "to_sarif",
]
