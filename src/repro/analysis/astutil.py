"""Shared AST helpers, model vocabulary, and the rule base classes.

Everything the rule modules (and the call-graph pass) agree on lives
here: how to read a dotted name off an ``ast`` chain, which call tails
count as *communication* and which as *ledger annotation*, and the
:class:`Rule` contract every SIM rule implements.  This module sits
*below* both :mod:`repro.analysis.callgraph` and the
:mod:`repro.analysis.rules` package in the import graph (the rules
package eagerly instantiates its catalog, so nothing the call-graph
pass needs may live inside it).

Rules come in two flavours.  A plain :class:`Rule` sees one module's AST
and nothing else (SIM001..SIM003, SIM005 — their violations are local by
nature).  A rule that opts into the whole-program pass reads
``ctx.project`` — the resolved symbol table, call graph, and transitive
effect summaries built by :mod:`repro.analysis.callgraph` — which is how
SIM004 follows a loop's *call chain* to a send and how SIM009 pairs a
fast-path dispatch with its scalar twin.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.analysis.callgraph import ModuleSummary, Project
    from repro.analysis.config import SimlintConfig

# ----------------------------------------------------------------------
# Model vocabulary shared by rules and the call-graph pass
# ----------------------------------------------------------------------

#: Call tails that put words on the wire (directly or through a comm
#: wrapper).  The call-graph pass seeds its "communicates" effect from
#: this set; SIM004 uses it both directly and transitively.
COMM_TAILS = frozenset({
    "superstep", "superstep_plane", "broadcast", "batched_queries",
    "scheduled_broadcasts", "lenzen_route", "lenzen_sort",
    "tree_broadcast", "tree_converge_cast", "run_structural_batch",
})

#: Call tails that annotate the ledger (attribute rounds to a phase or
#: charge them explicitly).
LEDGER_TAILS = frozenset({"charge_rounds", "phase"})

#: Container-mutating method names (shared by SIM002/SIM005/SIM007).
GROW_METHODS = frozenset({
    "append", "add", "update", "setdefault", "extend", "insert",
})

#: Call tails that gate an execution-backend dispatch (SIM009's dispatch
#: marker, and the call-graph's ``in_fast_gate`` flag):
#: ``fast_path_enabled`` guards the in-process columnar twins,
#: ``parallel_path_enabled`` the shared-memory worker-pool twins.  One
#: scalar function may dispatch through several of these — SIM009 then
#: holds the whole backend-twin family to pairwise parity.
FAST_GATE_TAILS = frozenset({"fast_path_enabled", "parallel_path_enabled"})


def dotted_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a Name/Attribute chain (``net.ledger.phase``) or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_tail(call: ast.Call) -> Optional[str]:
    """Last component of the called name (``phase`` for ``x.y.phase(...)``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def is_literal_nonpositive(node: ast.AST) -> bool:
    """True for a literal ``0``/negative number (a dishonest word cost)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return not isinstance(node.value, bool) and node.value <= 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = node.operand
        return isinstance(operand, ast.Constant) and isinstance(
            operand.value, (int, float)
        )
    return False


def walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def is_phase_with(stmt: ast.stmt) -> bool:
    """Is ``stmt`` a ``with ...phase(...)`` block (a ledger phase scope)?"""
    if not isinstance(stmt, (ast.With, ast.AsyncWith)):
        return False
    return any(
        isinstance(item.context_expr, ast.Call)
        and call_tail(item.context_expr) == "phase"
        for item in stmt.items
    )


def keyword_arg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def has_star_args(call: ast.Call) -> bool:
    return any(isinstance(a, ast.Starred) for a in call.args) or any(
        kw.arg is None for kw in call.keywords
    )


def string_const(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# ----------------------------------------------------------------------
# Rule contract
# ----------------------------------------------------------------------


@dataclass
class LintContext:
    """Everything a rule may see beyond one module's AST.

    ``project`` is the whole-program symbol table / call graph; it is
    always present when the engine runs (even for a single source via
    :func:`repro.analysis.engine.analyze_source`, which builds a
    one-module project), so project rules degrade gracefully to
    intraprocedural behaviour on isolated files.
    """

    path: str
    project: "Project"
    module: "ModuleSummary"
    config: Optional["SimlintConfig"] = None


class Rule:
    """Base class: one stable code, one analysis pass per module."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(
        self, tree: ast.Module, path: str, ctx: Optional[LintContext] = None
    ) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(self, message: str, path: str, node: ast.AST) -> Finding:
        return Finding(
            self.code,
            message,
            path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
        )
