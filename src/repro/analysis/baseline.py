"""Baseline ratchet: adopt the analyzer on code with known findings.

A baseline is a checked-in inventory of accepted findings
(``simlint-baseline.json``).  The gate is a *ratchet*:

* a finding **not** in the baseline fails the run (new debt is barred);
* a finding covered by the baseline is reported as a warning with its
  age, so the backlog stays visible and pay-down is measurable;
* a baseline entry nothing matches anymore is reported too — the debt
  was paid, so the entry must be deleted (``--update-baseline``) or the
  ratchet quietly loosens.

Entries key on ``(code, path, message)`` with a count, *not* on line
numbers: unrelated edits move lines constantly, and a baseline that
churns on every edit trains people to regenerate it blindly — which is
how new findings sneak in.  ``count`` caps how many identical findings
the entry absorbs; the excess fails.
"""

from __future__ import annotations

import datetime
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding, sort_findings

#: Bump when the baseline schema changes shape.
BASELINE_SCHEMA = 1

DEFAULT_BASELINE = "simlint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding class: (code, path, message) × count."""

    code: str
    path: str
    message: str
    count: int
    first_seen: str  #: ISO date the debt was first baselined

    def key(self) -> Tuple[str, str, str]:
        return (self.code, self.path, self.message)

    def age_days(self, today: Optional[datetime.date] = None) -> int:
        today = today or datetime.date.today()
        try:
            seen = datetime.date.fromisoformat(self.first_seen)
        except ValueError:
            return 0
        return max(0, (today - seen).days)


@dataclass
class BaselineResult:
    """Outcome of matching a finding list against a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Tuple[Finding, BaselineEntry]] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)


class Baseline:
    """A loaded baseline file plus the matching/ratchet logic."""

    def __init__(self, entries: List[BaselineEntry], path: str = "") -> None:
        self.path = path
        self.entries = entries
        self._by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
            e.key(): e for e in entries
        }

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"{path}: not a simlint baseline (expected schema "
                f"{BASELINE_SCHEMA})"
            )
        entries = [
            BaselineEntry(
                code=str(e["code"]), path=str(e["path"]),
                message=str(e["message"]), count=int(e["count"]),
                first_seen=str(e["first_seen"]),
            )
            for e in data.get("findings", [])
        ]
        return cls(entries, path=path)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([])

    def apply(
        self, findings: List[Finding], root: Optional[str] = None
    ) -> BaselineResult:
        """Partition ``findings`` into new vs baselined; surface paid debt.

        ``root`` anchors path matching: entries are stored repo-relative,
        so findings from an absolute-path scan still match.
        """
        result = BaselineResult()
        absorbed: Dict[Tuple[str, str, str], int] = {}
        for f in findings:
            key = (f.code, _norm(f.path, root), f.message)
            entry = self._by_key.get(key)
            if entry is not None and absorbed.get(key, 0) < entry.count:
                absorbed[key] = absorbed.get(key, 0) + 1
                result.baselined.append((f, entry))
            else:
                result.new.append(f)
        for entry in self.entries:
            if absorbed.get(entry.key(), 0) < entry.count:
                result.stale.append(entry)
        return result

    def updated_with(
        self,
        findings: List[Finding],
        today: Optional[datetime.date] = None,
        root: Optional[str] = None,
    ) -> "Baseline":
        """A fresh baseline for ``findings``, keeping surviving first_seen."""
        today_iso = (today or datetime.date.today()).isoformat()
        counts: Dict[Tuple[str, str, str], int] = {}
        for f in sort_findings(findings):
            key = (f.code, _norm(f.path, root), f.message)
            counts[key] = counts.get(key, 0) + 1
        entries = [
            BaselineEntry(
                code=code, path=path, message=message, count=n,
                first_seen=(
                    self._by_key[(code, path, message)].first_seen
                    if (code, path, message) in self._by_key
                    else today_iso
                ),
            )
            for (code, path, message), n in sorted(counts.items())
        ]
        return Baseline(entries, path=self.path)

    def write(self, path: Optional[str] = None) -> None:
        out = path or self.path
        payload = {
            "schema": BASELINE_SCHEMA,
            "comment": (
                "simlint baseline — accepted findings (the ratchet). "
                "Regenerate with: python -m repro.analysis <paths> "
                "--update-baseline " + (os.path.basename(out) or DEFAULT_BASELINE)
            ),
            "findings": [
                {
                    "code": e.code, "path": e.path, "message": e.message,
                    "count": e.count, "first_seen": e.first_seen,
                }
                for e in self.entries
            ],
        }
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


def _norm(path: str, root: Optional[str] = None) -> str:
    """Repo-style forward-slash relative path for stable baseline keys."""
    if root is not None and os.path.isabs(path):
        rel = os.path.relpath(path, root)
        if not rel.startswith(".."):
            path = rel
    return os.path.normpath(path).replace(os.sep, "/").lstrip("./")
