"""Incremental analysis cache under ``.simlint_cache/``.

Two layers, invalidated independently:

* **summaries** (pass 1) are keyed per file by ``(mtime, size, sha256)``
  — an untouched file's :class:`~repro.analysis.callgraph.ModuleSummary`
  is rehydrated from JSON instead of re-parsed;
* **findings** (pass 2) are keyed by the file's sha *plus* the project's
  :meth:`~repro.analysis.callgraph.Project.effects_digest` and the
  active-rule signature — an edit anywhere that shifts a transitive
  effect (a new send, a moved ``ledger.phase``) re-lints every file,
  while a comment-only edit re-lints just the file it touched.

The whole cache is dropped when the analyzer ``fingerprint`` (schema
version + rule catalog + ``[tool.simlint]`` config) moves, so a rule
upgrade can never serve stale verdicts.  Corrupt or foreign cache files
are treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.callgraph import ModuleSummary
from repro.analysis.findings import Finding

#: Bump when the summary or findings schema changes shape.
CACHE_SCHEMA = 2

DEFAULT_CACHE_DIR = ".simlint_cache"
_CACHE_FILE = "cache.json"


def file_sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class AnalysisCache:
    """The on-disk cache; all lookups are by repo-relative path."""

    def __init__(self, cache_dir: str, fingerprint: str) -> None:
        self.cache_dir = cache_dir
        self.fingerprint = fingerprint
        self.path = os.path.join(cache_dir, _CACHE_FILE)
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._summaries: Dict[str, Dict[str, Any]] = {}
        self._findings: Dict[str, Dict[str, Any]] = {}
        self._load()

    # -- persistence ----------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if data.get("schema") != CACHE_SCHEMA:
            return
        if data.get("fingerprint") != self.fingerprint:
            return  # rule catalog / config moved: start fresh
        summaries = data.get("summaries", {})
        findings = data.get("findings", {})
        if isinstance(summaries, dict):
            self._summaries = summaries
        if isinstance(findings, dict):
            self._findings = findings

    def save(self) -> None:
        if not self._dirty:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "summaries": self._summaries,
            "findings": self._findings,
        }
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, self.path)
        gitignore = os.path.join(self.cache_dir, ".gitignore")
        if not os.path.exists(gitignore):
            with open(gitignore, "w", encoding="utf-8") as fh:
                fh.write("*\n")
        self._dirty = False

    # -- pass 1: summaries ----------------------------------------------
    def get_summary(
        self, key: str, mtime: float, size: int, sha: str
    ) -> Optional[ModuleSummary]:
        entry = self._summaries.get(key)
        if entry is None:
            self.misses += 1
            return None
        stat_ok = entry.get("mtime") == mtime and entry.get("size") == size
        if not (stat_ok or entry.get("sha") == sha):
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put_summary(
        self, key: str, mtime: float, size: int, sha: str,
        summary: ModuleSummary,
    ) -> None:
        self._summaries[key] = {
            "mtime": mtime, "size": size, "sha": sha,
            "summary": summary.to_dict(),
        }
        self._dirty = True

    # -- pass 2: findings -----------------------------------------------
    def get_findings(
        self, key: str, sha: str, effects_digest: str, rules_sig: str
    ) -> Optional[Tuple[List[Finding], int]]:
        entry = self._findings.get(key)
        if entry is None:
            return None
        if (
            entry.get("sha") != sha
            or entry.get("effects_digest") != effects_digest
            or entry.get("rules_sig") != rules_sig
        ):
            return None
        try:
            findings = [
                Finding(
                    code=str(f["code"]), message=str(f["message"]),
                    path=str(f["path"]), line=int(f["line"]),
                    col=int(f.get("col", 0)),
                )
                for f in entry["findings"]
            ]
            used = int(entry["suppressions_used"])
        except (KeyError, TypeError, ValueError):
            return None
        return findings, used

    def put_findings(
        self, key: str, sha: str, effects_digest: str, rules_sig: str,
        findings: List[Finding], suppressions_used: int,
    ) -> None:
        self._findings[key] = {
            "sha": sha,
            "effects_digest": effects_digest,
            "rules_sig": rules_sig,
            "findings": [f.to_dict() for f in findings],
            "suppressions_used": suppressions_used,
        }
        self._dirty = True

    def drop(self, key: str) -> None:
        self._summaries.pop(key, None)
        self._findings.pop(key, None)
        self._dirty = True
