"""Pass 1 of the two-pass analyzer: symbols, calls, and effects.

One :class:`ModuleSummary` per file captures everything the
flow-sensitive rules need to reason *across* files without re-reading
them: function/method definitions with their parameter lists, the
imports that name other project symbols, every call site (with whether
it sits under a ``with ledger.phase(...)`` and whether it sits under a
``fast_path_enabled()`` gate), and each function's *direct* effects —
does it put words on the wire, does it annotate the ledger, does it
touch space gauges.

A :class:`Project` stitches the summaries together: it resolves
intra-package calls (``from repro.x import f`` / ``import repro.x as
m`` / bare same-module calls / ``self.method``) and then propagates
effects transitively to a fixpoint:

``communicates``
    the function's call chain reaches a communication primitive;
``unphased_comm``
    ...reaches one with **no** dominating ``ledger.phase`` anywhere
    along the chain (the SIM004 condition);
``charges``
    the chain reaches an explicit ledger annotation;
``phase_covered``
    every known project call site of the function is itself inside a
    phase block (or inside a covered function) — the "``ledger.phase``
    two frames up" that legitimately silences SIM004.

Summaries are plain-data (``to_dict``/``from_dict``) so the incremental
cache (:mod:`repro.analysis.cache`) can persist pass 1 per file and
rebuild the whole-program graph without re-parsing unchanged files.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.dataflow import (
    fast_gate_locals,
    is_fast_gate_test,
    phase_dominated_nodes,
)
from repro.analysis.astutil import (
    COMM_TAILS,
    GROW_METHODS,
    LEDGER_TAILS,
    call_tail,
    dotted_name,
    is_phase_with,
    string_const,
)

#: Gauge-touching call tails (the SIM005 vocabulary, reused for the
#: "mutates gauged state" effect summary).
GAUGE_TAILS = frozenset({"set_gauge", "bump_gauge", "_update_gauges", "refresh_gauges"})

#: Pseudo-function name for a module's top-level statements.
MODULE_BODY = "<module>"


@dataclass
class CallSite:
    """One call expression inside one function."""

    line: int
    col: int
    callee: str  #: the dotted text as written (``net.superstep``) or tail
    tail: str  #: last component of the callee
    resolved: Optional[str] = None  #: project qualname, when resolvable
    in_phase: bool = False  #: lexically under a ``with ...phase(...)``
    in_fast_gate: bool = False  #: under an ``if fast_path_enabled():`` branch
    is_twin_return: bool = False  #: gate branch is a bare ``return g(...)``

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line, "col": self.col, "callee": self.callee,
            "tail": self.tail, "resolved": self.resolved,
            "in_phase": self.in_phase, "in_fast_gate": self.in_fast_gate,
            "is_twin_return": self.is_twin_return,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CallSite":
        return cls(
            line=int(d["line"]), col=int(d["col"]), callee=str(d["callee"]),
            tail=str(d["tail"]), resolved=d.get("resolved"),
            in_phase=bool(d["in_phase"]), in_fast_gate=bool(d["in_fast_gate"]),
            is_twin_return=bool(d["is_twin_return"]),
        )


@dataclass
class FunctionSummary:
    """One function/method definition and its direct (local) effects."""

    qualname: str  #: ``repro.mod.Class.method`` / ``repro.mod.func``
    module: str
    name: str
    line: int
    col: int
    params: Tuple[str, ...]
    n_defaults: int
    calls: List[CallSite] = field(default_factory=list)
    direct_comm: bool = False
    direct_unphased_comm: bool = False
    direct_charge: bool = False
    phase_names: Tuple[str, ...] = ()
    touches_gauges: bool = False
    grows_self_state: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname, "module": self.module,
            "name": self.name, "line": self.line, "col": self.col,
            "params": list(self.params), "n_defaults": self.n_defaults,
            "calls": [c.to_dict() for c in self.calls],
            "direct_comm": self.direct_comm,
            "direct_unphased_comm": self.direct_unphased_comm,
            "direct_charge": self.direct_charge,
            "phase_names": list(self.phase_names),
            "touches_gauges": self.touches_gauges,
            "grows_self_state": self.grows_self_state,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=str(d["qualname"]), module=str(d["module"]),
            name=str(d["name"]), line=int(d["line"]), col=int(d["col"]),
            params=tuple(d["params"]), n_defaults=int(d["n_defaults"]),
            calls=[CallSite.from_dict(c) for c in d["calls"]],
            direct_comm=bool(d["direct_comm"]),
            direct_unphased_comm=bool(d["direct_unphased_comm"]),
            direct_charge=bool(d["direct_charge"]),
            phase_names=tuple(d["phase_names"]),
            touches_gauges=bool(d["touches_gauges"]),
            grows_self_state=bool(d["grows_self_state"]),
        )


@dataclass
class ModuleSummary:
    """Pass-1 output for one file."""

    path: str
    modname: str
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path, "modname": self.modname,
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "aliases": dict(self.aliases),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            path=str(d["path"]), modname=str(d["modname"]),
            functions={
                q: FunctionSummary.from_dict(f)
                for q, f in d["functions"].items()
            },
            aliases={str(k): str(v) for k, v in d["aliases"].items()},
        )


# ----------------------------------------------------------------------
# module naming
# ----------------------------------------------------------------------
def module_name_for(path: str, root: Optional[str] = None) -> str:
    """Dotted module name for ``path``.

    Files under a ``src`` directory get their real package name
    (``src/repro/sim/network.py`` → ``repro.sim.network``); everything
    else (tests, tools, fixtures) gets a path-derived pseudo-name so it
    can still own symbols in the project table.
    """
    norm = os.path.normpath(os.path.abspath(path))
    parts = norm.split(os.sep)
    if "src" in parts:
        rel = parts[parts.index("src") + 1:]
    elif root is not None:
        relpath = os.path.relpath(norm, os.path.abspath(root))
        rel = [] if relpath.startswith("..") else relpath.split(os.sep)
    else:
        rel = []
    if not rel:
        rel = parts[-2:]
    stem = [p[:-3] if p.endswith(".py") else p for p in rel]
    if stem and stem[-1] == "__init__":
        stem = stem[:-1]
    return ".".join(p for p in stem if p) or os.path.basename(norm)


# ----------------------------------------------------------------------
# pass 1: summarize one module
# ----------------------------------------------------------------------
class _ModuleSummarizer(ast.NodeVisitor):
    def __init__(self, path: str, modname: str) -> None:
        self.summary = ModuleSummary(path=path, modname=modname)
        self._class_stack: List[str] = []

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.summary.aliases[local] = target
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.summary.aliases[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- definitions ----------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._summarize_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._summarize_function(node)

    def _qualname(self, name: str) -> str:
        scope = ".".join([self.summary.modname, *self._class_stack])
        return f"{scope}.{name}"

    def _summarize_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        params = tuple(
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        )
        fn = FunctionSummary(
            qualname=self._qualname(node.name),
            module=self.summary.modname,
            name=node.name,
            line=node.lineno,
            col=node.col_offset,
            params=params,
            n_defaults=len(args.defaults) + sum(
                1 for d in args.kw_defaults if d is not None
            ),
        )
        _collect_effects(node, fn)
        self.summary.functions[fn.qualname] = fn
        # Nested defs/classes still get their own summaries.
        self._class_stack.append(node.name)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._class_stack.pop()


def _collect_effects(
    func: ast.FunctionDef | ast.AsyncFunctionDef, fn: FunctionSummary
) -> None:
    """Fill ``fn`` with call sites and direct effects from ``func``'s body."""
    phase_nodes = phase_dominated_nodes(func)
    gate_vars = fast_gate_locals(func)
    gate_nodes: Set[int] = set()
    twin_calls: Set[int] = set()
    phase_names: List[str] = []

    for node in ast.walk(func):
        if isinstance(node, ast.If) and is_fast_gate_test(node.test, gate_vars):
            for sub in node.body:
                for inner in ast.walk(sub):
                    gate_nodes.add(id(inner))
            # Twin-style dispatch: the gate branch is (imports +) one
            # ``return g(...)`` — the columnar function substitutes for
            # the scalar body wholesale.
            tail_stmt = node.body[-1] if node.body else None
            if (
                isinstance(tail_stmt, ast.Return)
                and isinstance(tail_stmt.value, ast.Call)
            ):
                twin_calls.add(id(tail_stmt.value))

    own_body = set()
    for stmt in _own_statements(func):
        for inner in ast.walk(stmt):
            own_body.add(id(inner))

    for node in ast.walk(func):
        if id(node) not in own_body:
            continue  # belongs to a nested def/class, summarized separately
        if not isinstance(node, ast.Call):
            continue
        tail = call_tail(node)
        if tail is None:
            continue
        in_phase = id(node) in phase_nodes
        site = CallSite(
            line=node.lineno,
            col=node.col_offset,
            callee=dotted_name(node.func) or tail,
            tail=tail,
            in_phase=in_phase,
            in_fast_gate=id(node) in gate_nodes,
            is_twin_return=id(node) in twin_calls,
        )
        fn.calls.append(site)
        if tail in COMM_TAILS:
            fn.direct_comm = True
            if not in_phase:
                fn.direct_unphased_comm = True
        if tail in LEDGER_TAILS:
            fn.direct_charge = True
            if tail == "phase" and node.args:
                name = string_const(node.args[0])
                if name is not None:
                    phase_names.append(name)
        if tail in GAUGE_TAILS:
            fn.touches_gauges = True
        if tail in GROW_METHODS and isinstance(node.func, ast.Attribute):
            root: ast.expr = node.func.value
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if isinstance(root, ast.Name) and root.id == "self":
                fn.grows_self_state = True

    fn.phase_names = tuple(dict.fromkeys(phase_names))


def _own_statements(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterable[ast.stmt]:
    """Statements of ``func`` excluding nested function/class bodies."""
    stack: List[ast.stmt] = list(func.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        for name in ("body", "orelse", "finalbody"):
            children = getattr(stmt, name, None)
            if children:
                stack.extend(
                    c for c in children
                    if not isinstance(
                        c, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    )
                )
        for handler in getattr(stmt, "handlers", ()):
            stack.extend(
                c for c in handler.body
                if not isinstance(
                    c, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            )


def summarize_module(
    tree: ast.Module, path: str, root: Optional[str] = None
) -> ModuleSummary:
    """Run pass 1 over one parsed module."""
    modname = module_name_for(path, root)
    visitor = _ModuleSummarizer(path, modname)
    # Module top-level code participates too (driver scripts, tools/).
    top = FunctionSummary(
        qualname=f"{modname}.{MODULE_BODY}", module=modname,
        name=MODULE_BODY, line=1, col=0, params=(), n_defaults=0,
    )
    pseudo = ast.Module(
        body=[
            s for s in tree.body
            if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ],
        type_ignores=[],
    )
    wrapper = ast.FunctionDef(
        name=MODULE_BODY,
        args=ast.arguments(
            posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[],
            defaults=[],
        ),
        body=pseudo.body or [ast.Pass()],
        decorator_list=[],
    )
    ast.fix_missing_locations(wrapper)
    _collect_effects(wrapper, top)
    visitor.summary.functions[top.qualname] = top
    visitor.visit(tree)
    return visitor.summary


# ----------------------------------------------------------------------
# pass 1.5: the project — resolution and effect propagation
# ----------------------------------------------------------------------
class Project:
    """The whole-program view: all summaries, resolved and propagated."""

    def __init__(self, modules: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {m.path: m for m in modules}
        self.functions: Dict[str, FunctionSummary] = {}
        for mod in self.modules.values():
            self.functions.update(mod.functions)
        #: transitive effect sets, filled by :meth:`propagate`
        self.communicates: Set[str] = set()
        self.unphased_comm: Set[str] = set()
        self.charges: Set[str] = set()
        self.phase_covered: Set[str] = set()
        self.fast_twins: List[Tuple[FunctionSummary, FunctionSummary, CallSite]] = []
        self._callers: Dict[str, List[Tuple[str, CallSite]]] = {}
        self._resolve_all()
        self._propagate()

    # -- resolution -----------------------------------------------------
    def _resolve_all(self) -> None:
        for mod in self.modules.values():
            for fn in mod.functions.values():
                cls_scope = self._class_scope(fn)
                for site in fn.calls:
                    site.resolved = self._resolve(mod, cls_scope, site)
                    if site.resolved is not None:
                        self._callers.setdefault(site.resolved, []).append(
                            (fn.qualname, site)
                        )

    @staticmethod
    def _class_scope(fn: FunctionSummary) -> Optional[str]:
        """Enclosing scope (``mod.Class``) for a method's qualname."""
        head, _, _ = fn.qualname.rpartition(".")
        return head if head != fn.module else None

    def _resolve(
        self, mod: ModuleSummary, cls_scope: Optional[str], site: CallSite
    ) -> Optional[str]:
        parts = site.callee.split(".")
        head = parts[0]
        # self.method() → a sibling method of the same class.
        if head == "self" and cls_scope is not None and len(parts) == 2:
            candidate = f"{cls_scope}.{parts[1]}"
            if candidate in self.functions:
                return candidate
            return None
        # Bare name → alias or same-module top-level function.
        if len(parts) == 1:
            target = mod.aliases.get(head)
            if target is not None and target in self.functions:
                return target
            candidate = f"{mod.modname}.{head}"
            if candidate in self.functions:
                return candidate
            return None
        # mod_alias.func(...) or pkg.mod.func(...).
        target = mod.aliases.get(head)
        if target is not None:
            candidate = ".".join([target, *parts[1:]])
            if candidate in self.functions:
                return candidate
        candidate = site.callee
        if candidate in self.functions:
            return candidate
        return None

    # -- propagation ----------------------------------------------------
    def _propagate(self) -> None:
        comm = {q for q, f in self.functions.items() if f.direct_comm}
        unphased = {
            q for q, f in self.functions.items() if f.direct_unphased_comm
        }
        charges = {q for q, f in self.functions.items() if f.direct_charge}
        changed = True
        while changed:
            changed = False
            for q, fn in self.functions.items():
                for site in fn.calls:
                    r = site.resolved
                    if r is None or r == q:
                        continue
                    if r in comm and q not in comm:
                        comm.add(q)
                        changed = True
                    if r in unphased and not site.in_phase and q not in unphased:
                        unphased.add(q)
                        changed = True
                    if r in charges and q not in charges:
                        charges.add(q)
                        changed = True
        self.communicates = comm
        self.unphased_comm = unphased
        self.charges = charges
        self._propagate_coverage()
        self._collect_twins()

    def _propagate_coverage(self) -> None:
        """``phase_covered``: every project call site sits under a phase
        (directly, or inside a function that is itself covered)."""
        covered: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for q in self.functions:
                if q in covered:
                    continue
                sites = self._callers.get(q, [])
                if not sites:
                    continue
                if all(
                    site.in_phase or caller in covered
                    for caller, site in sites
                ):
                    covered.add(q)
                    changed = True
        self.phase_covered = covered

    def _collect_twins(self) -> None:
        """(scalar, columnar, dispatch site) triples from fast-path gates."""
        for q, fn in self.functions.items():
            for site in fn.calls:
                if not (site.is_twin_return and site.in_fast_gate):
                    continue
                if site.resolved is None:
                    continue
                twin = self.functions.get(site.resolved)
                if twin is not None and twin.qualname != q:
                    self.fast_twins.append((fn, twin, site))

    # -- queries used by rules -----------------------------------------
    def callers_of(self, qualname: str) -> List[Tuple[str, CallSite]]:
        return self._callers.get(qualname, [])

    def comm_chain(self, qualname: str, limit: int = 6) -> List[str]:
        """A shortest call chain from ``qualname`` to a comm primitive,
        as human-readable hops (for SIM004 messages)."""
        from collections import deque

        queue: deque[Tuple[str, List[str]]] = deque([(qualname, [])])
        seen = {qualname}
        while queue:
            q, chain = queue.popleft()
            fn = self.functions.get(q)
            if fn is None or len(chain) >= limit:
                continue
            if fn.direct_comm:
                comm_tail = next(
                    (s.tail for s in fn.calls if s.tail in COMM_TAILS), "?"
                )
                return [*chain, fn.name, f"{comm_tail}()"]
            for site in fn.calls:
                r = site.resolved
                if r is not None and r not in seen:
                    seen.add(r)
                    queue.append((r, [*chain, fn.name]))
        return []

    def effects_digest(self) -> str:
        """Stable digest of the propagated effect tables.

        The incremental cache stores this next to each file's findings:
        if an edit anywhere shifts any transitive effect, the digest
        moves and cached *findings* (not summaries) are invalidated.
        """
        h = hashlib.sha256()
        for q in sorted(self.functions):
            h.update(q.encode())
            h.update(
                bytes(
                    (
                        q in self.communicates,
                        q in self.unphased_comm,
                        q in self.charges,
                        q in self.phase_covered,
                    )
                )
            )
            fn = self.functions[q]
            h.update(",".join(fn.phase_names).encode())
            h.update(",".join(fn.params).encode())
        return h.hexdigest()


def enclosing_function_qualname(
    module: ModuleSummary, line: int
) -> Optional[str]:
    """Qualname of the innermost function whose def-line precedes ``line``.

    Summaries do not retain end lines, so this is a best-effort map from
    a finding's line back to the function that owns it: the function
    with the greatest def-line ≤ ``line``.  Good enough for rule
    messages and coverage lookups on real code (functions do not
    interleave).
    """
    best: Optional[FunctionSummary] = None
    for fn in module.functions.values():
        if fn.name == MODULE_BODY:
            continue
        if fn.line <= line and (best is None or fn.line > best.line):
            best = fn
    return best.qualname if best is not None else None
