"""``python -m repro.analysis`` — the simlint command line.

Exit codes: 0 clean, 1 findings (or stale baseline entries), 2 usage/IO
error (the convention CI and the pytest self-clean gate rely on).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.baseline import Baseline
from repro.analysis.config import load_config
from repro.analysis.engine import run
from repro.analysis.rules import ALL_RULES
from repro.analysis.sarif import format_sarif


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint — model-compliance static analysis for the "
        "round-accurate simulator and its protocols",
    )
    p.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    p.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--output", metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    p.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (e.g. SIM001,SIM003); "
        "suppression hygiene (SIM000) is always checked",
    )
    p.add_argument(
        "--baseline", metavar="FILE",
        help="apply the baseline ratchet: findings in FILE warn with age, "
        "anything new fails",
    )
    p.add_argument(
        "--update-baseline", metavar="FILE",
        help="write the current findings to FILE as the new baseline "
        "(preserving first-seen dates) and exit 0",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache under .simlint_cache/",
    )
    p.add_argument(
        "--cache-dir", metavar="DIR",
        help="cache location (default: .simlint_cache/ next to pyproject.toml)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return p


def _list_rules() -> str:
    lines = ["SIM000 meta                   malformed/bare/unused suppressions"]
    for rule in ALL_RULES:
        lines.append(f"{rule.code} {rule.name:<22} {rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]
    baseline: Optional[Baseline] = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            print(
                f"simlint: baseline not found: {args.baseline}",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            print(f"simlint: {exc}", file=sys.stderr)
            return 2
    config = load_config(next((p for p in args.paths if os.path.exists(p)), None))
    try:
        report = run(
            args.paths,
            select=select,
            config=config,
            baseline=None if args.update_baseline else baseline,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
        )
    except FileNotFoundError as exc:
        print(f"simlint: no such file or directory: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"simlint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        prior = baseline if baseline is not None else Baseline.empty()
        if baseline is None and args.baseline is None:
            try:
                prior = Baseline.load(args.update_baseline)
            except (FileNotFoundError, ValueError):
                prior = Baseline.empty()
        prior.updated_with(report.findings, root=config.root).write(args.update_baseline)
        print(
            f"simlint: baseline written to {args.update_baseline} "
            f"({len(report.findings)} finding(s) inventoried)"
        )
        return 0
    if args.format == "json":
        text = report.format_json()
    elif args.format == "sarif":
        text = format_sarif(report.findings, report.baselined)
    else:
        text = report.format_text()
    try:
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text)
                fh.write("\n")
        else:
            print(text)
            sys.stdout.flush()
    except BrokenPipeError:
        # Downstream (e.g. ``| head``) closed the pipe; the exit code
        # still carries the verdict, so suppress the traceback.
        sys.stderr.close()
    return 0 if report.ok else 1
