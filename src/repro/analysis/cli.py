"""``python -m repro.analysis`` — the simlint command line.

Exit codes: 0 clean, 1 findings, 2 usage/IO error (the convention CI and
the pytest self-clean gate rely on).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.engine import run
from repro.analysis.rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint — model-compliance static analysis for the "
        "round-accurate simulator and its protocols",
    )
    p.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    p.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (e.g. SIM001,SIM003); "
        "suppression hygiene (SIM000) is always checked",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return p


def _list_rules() -> str:
    lines = ["SIM000 meta               malformed/bare/unused suppressions"]
    for rule in ALL_RULES:
        lines.append(f"{rule.code} {rule.name:<18} {rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]
    try:
        report = run(args.paths, select=select)
    except FileNotFoundError as exc:
        print(f"simlint: no such file or directory: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"simlint: {exc}", file=sys.stderr)
        return 2
    try:
        if args.format == "json":
            print(report.format_json())
        else:
            print(report.format_text())
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream (e.g. ``| head``) closed the pipe; the exit code
        # still carries the verdict, so suppress the traceback.
        sys.stderr.close()
    return 0 if report.ok else 1
