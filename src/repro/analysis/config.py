"""Project configuration: the ``[tool.simlint]`` table in pyproject.toml.

The analyzer covers three very different territories — ``src`` (the
model, full rule set), ``tools`` (driver scripts that may legitimately
read clocks), and ``tests`` (harness code that pokes at internals by
design) — so the rule set is configurable *per directory*:

.. code-block:: toml

    [tool.simlint]
    exclude = ["tests/analysis/fixtures"]

    [tool.simlint.per-directory]
    "tests" = { disable = ["SIM002", "SIM005"] }
    "tools" = { disable = ["SIM005"] }

``exclude`` prunes directory walks (seeded-violation fixtures, golden
corpora); an excluded path scanned *explicitly* (``python -m
repro.analysis tests/analysis/fixtures``) is still analyzed — explicit
wins.  ``per-directory`` maps a path prefix (relative to the config
file) to rule codes disabled beneath it; the longest matching prefix
applies.
"""

from __future__ import annotations

import os
import tomllib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple


@dataclass
class SimlintConfig:
    """Parsed ``[tool.simlint]`` settings, paths relative to ``root``."""

    root: str
    exclude: Tuple[str, ...] = ()
    per_directory: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def _rel(self, path: str) -> str:
        rel = os.path.relpath(os.path.abspath(path), self.root)
        return rel.replace(os.sep, "/")

    def is_excluded(self, path: str) -> bool:
        rel = self._rel(path)
        return any(
            rel == ex or rel.startswith(ex + "/") for ex in self.exclude
        )

    def disabled_for(self, path: str) -> FrozenSet[str]:
        """Rule codes disabled for ``path`` (longest prefix wins)."""
        rel = self._rel(path)
        best: FrozenSet[str] = frozenset()
        best_len = -1
        for prefix, codes in self.per_directory.items():
            if rel == prefix or rel.startswith(prefix + "/"):
                if len(prefix) > best_len:
                    best, best_len = codes, len(prefix)
        return best

    def digest_key(self) -> str:
        """Stable string for the cache fingerprint."""
        parts: List[str] = [*sorted(self.exclude)]
        for prefix in sorted(self.per_directory):
            parts.append(f"{prefix}={','.join(sorted(self.per_directory[prefix]))}")
        return ";".join(parts)


def find_pyproject(start: str) -> Optional[str]:
    """Nearest pyproject.toml at or above ``start``."""
    cur = os.path.abspath(start)
    while True:
        candidate = os.path.join(cur, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(cur)
        if parent == cur:
            return None
        cur = parent


def load_config(start: Optional[str] = None) -> SimlintConfig:
    """Load ``[tool.simlint]``; absent table means defaults (no excludes)."""
    pyproject = find_pyproject(start or os.getcwd())
    if pyproject is None:
        return SimlintConfig(root=os.path.abspath(start or os.getcwd()))
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("simlint", {})
    root = os.path.dirname(os.path.abspath(pyproject))
    exclude = tuple(str(p).replace(os.sep, "/") for p in table.get("exclude", []))
    per_directory: Dict[str, FrozenSet[str]] = {}
    for prefix, settings in table.get("per-directory", {}).items():
        codes = settings.get("disable", []) if isinstance(settings, dict) else []
        per_directory[str(prefix).replace(os.sep, "/")] = frozenset(
            str(c) for c in codes
        )
    return SimlintConfig(root=root, exclude=exclude, per_directory=per_directory)
