"""Lightweight flow-sensitive facts about one function body.

This is not a general dataflow framework — it answers exactly the
questions the rule pack asks, on the shapes protocol code actually
takes:

* which statements are *dominated* by a ``with ledger.phase(...)``
  block (structural domination: every path to the statement enters the
  ``with`` first, which for Python's syntax means lexical nesting);
* which local names are bound to numpy arrays (assigned from a
  ``np.*``/``numpy.*`` call, or propagated through another array
  local) — SIM006 uses this to treat ``x.argsort()`` on an array local
  like ``np.argsort(x)``;
* which local names hold the fast-path gate
  (``use_fast = fast_path_enabled()``) so dispatch sites written as
  ``if use_fast:`` resolve the same as ``if fast_path_enabled():``.

Everything here is deliberately syntactic and intra-function: the
interprocedural half lives in :mod:`repro.analysis.callgraph`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import (
    FAST_GATE_TAILS,
    call_tail,
    dotted_name,
    is_phase_with,
)

#: Numpy call tails whose result is (or wraps) an ndarray — enough to
#: seed array-local inference; propagation covers derived names.
_ARRAYISH_ROOTS = frozenset({"np", "numpy"})


def phase_dominated_nodes(func: ast.AST) -> Set[int]:
    """``id()`` of every AST node lexically inside a phase ``with``.

    Python has no goto: a statement nested under ``with ...phase(...)``
    executes only after the phase opened, so lexical containment *is*
    domination for this query.
    """
    covered: Set[int] = set()

    def visit(node: ast.AST, in_phase: bool) -> None:
        if in_phase:
            covered.add(id(node))
        enter = in_phase or (isinstance(node, ast.stmt) and is_phase_with(node))
        for child in ast.iter_child_nodes(node):
            visit(child, enter)

    for child in ast.iter_child_nodes(func):
        visit(child, False)
    return covered


def array_locals(func: ast.AST) -> Set[str]:
    """Names in ``func`` bound (at least once) to a numpy array value.

    Two propagation sweeps catch the ``a = np.f(...); b = a[mask]``
    chains the columnar kernels use; deeper chains are out of scope (and
    err on the quiet side).
    """
    arrays: Set[str] = set()
    assigns: Sequence[Tuple[str, ast.expr]] = list(_simple_assigns(func))
    for _sweep in range(2):
        for name, value in assigns:
            if _is_arrayish(value, arrays):
                arrays.add(name)
    return arrays


def fast_gate_locals(func: ast.AST) -> Set[str]:
    """Names assigned from ``fast_path_enabled()`` (fast-path gate vars)."""
    gates: Set[str] = set()
    for name, value in _simple_assigns(func):
        if isinstance(value, ast.Call) and call_tail(value) in FAST_GATE_TAILS:
            gates.add(name)
    return gates


def is_fast_gate_test(test: ast.expr, gate_vars: Set[str]) -> bool:
    """Does an ``if`` test consult the columnar fast-path switch?"""
    for node in ast.walk(test):
        if isinstance(node, ast.Call) and call_tail(node) in FAST_GATE_TAILS:
            return True
        if isinstance(node, ast.Name) and node.id in gate_vars:
            return True
        if isinstance(node, ast.Constant) and node.value == "REPRO_FAST":
            return True
    return False


def assigned_names(func: ast.AST) -> Dict[str, ast.expr]:
    """Last simple assignment expression per local name (best-effort)."""
    out: Dict[str, ast.expr] = {}
    for name, value in _simple_assigns(func):
        out[name] = value
    return out


def _simple_assigns(func: ast.AST) -> Iterator[Tuple[str, ast.expr]]:
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    yield target.id, node.value
                elif isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            yield elt.id, node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                yield node.target.id, node.value


def _is_arrayish(value: ast.expr, arrays: Set[str]) -> bool:
    if isinstance(value, ast.Call):
        dotted = dotted_name(value.func)
        if dotted is not None and dotted.split(".")[0] in _ARRAYISH_ROOTS:
            return True
        # x.astype(...) / x.copy(...) / x.reshape(...) on a known array.
        func = value.func
        if isinstance(func, ast.Attribute):
            return _is_arrayish_expr(func.value, arrays)
        return False
    return _is_arrayish_expr(value, arrays)


def _is_arrayish_expr(value: ast.expr, arrays: Set[str]) -> bool:
    """Is ``value`` rooted in a known array local (``a``, ``a[...]``)?"""
    node: Optional[ast.expr] = value
    while isinstance(node, (ast.Subscript, ast.BinOp, ast.UnaryOp)):
        if isinstance(node, ast.BinOp):
            node = node.left
        elif isinstance(node, ast.UnaryOp):
            node = node.operand
        else:
            node = node.value
    return isinstance(node, ast.Name) and node.id in arrays
