"""The simlint driver: two passes over the project, then the ratchet.

v2 is a whole-program analyzer.  **Pass 1** parses every collected file
once and distils it to a :class:`~repro.analysis.callgraph.ModuleSummary`
(definitions, imports, call sites, direct effects); the summaries are
stitched into a :class:`~repro.analysis.callgraph.Project` that resolves
intra-package calls and propagates effects ("communicates", "charges
rounds", "mutates gauged state") transitively to a fixpoint.  **Pass 2**
runs the rule catalog per file with a :class:`LintContext` exposing that
project view, which is how SIM004 follows a loop's call *chain* to a
send and SIM009 pairs fast-path twins across modules.

The engine stays deterministic — sorted file order, stable finding
order, one AST parse per file per pass — so a finding's presence depends
only on the source tree, never on traversal order or cache state.  The
incremental cache (:mod:`repro.analysis.cache`) and the baseline ratchet
(:mod:`repro.analysis.baseline`) compose around the passes without
changing their results.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.cache import AnalysisCache, DEFAULT_CACHE_DIR, file_sha256
from repro.analysis.callgraph import ModuleSummary, Project, summarize_module
from repro.analysis.config import SimlintConfig, load_config
from repro.analysis.findings import META_CODE, Finding, sort_findings
from repro.analysis.rules import ALL_RULES, LintContext, Rule
from repro.analysis.suppress import parse_suppressions

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", DEFAULT_CACHE_DIR})


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: List[Finding]
    files_checked: int
    suppressions_used: int = 0
    #: Findings absorbed by the baseline ratchet (finding, entry) pairs.
    baselined: List[Tuple[Finding, BaselineEntry]] = field(default_factory=list)
    #: Baseline entries nothing matched anymore — paid debt to delete.
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    cache_hits: int = 0

    @property
    def ok(self) -> bool:
        # Stale baseline entries fail too: the ratchet only ratchets if
        # paid debt must be struck from the inventory.
        return not self.findings and not self.stale_baseline

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return dict(sorted(counts.items()))

    def format_text(self) -> str:
        lines = [f.format_text() for f in self.findings]
        for finding, entry in self.baselined:
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col + 1}: "
                f"{finding.code} [baselined {entry.age_days()}d] "
                f"{finding.message}"
            )
        for entry in self.stale_baseline:
            lines.append(
                f"simlint: stale baseline entry {entry.code} at {entry.path} "
                f"(×{entry.count}) — debt paid; regenerate with "
                "--update-baseline"
            )
        by_code = ", ".join(f"{c}×{n}" for c, n in self.counts_by_code().items())
        tail = (
            f"{len(self.findings)} finding(s) [{by_code}]"
            if self.findings
            else "clean"
        )
        if self.baselined or self.stale_baseline:
            tail += (
                f", {len(self.baselined)} baselined, "
                f"{len(self.stale_baseline)} stale baseline entr(ies)"
            )
        lines.append(
            f"simlint: {self.files_checked} file(s), "
            f"{self.suppressions_used} suppression(s) honoured — {tail}"
        )
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "suppressions_used": self.suppressions_used,
                "cache_hits": self.cache_hits,
                "counts": self.counts_by_code(),
                "findings": [f.to_dict() for f in self.findings],
                "baselined": [
                    {
                        **f.to_dict(),
                        "first_seen": e.first_seen,
                        "age_days": e.age_days(),
                    }
                    for f, e in self.baselined
                ],
                "stale_baseline": [
                    {
                        "code": e.code, "path": e.path,
                        "message": e.message, "count": e.count,
                        "first_seen": e.first_seen,
                    }
                    for e in self.stale_baseline
                ],
            },
            indent=2,
            sort_keys=True,
        )


def collect_files(
    paths: Sequence[str], config: Optional[SimlintConfig] = None
) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    ``config.exclude`` prunes the walk — unless the scan root itself
    lies inside an excluded path, in which case the exclusion is
    ignored for that root: asking for an excluded directory *by name*
    (the CI fixture self-check does) means you want it analyzed.
    """
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            prune = config is not None and not config.is_excluded(path)
            for dirpath, dirnames, filenames in os.walk(path):
                keep = []
                for d in sorted(dirnames):
                    if d in _SKIP_DIRS:
                        continue
                    if prune and config.is_excluded(os.path.join(dirpath, d)):
                        continue
                    keep.append(d)
                dirnames[:] = keep
                for name in sorted(filenames):
                    if not name.endswith(".py"):
                        continue
                    full = os.path.join(dirpath, name)
                    if prune and config.is_excluded(full):
                        continue
                    out.append(full)
        else:
            raise FileNotFoundError(path)
    return sorted(dict.fromkeys(out))


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run the rule catalog over one source text (the unit-test surface).

    A one-module project is built around the source, so the
    interprocedural rules see call chains *within* the file and degrade
    gracefully (no cross-file edges) rather than switching off.
    """
    findings, _used = _analyze(source, path, rules)
    return findings


def _analyze(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    ctx: Optional[LintContext] = None,
    disabled: FrozenSet[str] = frozenset(),
) -> Tuple[List[Finding], int]:
    """(sorted findings, count of suppressions that silenced something)."""
    active = [
        r for r in (rules if rules is not None else ALL_RULES)
        if r.code not in disabled
    ]
    table = parse_suppressions(path, source)
    findings: List[Finding] = list(table.errors)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append(Finding(
            META_CODE, f"file does not parse: {exc.msg}", path, exc.lineno or 1,
        ))
        return sort_findings(_drop_disabled(findings, disabled)), 0
    if ctx is None:
        summary = summarize_module(tree, path)
        ctx = LintContext(path=path, project=Project([summary]), module=summary)
    for rule in active:
        for finding in rule.check(tree, path, ctx):
            if not table.is_suppressed(finding.code, _finding_lines(tree, finding)):
                findings.append(finding)
    used = len({
        id(s) for sups in table.by_line.values() for s in sups if s.used
    })
    for sup in table.unused():
        if disabled and set(sup.codes) <= disabled:
            # The suppressed rule is switched off in this directory; the
            # directive is dormant, not dead.
            continue
        findings.append(Finding(
            META_CODE,
            f"unused suppression of {', '.join(sup.codes)} — nothing to "
            "silence on this line; delete it",
            path, sup.line,
        ))
    return sort_findings(_drop_disabled(findings, disabled)), used


def _drop_disabled(
    findings: List[Finding], disabled: FrozenSet[str]
) -> List[Finding]:
    if not disabled:
        return findings
    return [f for f in findings if f.code not in disabled]


def _finding_lines(tree: ast.Module, finding: Finding) -> range:
    """Physical lines a suppression may sit on for this finding.

    The flagged statement may span lines (a multi-line call), so accept a
    directive on any line of the smallest statement containing the
    finding's anchor line.
    """
    best: Optional[range] = None
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        lineno = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if lineno is None or end is None:
            continue
        if lineno <= finding.line <= end:
            if best is None or (end - lineno) < (best.stop - 1 - best.start):
                best = range(lineno, end + 1)
    return best if best is not None else range(finding.line, finding.line + 1)


def _select_rules(
    rules: Optional[Sequence[Rule]], select: Optional[Iterable[str]]
) -> Tuple[List[Rule], Optional[FrozenSet[str]]]:
    active: List[Rule] = list(rules if rules is not None else ALL_RULES)
    if select is None:
        return active, None
    wanted = frozenset(select)
    unknown = wanted - {r.code for r in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return [r for r in active if r.code in wanted], wanted


def _cache_key(path: str, root: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), root)
    if rel.startswith(".."):
        return os.path.abspath(path).replace(os.sep, "/")
    return rel.replace(os.sep, "/")


def _fingerprint(config: SimlintConfig) -> str:
    codes = ",".join(sorted(r.code for r in ALL_RULES))
    return f"simlint-v2|{codes}|{config.digest_key()}"


def build_project(
    files: Sequence[str],
    config: Optional[SimlintConfig] = None,
    cache: Optional[AnalysisCache] = None,
) -> Tuple[Project, Dict[str, Optional[ModuleSummary]], Dict[str, bytes]]:
    """Pass 1: summaries for every file (cached where unchanged).

    Returns the propagated project, the per-path summaries (None for
    files that do not parse), and the raw bytes read per path so pass 2
    never re-reads the tree off disk.
    """
    root = config.root if config is not None else os.getcwd()
    summaries: Dict[str, Optional[ModuleSummary]] = {}
    raw_bytes: Dict[str, bytes] = {}
    for path in files:
        with open(path, "rb") as fh:
            raw = fh.read()
        raw_bytes[path] = raw
        summary: Optional[ModuleSummary] = None
        key = _cache_key(path, root)
        sha = file_sha256(raw)
        mtime = size = 0
        if cache is not None:
            st = os.stat(path)
            mtime, size = st.st_mtime_ns, st.st_size
            summary = cache.get_summary(key, mtime, size, sha)
        if summary is None:
            try:
                tree = ast.parse(raw.decode("utf-8"), filename=path)
            except (SyntaxError, UnicodeDecodeError):
                summaries[path] = None  # pass 2 reports the parse failure
                continue
            summary = summarize_module(tree, path, root)
            if cache is not None:
                cache.put_summary(key, mtime, size, sha, summary)
        summaries[path] = summary
    project = Project([s for s in summaries.values() if s is not None])
    return project, summaries, raw_bytes


def run(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
    *,
    config: Optional[SimlintConfig] = None,
    baseline: Optional[Baseline] = None,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
) -> Report:
    """Analyze ``paths``; ``select`` restricts to a subset of rule codes."""
    active, wanted = _select_rules(rules, select)
    if config is None:
        start = next((p for p in paths if os.path.exists(p)), None)
        config = load_config(start)
    cache: Optional[AnalysisCache] = None
    if use_cache:
        cache = AnalysisCache(
            cache_dir or os.path.join(config.root, DEFAULT_CACHE_DIR),
            _fingerprint(config),
        )
    files = collect_files(paths, config)

    # Pass 1: whole-program symbol table, call graph, effect propagation.
    project, summaries, raw_bytes = build_project(files, config, cache)
    digest = project.effects_digest()

    # Pass 2: per-file rules with the project in scope.
    findings: List[Finding] = []
    suppressions_used = 0
    cache_hits = 0
    for path in files:
        disabled = config.disabled_for(path)
        file_rules = [r for r in active if r.code not in disabled]
        rules_sig = (
            ",".join(r.code for r in file_rules)
            + "|" + ",".join(sorted(disabled))
        )
        key = _cache_key(path, config.root)
        sha = file_sha256(raw_bytes[path])
        cached = (
            cache.get_findings(key, sha, digest, rules_sig)
            if cache is not None else None
        )
        if cached is not None:
            file_findings, used = cached
            cache_hits += 1
        else:
            summary = summaries[path]
            ctx = (
                LintContext(
                    path=path, project=project, module=summary, config=config
                )
                if summary is not None
                else None
            )
            file_findings, used = _analyze(
                raw_bytes[path].decode("utf-8", errors="replace"),
                path, file_rules, ctx, disabled,
            )
            if cache is not None:
                cache.put_findings(
                    key, sha, digest, rules_sig, file_findings, used
                )
        suppressions_used += used
        if wanted is not None:
            # SIM000 (suppression hygiene) stays on even under --select,
            # except unused-suppression noise for rules we did not run.
            file_findings = [
                f for f in file_findings
                if f.code in wanted
                or (f.code == META_CODE and "unused suppression" not in f.message)
            ]
        findings.extend(file_findings)
    if cache is not None:
        cache.save()

    report = Report(
        sort_findings(findings), len(files), suppressions_used,
        cache_hits=cache_hits,
    )
    if baseline is not None:
        matched = baseline.apply(report.findings, root=config.root)
        report.findings = matched.new
        report.baselined = matched.baselined
        # Under --select most entries are trivially unmatched; staleness
        # is only meaningful against the full catalog.
        report.stale_baseline = matched.stale if wanted is None else []
    return report
