"""The simlint driver: collect files, run rules, apply suppressions.

The engine is deliberately boring — deterministic file order, one AST
parse per file, every rule sees every file — so that a finding's
presence depends only on the source text, never on traversal order.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import META_CODE, Finding, sort_findings
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.suppress import parse_suppressions


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: List[Finding]
    files_checked: int
    suppressions_used: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return dict(sorted(counts.items()))

    def format_text(self) -> str:
        lines = [f.format_text() for f in self.findings]
        by_code = ", ".join(f"{c}×{n}" for c, n in self.counts_by_code().items())
        tail = (
            f"{len(self.findings)} finding(s) [{by_code}]"
            if self.findings
            else "clean"
        )
        lines.append(
            f"simlint: {self.files_checked} file(s), "
            f"{self.suppressions_used} suppression(s) honoured — {tail}"
        )
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "suppressions_used": self.suppressions_used,
                "counts": self.counts_by_code(),
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
            sort_keys=True,
        )


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in {"__pycache__", ".git"}
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            raise FileNotFoundError(path)
    return sorted(dict.fromkeys(out))


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run the rule catalog over one source text (the unit-test surface)."""
    findings, _used = _analyze(source, path, rules)
    return findings


def _analyze(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], int]:
    """(sorted findings, count of suppressions that silenced something)."""
    active = list(rules if rules is not None else ALL_RULES)
    table = parse_suppressions(path, source)
    findings: List[Finding] = list(table.errors)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append(Finding(
            META_CODE, f"file does not parse: {exc.msg}", path, exc.lineno or 1,
        ))
        return sort_findings(findings), 0
    for rule in active:
        for finding in rule.check(tree, path):
            if not table.is_suppressed(finding.code, _finding_lines(tree, finding)):
                findings.append(finding)
    used = len({
        id(s) for sups in table.by_line.values() for s in sups if s.used
    })
    for sup in table.unused():
        findings.append(Finding(
            META_CODE,
            f"unused suppression of {', '.join(sup.codes)} — nothing to "
            "silence on this line; delete it",
            path, sup.line,
        ))
    return sort_findings(findings), used


def _finding_lines(tree: ast.Module, finding: Finding) -> range:
    """Physical lines a suppression may sit on for this finding.

    The flagged statement may span lines (a multi-line call), so accept a
    directive on any line of the smallest statement containing the
    finding's anchor line.
    """
    best: Optional[range] = None
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        lineno = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if lineno is None or end is None:
            continue
        if lineno <= finding.line <= end:
            if best is None or (end - lineno) < (best.stop - 1 - best.start):
                best = range(lineno, end + 1)
    return best if best is not None else range(finding.line, finding.line + 1)


def run(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
) -> Report:
    """Analyze ``paths``; ``select`` restricts to a subset of rule codes."""
    active: Sequence[Rule] = list(rules if rules is not None else ALL_RULES)
    wanted = set(select) if select is not None else None
    if wanted is not None:
        unknown = wanted - {r.code for r in ALL_RULES}
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        active = [r for r in active if r.code in wanted]
    files = collect_files(paths)
    findings: List[Finding] = []
    suppressions_used = 0
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        file_findings, used = _analyze(source, path, active)
        suppressions_used += used
        if wanted is not None:
            # SIM000 (suppression hygiene) stays on even under --select,
            # except unused-suppression noise for rules we did not run.
            file_findings = [
                f for f in file_findings
                if f.code in wanted
                or (f.code == META_CODE and "unused suppression" not in f.message)
            ]
        findings.extend(file_findings)
    return Report(sort_findings(findings), len(files), suppressions_used)
