"""Findings: what simlint reports.

A finding pins one model-compliance problem to one source location and
carries a stable rule code (``SIM001``..``SIM009``; ``SIM000`` is
reserved for analyzer-level problems such as malformed suppressions).
Stable codes are the contract: suppressions, CI greps and the docs all
key on them, so codes are never renumbered or reused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

#: Analyzer-level problems (bad suppression comment, unparsable file).
META_CODE = "SIM000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Canonical report order: by location, then code (deterministic)."""
    return sorted(findings, key=Finding.sort_key)
