"""The simlint rule catalog (SIM001..SIM005).

Each rule is an AST pass over one module.  Rules are deliberately
syntactic: they flag the *patterns* through which model violations enter
the codebase (uncharged sends, shared mutable state, unordered
iteration, unannotated communication loops, unaccounted container
growth), and pair with the runtime strict mode
(:mod:`repro.sim.strict`) which checks the same invariants dynamically.
A finding that is intentional is suppressed inline *with a reason* —
see :mod:`repro.analysis.suppress`.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding

# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    """Dotted name of a Name/Attribute chain (``net.ledger.phase``) or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_tail(call: ast.Call) -> Optional[str]:
    """Last component of the called name (``phase`` for ``x.y.phase(...)``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_literal_nonpositive(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return not isinstance(node.value, bool) and node.value <= 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = node.operand
        return isinstance(operand, ast.Constant) and isinstance(
            operand.value, (int, float)
        )
    return False


def _node_lines(node: ast.AST) -> range:
    lineno = getattr(node, "lineno", 1)
    end = getattr(node, "end_lineno", None) or lineno
    return range(lineno, end + 1)


def _walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class Rule:
    """Base class: one stable code, one AST pass."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(self, message: str, path: str, node: ast.AST) -> Finding:
        return Finding(
            self.code,
            message,
            path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
        )


# ----------------------------------------------------------------------
# SIM001 — uncharged send
# ----------------------------------------------------------------------
class UnchargedSend(Rule):
    """A message injected into the network without an honest word cost.

    Every cross-machine word must be declared: a :class:`Message` built
    without an explicit ``words`` argument silently defaults, and a
    literal zero/negative cost understates the load the ledger charges.
    ``broadcast`` calls are held to the same standard.
    """

    code = "SIM001"
    name = "uncharged-send"
    summary = "Message/broadcast with missing or non-positive word cost"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            tail = _call_tail(node)
            if tail == "Message":
                yield from self._check_message(node, path)
            elif tail == "broadcast":
                yield from self._check_broadcast(node, path)

    def _words_arg(
        self, call: ast.Call, positional_index: int
    ) -> Tuple[Optional[ast.AST], bool]:
        """(words expression or None, True if any *args/**kwargs present)."""
        has_star = any(isinstance(a, ast.Starred) for a in call.args) or any(
            kw.arg is None for kw in call.keywords
        )
        for kw in call.keywords:
            if kw.arg == "words":
                return kw.value, has_star
        if len(call.args) > positional_index:
            return call.args[positional_index], has_star
        return None, has_star

    def _check_message(self, call: ast.Call, path: str) -> Iterator[Finding]:
        words, has_star = self._words_arg(call, 3)
        if words is None:
            if not has_star:
                yield self.finding(
                    "Message constructed without an explicit word cost "
                    "(pass words=<size>; the default hides the charge)",
                    path, call,
                )
        elif _is_literal_nonpositive(words):
            yield self.finding(
                "Message constructed with a literal non-positive word cost",
                path, call,
            )

    def _check_broadcast(self, call: ast.Call, path: str) -> Iterator[Finding]:
        # Network.broadcast(src, payload, words) vs
        # MachineProgram.broadcast(payload, words): disambiguate by arity.
        words, has_star = self._words_arg(call, len(call.args) - 1 if call.args else 0)
        n_pos = len(call.args)
        has_kw_words = any(kw.arg == "words" for kw in call.keywords)
        if n_pos < 2 and not has_kw_words and not has_star:
            yield self.finding(
                "broadcast called without an explicit word cost",
                path, call,
            )
            return
        if words is not None and _is_literal_nonpositive(words):
            yield self.finding(
                "broadcast called with a literal non-positive word cost",
                path, call,
            )


# ----------------------------------------------------------------------
# SIM002 — cross-machine state access
# ----------------------------------------------------------------------
_GROW_METHODS = {"append", "add", "update", "setdefault", "extend", "insert"}


class CrossMachineState(Rule):
    """Machine code touching state it could not own.

    Three patterns break machine isolation: ``global`` declarations
    (module-level mutable state is visible to every simulated machine at
    once), mutation of a module-level container from inside a function,
    and a :class:`MachineProgram` method reaching into another object's
    ``.state``/``.store``.
    """

    code = "SIM002"
    name = "cross-machine-state"
    summary = "protocol code touches shared or foreign machine state"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        module_containers = self._module_level_containers(tree)
        for func in _walk_functions(tree):
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    yield self.finding(
                        f"'global {', '.join(node.names)}' — module-level mutable "
                        "state is shared across all simulated machines",
                        path, node,
                    )
                elif isinstance(node, ast.Call):
                    func_expr = node.func
                    if (
                        isinstance(func_expr, ast.Attribute)
                        and func_expr.attr in _GROW_METHODS
                        and isinstance(func_expr.value, ast.Name)
                        and func_expr.value.id in module_containers
                    ):
                        yield self.finding(
                            f"mutation of module-level container "
                            f"'{func_expr.value.id}' from protocol code",
                            path, node,
                        )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    for target in self._store_roots(node):
                        if target in module_containers:
                            yield self.finding(
                                f"write into module-level container '{target}' "
                                "from protocol code",
                                path, node,
                            )
        yield from self._check_programs(tree, path)

    def _module_level_containers(self, tree: ast.Module) -> set:
        names = set()
        for node in tree.body:
            targets: Sequence[ast.AST] = ()
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not self._is_container_expr(value):
                continue
            for t in targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
        return names

    @staticmethod
    def _is_container_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"list", "dict", "set", "defaultdict",
                                    "OrderedDict", "Counter", "deque"}
        return False

    @staticmethod
    def _store_roots(node: ast.AST) -> Iterator[str]:
        # Only subscript stores count as container mutations; a plain
        # rebind creates a local that shadows the global, it does not mutate.
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for t in targets:
            if isinstance(t, ast.Subscript):
                root = t.value
                while isinstance(root, ast.Subscript):
                    root = root.value
                if isinstance(root, ast.Name):
                    yield root.id

    def _check_programs(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {b for base in node.bases if (b := _dotted(base)) is not None}
            if not any(b.split(".")[-1] == "MachineProgram" for b in bases):
                continue
            for func in node.body:
                if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for sub in ast.walk(func):
                    if (
                        isinstance(sub, ast.Attribute)
                        and sub.attr in {"state", "store"}
                        and not (
                            isinstance(sub.value, ast.Name)
                            and sub.value.id == "self"
                        )
                    ):
                        owner = _dotted(sub.value) or "<expr>"
                        yield self.finding(
                            f"MachineProgram method reads '{owner}.{sub.attr}' — "
                            "a program may only touch self.state; remote facts "
                            "must arrive through the network",
                            path, sub,
                        )


# ----------------------------------------------------------------------
# SIM003 — nondeterminism
# ----------------------------------------------------------------------
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator",
                 "PCG64", "Philox"}
_TIME_CALLS = {
    "time.time", "time.monotonic", "time.perf_counter", "time.time_ns",
    "time.monotonic_ns", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "uuid.uuid1", "uuid.uuid4", "os.urandom", "secrets.token_bytes",
    "secrets.token_hex", "secrets.randbelow",
}


class Nondeterminism(Rule):
    """Sources of run-to-run variation in protocol code.

    Round counts are only reproducible if every protocol is a
    deterministic function of (graph, seed).  Flags the global
    ``random`` module, numpy's legacy global RNG, wall-clock reads,
    the salted builtin ``hash``, and iteration over unordered sets.
    """

    code = "SIM003"
    name = "nondeterminism"
    summary = "unseeded RNG, wall-clock, salted hash, or set iteration"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        imports_random = self._imports_module(tree, "random")
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, path, imports_random)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(node.iter, path)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iter(gen.iter, path)

    @staticmethod
    def _imports_module(tree: ast.Module, name: str) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(alias.name == name for alias in node.names):
                    return True
        return False

    def _check_call(
        self, node: ast.Call, path: str, imports_random: bool
    ) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if imports_random and dotted.startswith("random.") and dotted != "random.Random":
            yield self.finding(
                f"call to the unseeded global RNG '{dotted}' — thread a seeded "
                "Generator through the protocol instead",
                path, node,
            )
        parts = dotted.split(".")
        if (
            len(parts) >= 3
            and parts[-3] in {"np", "numpy"}
            and parts[-2] == "random"
            and parts[-1] not in _NP_RANDOM_OK
        ):
            yield self.finding(
                f"call to numpy's legacy global RNG '{dotted}' — use "
                "numpy.random.default_rng(seed)",
                path, node,
            )
        if dotted in _TIME_CALLS:
            yield self.finding(
                f"wall-clock/entropy read '{dotted}' in protocol code — "
                "round counts must not depend on real time",
                path, node,
            )
        if dotted == "hash":
            yield self.finding(
                "builtin hash() is salted per process (PYTHONHASHSEED) — "
                "use a keyed/explicit hash",
                path, node,
            )

    def _check_iter(self, iterable: ast.AST, path: str) -> Iterator[Finding]:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            yield self.finding(
                "iteration over a set literal/comprehension — order is "
                "unspecified; iterate a sorted() copy",
                path, iterable,
            )
        elif isinstance(iterable, ast.Call):
            tail = _call_tail(iterable)
            if tail in {"set", "frozenset"}:
                yield self.finding(
                    f"iteration over {tail}(...) — order is unspecified; "
                    "iterate a sorted() copy or keep the original sequence",
                    path, iterable,
                )


# ----------------------------------------------------------------------
# SIM004 — unaccounted rounds
# ----------------------------------------------------------------------
#: Calls that charge the ledger (directly or through a comm wrapper).
_COMM_CALLS = {
    "superstep", "broadcast", "batched_queries", "scheduled_broadcasts",
    "lenzen_route", "lenzen_sort", "tree_broadcast", "tree_converge_cast",
    "run_structural_batch",
}
_LEDGER_MARKS = {"charge_rounds", "phase"}


class UnaccountedRounds(Rule):
    """A data-dependent communication loop with no ledger annotation.

    A ``while`` loop (or a ``for`` over a non-``range`` iterable) that
    fires supersteps runs a data-dependent number of rounds.  That is
    fine — but only under a ``ledger.phase(...)`` block or with explicit
    ``charge_rounds`` calls, so the benchmark tables can attribute the
    cost and a reviewer can match the loop to the paper's bound.
    """

    code = "SIM004"
    name = "unaccounted-rounds"
    summary = "data-dependent superstep loop without phase/charge annotation"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        yield from self._visit(tree.body, path, in_phase=False)

    def _visit(
        self, body: Sequence[ast.stmt], path: str, in_phase: bool
    ) -> Iterator[Finding]:
        for node in body:
            covered = in_phase
            if isinstance(node, (ast.With, ast.AsyncWith)):
                covered = covered or any(
                    isinstance(item.context_expr, ast.Call)
                    and _call_tail(item.context_expr) == "phase"
                    for item in node.items
                )
            if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
                if self._is_data_dependent(node) and not covered:
                    if self._loop_communicates(node) and not self._loop_annotated(node):
                        kind = "while" if isinstance(node, ast.While) else "for"
                        yield self.finding(
                            f"data-dependent '{kind}' loop fires supersteps "
                            "without a ledger.phase(...) block or "
                            "charge_rounds annotation",
                            path, node,
                        )
            for child_body in self._child_bodies(node):
                yield from self._visit(child_body, path, covered)

    @staticmethod
    def _child_bodies(node: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
        for name in ("body", "orelse", "finalbody"):
            child = getattr(node, name, None)
            if child:
                yield child
        for handler in getattr(node, "handlers", ()):
            yield handler.body

    @staticmethod
    def _is_data_dependent(node: ast.stmt) -> bool:
        if isinstance(node, ast.While):
            return True
        assert isinstance(node, (ast.For, ast.AsyncFor))
        iterable = node.iter
        if isinstance(iterable, ast.Call) and _call_tail(iterable) in {
            "range", "enumerate", "zip",
        }:
            # ``for _ in range(n)``: bounded by an explicit, auditable count.
            return False
        if isinstance(iterable, (ast.Tuple, ast.List)):
            # A literal sequence has a constant trip count.
            return False
        return True

    @staticmethod
    def _loop_communicates(node: ast.stmt) -> bool:
        return any(
            isinstance(sub, ast.Call) and _call_tail(sub) in _COMM_CALLS
            for sub in ast.walk(node)
        )

    @staticmethod
    def _loop_annotated(node: ast.stmt) -> bool:
        return any(
            isinstance(sub, ast.Call) and _call_tail(sub) in _LEDGER_MARKS
            for sub in ast.walk(node)
        )


# ----------------------------------------------------------------------
# SIM005 — space-budget escape
# ----------------------------------------------------------------------
_GAUGE_CALLS = {"set_gauge", "bump_gauge", "_update_gauges", "refresh_gauges"}


class SpaceBudgetEscape(Rule):
    """Container growth that dodges the machine's space gauges.

    Applies to classes that participate in space accounting (their body
    calls a gauge method somewhere): any method that grows a public
    ``self.<container>`` without touching a gauge understates
    ``Machine.space_words`` until some later method happens to refresh
    it.  Underscore-prefixed attributes are exempt — they are simulator
    acceleration caches, not modeled machine state.
    """

    code = "SIM005"
    name = "space-budget-escape"
    summary = "state container grown without a space-gauge update"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and self._class_uses_gauges(node):
                yield from self._check_class(node, path)

    @staticmethod
    def _class_uses_gauges(cls: ast.ClassDef) -> bool:
        return any(
            isinstance(sub, ast.Call) and _call_tail(sub) in _GAUGE_CALLS
            for sub in ast.walk(cls)
        )

    def _check_class(self, cls: ast.ClassDef, path: str) -> Iterator[Finding]:
        for func in cls.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name == "__init__" or self._has_gauge_call(func):
                continue
            for growth, attr in self._growth_sites(func):
                yield self.finding(
                    f"'{cls.name}.{func.name}' grows 'self.{attr}' without a "
                    "space-gauge update (call set_gauge/bump_gauge or the "
                    "class's gauge refresh)",
                    path, growth,
                )

    @staticmethod
    def _has_gauge_call(func: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Call) and _call_tail(sub) in _GAUGE_CALLS
            for sub in ast.walk(func)
        )

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        """``self.<attr>`` at the root of an attribute/subscript chain."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _growth_sites(
        self, func: ast.AST
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        attr = self._self_attr(target.value)
                        if attr and not attr.startswith("_"):
                            yield node, attr
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in _GROW_METHODS
                ):
                    attr = self._self_attr(func_expr.value)
                    if attr and not attr.startswith("_"):
                        yield node, attr


#: The catalog, in code order.  Append-only: codes are never reused.
ALL_RULES: Tuple[Rule, ...] = (
    UnchargedSend(),
    CrossMachineState(),
    Nondeterminism(),
    UnaccountedRounds(),
    SpaceBudgetEscape(),
)
