"""The simlint rule catalog (SIM001..SIM009).

Split by subsystem since v2 (one module per concern, shared vocabulary
in :mod:`repro.analysis.rules.base`); the import surface of the old
single-file ``repro.analysis.rules`` is preserved.  Rules are pattern
detectors over one module's AST plus, where the violation is
interprocedural (SIM004, SIM006, SIM009), the project-wide call graph
and effect summaries from :mod:`repro.analysis.callgraph`.

The catalog is append-only: codes are never renumbered or reused.
``SIM000`` stays reserved for analyzer-level hygiene (bad suppressions,
unparsable files).
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.rules.base import (
    COMM_TAILS,
    FAST_GATE_TAILS,
    GROW_METHODS,
    LEDGER_TAILS,
    LintContext,
    Rule,
)
from repro.analysis.rules.charging import UnchargedSend, UnaccountedRounds
from repro.analysis.rules.columnar import FallbackParity, UnstableColumnarOrder
from repro.analysis.rules.determinism import Nondeterminism
from repro.analysis.rules.faults import ImpureFaultHook
from repro.analysis.rules.state import CrossMachineState, SpaceBudgetEscape
from repro.analysis.rules.tracing import TraceEventDrift

#: The catalog, in code order.  Append-only: codes are never reused.
ALL_RULES: Tuple[Rule, ...] = (
    UnchargedSend(),
    CrossMachineState(),
    Nondeterminism(),
    UnaccountedRounds(),
    SpaceBudgetEscape(),
    UnstableColumnarOrder(),
    ImpureFaultHook(),
    TraceEventDrift(),
    FallbackParity(),
)

__all__ = [
    "ALL_RULES",
    "COMM_TAILS",
    "CrossMachineState",
    "FallbackParity",
    "FAST_GATE_TAILS",
    "GROW_METHODS",
    "ImpureFaultHook",
    "LEDGER_TAILS",
    "LintContext",
    "Nondeterminism",
    "Rule",
    "SpaceBudgetEscape",
    "TraceEventDrift",
    "UnaccountedRounds",
    "UnchargedSend",
    "UnstableColumnarOrder",
]
