"""Compatibility shim: the shared rule vocabulary moved to
:mod:`repro.analysis.astutil` (the call-graph pass needs it *below* the
rules package in the import graph; importing anything from this package
instantiates the whole catalog).  Rule modules keep importing from here
so the split stays an implementation detail.
"""

from __future__ import annotations

from repro.analysis.astutil import (
    COMM_TAILS,
    FAST_GATE_TAILS,
    GROW_METHODS,
    LEDGER_TAILS,
    LintContext,
    Rule,
    call_tail,
    dotted_name,
    has_star_args,
    is_literal_nonpositive,
    is_phase_with,
    keyword_arg,
    string_const,
    walk_functions,
)

__all__ = [
    "COMM_TAILS",
    "FAST_GATE_TAILS",
    "GROW_METHODS",
    "LEDGER_TAILS",
    "LintContext",
    "Rule",
    "call_tail",
    "dotted_name",
    "has_star_args",
    "is_literal_nonpositive",
    "is_phase_with",
    "keyword_arg",
    "string_const",
    "walk_functions",
]
