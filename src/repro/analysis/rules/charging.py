"""Charging rules: SIM001 (uncharged send), SIM004 (unaccounted rounds).

SIM004 is the analyzer's flagship interprocedural rule: since v2 it no
longer asks "does this loop *textually* contain a send" but "does this
loop's **call chain** reach a send with no dominating ``ledger.phase``
anywhere along the chain".  Both halves of that sentence lean on the
whole-program pass (:mod:`repro.analysis.callgraph`):

* the chain — a loop calling ``helper_a`` which calls ``helper_b``
  which fires ``superstep`` is flagged, two (or N) frames deep;
* the dominance — a loop inside a function whose every project call
  site sits under ``with ledger.phase(...)`` is *not* flagged: the
  phase two frames up already attributes the rounds.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    COMM_TAILS,
    LEDGER_TAILS,
    LintContext,
    Rule,
    call_tail,
    has_star_args,
    is_literal_nonpositive,
    is_phase_with,
)


# ----------------------------------------------------------------------
# SIM001 — uncharged send
# ----------------------------------------------------------------------
class UnchargedSend(Rule):
    """A message injected into the network without an honest word cost.

    Every cross-machine word must be declared: a :class:`Message` built
    without an explicit ``words`` argument silently defaults, and a
    literal zero/negative cost understates the load the ledger charges.
    ``broadcast`` calls are held to the same standard.
    """

    code = "SIM001"
    name = "uncharged-send"
    summary = "Message/broadcast with missing or non-positive word cost"

    def check(
        self, tree: ast.Module, path: str, ctx: Optional[LintContext] = None
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            tail = call_tail(node)
            if tail == "Message":
                yield from self._check_message(node, path)
            elif tail == "broadcast":
                yield from self._check_broadcast(node, path)

    def _words_arg(
        self, call: ast.Call, positional_index: int
    ) -> Tuple[Optional[ast.AST], bool]:
        """(words expression or None, True if any *args/**kwargs present)."""
        has_star = has_star_args(call)
        for kw in call.keywords:
            if kw.arg == "words":
                return kw.value, has_star
        if len(call.args) > positional_index:
            return call.args[positional_index], has_star
        return None, has_star

    def _check_message(self, call: ast.Call, path: str) -> Iterator[Finding]:
        words, has_star = self._words_arg(call, 3)
        if words is None:
            if not has_star:
                yield self.finding(
                    "Message constructed without an explicit word cost "
                    "(pass words=<size>; the default hides the charge)",
                    path, call,
                )
        elif is_literal_nonpositive(words):
            yield self.finding(
                "Message constructed with a literal non-positive word cost",
                path, call,
            )

    def _check_broadcast(self, call: ast.Call, path: str) -> Iterator[Finding]:
        # Network.broadcast(src, payload, words) vs
        # MachineProgram.broadcast(payload, words): disambiguate by arity.
        words, has_star = self._words_arg(call, len(call.args) - 1 if call.args else 0)
        n_pos = len(call.args)
        has_kw_words = any(kw.arg == "words" for kw in call.keywords)
        if n_pos < 2 and not has_kw_words and not has_star:
            yield self.finding(
                "broadcast called without an explicit word cost",
                path, call,
            )
            return
        if words is not None and is_literal_nonpositive(words):
            yield self.finding(
                "broadcast called with a literal non-positive word cost",
                path, call,
            )


# ----------------------------------------------------------------------
# SIM004 — unaccounted rounds (interprocedural since v2)
# ----------------------------------------------------------------------
class UnaccountedRounds(Rule):
    """A data-dependent communication loop with no ledger annotation.

    A ``while`` loop (or a ``for`` over a non-``range`` iterable) that
    fires supersteps runs a data-dependent number of rounds.  That is
    fine — but only under a ``ledger.phase(...)`` block or with explicit
    ``charge_rounds`` calls, so the benchmark tables can attribute the
    cost and a reviewer can match the loop to the paper's bound.

    The reach is interprocedural: a loop whose call chain bottoms out in
    an unphased send is flagged even when the send is several calls
    deep, and a loop inside a function that is *only ever called* under
    a phase block is exempt — the caller's phase dominates it.
    """

    code = "SIM004"
    name = "unaccounted-rounds"
    summary = "data-dependent superstep loop without phase/charge annotation"

    def check(
        self, tree: ast.Module, path: str, ctx: Optional[LintContext] = None
    ) -> Iterator[Finding]:
        modname = ctx.module.modname if ctx is not None else None
        yield from self._visit(tree.body, path, ctx, [], in_phase=False,
                               modname=modname)

    def _visit(
        self,
        body: Sequence[ast.stmt],
        path: str,
        ctx: Optional[LintContext],
        scope: List[str],
        in_phase: bool,
        modname: Optional[str],
    ) -> Iterator[Finding]:
        for node in body:
            covered = in_phase
            if isinstance(node, (ast.With, ast.AsyncWith)):
                covered = covered or is_phase_with(node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                # A fresh frame: lexical phase coverage does not cross a
                # def boundary (the caller decides), but the project-wide
                # phase_covered set handles the callers for us.
                yield from self._visit(
                    node.body, path, ctx, [*scope, node.name],
                    in_phase=False, modname=modname,
                )
                continue
            if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
                if self._is_data_dependent(node) and not covered:
                    yield from self._check_loop(node, path, ctx, scope, modname)
            for child_body in self._child_bodies(node):
                yield from self._visit(
                    child_body, path, ctx, scope, covered, modname
                )

    def _check_loop(
        self,
        node: ast.stmt,
        path: str,
        ctx: Optional[LintContext],
        scope: List[str],
        modname: Optional[str],
    ) -> Iterator[Finding]:
        if self._loop_annotated(node):
            return
        kind = "while" if isinstance(node, ast.While) else "for"
        qualname = self._scope_qualname(ctx, scope, modname)
        if (
            ctx is not None
            and qualname is not None
            and qualname in ctx.project.phase_covered
        ):
            # Every project call site of the enclosing function is under
            # a ledger.phase — the rounds are attributed upstream.
            return
        if self._loop_communicates(node):
            yield self.finding(
                f"data-dependent '{kind}' loop fires supersteps "
                "without a ledger.phase(...) block or "
                "charge_rounds annotation",
                path, node,
            )
            return
        if ctx is None or qualname is None:
            return
        chain = self._unphased_chain(node, ctx, qualname)
        if chain:
            yield self.finding(
                f"data-dependent '{kind}' loop reaches a send via "
                f"{' -> '.join(chain)} with no dominating ledger.phase(...) "
                "anywhere on the call chain (annotate the loop, or charge "
                "the rounds inside the callee)",
                path, node,
            )

    @staticmethod
    def _scope_qualname(
        ctx: Optional[LintContext], scope: List[str], modname: Optional[str]
    ) -> Optional[str]:
        if ctx is None or modname is None:
            return None
        if not scope:
            from repro.analysis.callgraph import MODULE_BODY

            return f"{modname}.{MODULE_BODY}"
        return ".".join([modname, *scope])

    def _unphased_chain(
        self, node: ast.stmt, ctx: LintContext, qualname: str
    ) -> List[str]:
        """Call chain from a call inside the loop to an unphased send."""
        fn = ctx.project.functions.get(qualname)
        if fn is None:
            return []
        sites: Dict[Tuple[int, int], str] = {
            (s.line, s.col): s.resolved
            for s in fn.calls
            if s.resolved is not None
        }
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            resolved = sites.get((sub.lineno, sub.col_offset))
            if resolved is None:
                continue
            if resolved in ctx.project.unphased_comm:
                chain = ctx.project.comm_chain(resolved)
                return chain or [resolved.rsplit(".", 1)[-1]]
        return []

    @staticmethod
    def _child_bodies(node: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
        for name in ("body", "orelse", "finalbody"):
            child = getattr(node, name, None)
            if child:
                yield child
        for handler in getattr(node, "handlers", ()):
            yield handler.body

    @staticmethod
    def _is_data_dependent(node: ast.stmt) -> bool:
        if isinstance(node, ast.While):
            return True
        assert isinstance(node, (ast.For, ast.AsyncFor))
        iterable = node.iter
        if isinstance(iterable, ast.Call) and call_tail(iterable) in {
            "range", "enumerate", "zip",
        }:
            # ``for _ in range(n)``: bounded by an explicit, auditable count.
            return False
        if isinstance(iterable, (ast.Tuple, ast.List)):
            # A literal sequence has a constant trip count.
            return False
        return True

    @staticmethod
    def _loop_communicates(node: ast.stmt) -> bool:
        return any(
            isinstance(sub, ast.Call) and call_tail(sub) in COMM_TAILS
            for sub in ast.walk(node)
        )

    @staticmethod
    def _loop_annotated(node: ast.stmt) -> bool:
        return any(
            isinstance(sub, ast.Call) and call_tail(sub) in LEDGER_TAILS
            for sub in ast.walk(node)
        )
