"""Columnar fast-path rules: SIM006 (unstable order), SIM009 (parity).

The columnar engines' contract is *byte-identical wire* against the
scalar reference path.  The equivalence suites certify that contract
per-scenario; these rules certify the two code patterns that break it
silently on scenarios the suites did not draw:

* an **unstable sort** on a tie-bearing key column resolves ties in an
  implementation-defined order — the scalar path's strict-``<`` scan is
  deterministic, so the transcripts diverge only on inputs with
  duplicate keys (SIM006);
* a columnar twin whose **signature or phase annotations drift** from
  its scalar sibling dispatches fine today and mis-charges tomorrow
  (SIM009).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Set, Tuple

from repro.analysis.dataflow import array_locals
from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    LintContext,
    Rule,
    call_tail,
    dotted_name,
    keyword_arg,
    string_const,
    walk_functions,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.analysis.callgraph import FunctionSummary, Project

#: numpy sort entry points whose *order* output depends on stability.
_ORDER_SORTS = frozenset({"argsort"})
#: numpy sort entry points flagged when applied to arrays (value sorts
#: are order-deterministic for scalars, but structured/record arrays and
#: downstream index arithmetic are not worth the ambiguity on the wire).
_VALUE_SORTS = frozenset({"sort"})
_NUMPY_ROOTS = frozenset({"np", "numpy"})


def _wire_affecting(project: Project) -> Set[str]:
    """Functions whose outputs can reach the wire.

    Seeds: every function that (transitively) communicates, plus every
    columnar twin reached through a ``fast_path_enabled()`` dispatch.
    Closure: their resolved callees — a helper's sort order propagates
    into whatever its caller ships.
    """
    cached = getattr(project, "_wire_affecting_cache", None)
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    seed: Set[str] = set(project.communicates)
    for _scalar, twin, _site in project.fast_twins:
        seed.add(twin.qualname)
    work = list(seed)
    closure = set(seed)
    while work:
        q = work.pop()
        fn = project.functions.get(q)
        if fn is None:
            continue
        for site in fn.calls:
            r = site.resolved
            if r is not None and r not in closure:
                closure.add(r)
                work.append(r)
    setattr(project, "_wire_affecting_cache", closure)
    return closure


class UnstableColumnarOrder(Rule):
    """An unstable numpy sort in a wire-affecting function.

    ``np.argsort`` (and the ``.argsort()`` method on array locals)
    defaults to an unstable introsort: rows with equal keys come back in
    an arbitrary order, which is exactly the scalar/columnar divergence
    class the per-scenario equivalence suites can miss.  Pass
    ``kind="stable"`` — or use ``np.lexsort``, which is always stable.
    ``np.unique``-derived ordering fed straight into a communication
    payload is flagged too: its ascending-value order must be argued
    against the scalar path's iteration order, not assumed.
    """

    code = "SIM006"
    name = "unstable-columnar-order"
    summary = "unstable numpy sort (or np.unique order) on a wire-affecting path"

    def check(
        self, tree: ast.Module, path: str, ctx: Optional[LintContext] = None
    ) -> Iterator[Finding]:
        wire: Optional[Set[str]] = (
            _wire_affecting(ctx.project) if ctx is not None else None
        )
        for func in walk_functions(tree):
            if not self._in_scope(func, ctx, wire):
                continue
            arrays = array_locals(func)
            unique_locals = self._unique_locals(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_sort(node, path, arrays)
                yield from self._check_unique_payload(
                    node, path, unique_locals
                )

    def _in_scope(
        self,
        func: ast.AST,
        ctx: Optional[LintContext],
        wire: Optional[Set[str]],
    ) -> bool:
        if ctx is None or wire is None:
            return True  # single-file analysis: every function is suspect
        line = getattr(func, "lineno", 1)
        name = getattr(func, "name", "")
        for qual, fn in ctx.module.functions.items():
            if fn.line == line and fn.name == name:
                return qual in wire
        return False

    def _check_sort(
        self, node: ast.Call, path: str, arrays: Set[str]
    ) -> Iterator[Finding]:
        tail = call_tail(node)
        if tail not in _ORDER_SORTS | _VALUE_SORTS:
            return
        kind = keyword_arg(node, "kind")
        if kind is not None and string_const(kind) == "stable":
            return
        func = node.func
        is_np_call = False
        target = ""
        if isinstance(func, ast.Attribute):
            root = dotted_name(func.value)
            if root in _NUMPY_ROOTS:
                is_np_call = True
                if node.args:
                    target = dotted_name(node.args[0]) or "<expr>"
                else:
                    target = "?"
            elif isinstance(func.value, ast.Name) and func.value.id in arrays:
                is_np_call = True
                target = func.value.id
        if not is_np_call:
            return
        if kind is not None:
            yield self.finding(
                f"{tail} on '{target}' with kind={ast.unparse(kind)!s} — "
                "wire-affecting sorts must pass kind=\"stable\" so ties "
                "match the scalar path's first-occurrence order",
                path, node,
            )
        else:
            yield self.finding(
                f"{tail} on '{target}' without kind=\"stable\" — ties "
                "resolve in an arbitrary order and the scalar/columnar "
                "transcripts can diverge on duplicate keys",
                path, node,
            )

    @staticmethod
    def _unique_locals(func: ast.AST) -> Set[str]:
        """Names bound (possibly via tuple unpack) from ``np.unique``."""
        out: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Call) and call_tail(value) == "unique"
                and (dotted_name(value.func) or "").split(".")[0] in _NUMPY_ROOTS
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
                elif isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            out.add(elt.id)
        return out

    def _check_unique_payload(
        self, node: ast.Call, path: str, unique_locals: Set[str]
    ) -> Iterator[Finding]:
        tail = call_tail(node)
        if tail not in {"Message", "broadcast", "scheduled_broadcasts",
                        "batched_queries", "superstep"}:
            return
        if not unique_locals:
            return
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name) and sub.id in unique_locals:
                    yield self.finding(
                        f"np.unique-derived '{sub.id}' feeds a communication "
                        "payload — its ascending-value order must be shown "
                        "to match the scalar path's iteration order "
                        "(suppress with the argument, or sort explicitly)",
                        path, node,
                    )
                    return


class FallbackParity(Rule):
    """A backend twin drifting from its scalar fallback (or its siblings).

    Every ``if fast_path_enabled(): return g(...)`` (and every
    ``parallel_path_enabled()``-gated) dispatch promises that ``g`` is a
    drop-in for the enclosing scalar function: same parameters in the
    same order, and the same ``ledger.phase(...)`` annotations so both
    engines bill the same phase names.  Signature or phase drift
    dispatches fine today and silently breaks ledger equivalence (or the
    call itself) on the next edit.

    A function dispatching to *several* backend twins — reference body,
    columnar twin, parallel twin — is additionally held to three-way
    parity: all twins in the family must bill the identical phase set,
    so a drift between two non-reference backends is named even when one
    of the pairwise checks is suppressed.
    """

    code = "SIM009"
    name = "fallback-parity"
    summary = "backend twin signature/phase annotations drifted from scalar fallback"

    def check(
        self, tree: ast.Module, path: str, ctx: Optional[LintContext] = None
    ) -> Iterator[Finding]:
        if ctx is None:
            return
        # Report at the dispatch site, once per (scalar, twin) pair whose
        # dispatch lives in this module.
        families: dict[str, list[Tuple[FunctionSummary, _Anchor]]] = {}
        scalars: dict[str, FunctionSummary] = {}
        for scalar, twin, site in ctx.project.fast_twins:
            if scalar.module != ctx.module.modname:
                continue
            anchor = _Anchor(site.line, site.col)
            scalars[scalar.qualname] = scalar
            families.setdefault(scalar.qualname, []).append((twin, anchor))
            yield from self._check_pair(scalar, twin, path, anchor)
        for qual, twins in families.items():
            if len(twins) > 1:
                yield from self._check_family(scalars[qual], twins, path)

    def _check_family(
        self,
        scalar: FunctionSummary,
        twins: "list[Tuple[FunctionSummary, _Anchor]]",
        path: str,
    ) -> Iterator[Finding]:
        """Three-way parity: every backend twin of one scalar must bill
        the same phase set as every other, not just as the scalar."""
        first, first_anchor = twins[0]
        for other, anchor in twins[1:]:
            if set(first.phase_names) != set(other.phase_names):
                yield Finding(
                    self.code,
                    f"backend twins '{first.name}' and '{other.name}' of "
                    f"'{scalar.name}' bill different phase sets "
                    f"({sorted(set(first.phase_names)) or '[]'} vs "
                    f"{sorted(set(other.phase_names)) or '[]'}) — every "
                    "execution backend must charge identical phase names",
                    path, anchor.line, anchor.col,
                )

    def _check_pair(
        self,
        scalar: FunctionSummary,
        twin: FunctionSummary,
        path: str,
        anchor: "_Anchor",
    ) -> Iterator[Finding]:
        sp = self._model_params(scalar)
        tp = self._model_params(twin)
        if tp[: len(sp)] != sp:
            yield Finding(
                self.code,
                f"fast-path twin '{twin.name}' signature drifted from "
                f"scalar fallback '{scalar.name}': {self._sig(sp)} vs "
                f"{self._sig(tp)} — the dispatch promises a drop-in",
                path, anchor.line, anchor.col,
            )
        elif len(tp) > len(sp):
            extra = len(tp) - len(sp)
            if twin.n_defaults < extra:
                yield Finding(
                    self.code,
                    f"fast-path twin '{twin.name}' grew required "
                    f"parameter(s) {tp[len(sp):]} its scalar fallback "
                    f"'{scalar.name}' never passes",
                    path, anchor.line, anchor.col,
                )
        s_phases = set(scalar.phase_names)
        t_phases = set(twin.phase_names)
        if s_phases != t_phases:
            yield Finding(
                self.code,
                f"fast-path twin '{twin.name}' charges phases "
                f"{sorted(t_phases) or '[]'} but scalar fallback "
                f"'{scalar.name}' charges {sorted(s_phases) or '[]'} — "
                "both engines must bill identical phase names",
                path, anchor.line, anchor.col,
            )

    @staticmethod
    def _model_params(fn: FunctionSummary) -> Tuple[str, ...]:
        return tuple(p for p in fn.params if p not in ("self", "cls"))

    @staticmethod
    def _sig(params: Tuple[str, ...]) -> str:
        return "(" + ", ".join(params) + ")"


class _Anchor:
    __slots__ = ("line", "col")

    def __init__(self, line: int, col: int) -> None:
        self.line = line
        self.col = col
