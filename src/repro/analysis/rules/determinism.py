"""Determinism rule: SIM003 (nondeterminism sources in protocol code)."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules.base import LintContext, Rule, call_tail, dotted_name

_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator",
                 "PCG64", "Philox"}
_TIME_CALLS = {
    "time.time", "time.monotonic", "time.perf_counter", "time.time_ns",
    "time.monotonic_ns", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "uuid.uuid1", "uuid.uuid4", "os.urandom", "secrets.token_bytes",
    "secrets.token_hex", "secrets.randbelow",
}


class Nondeterminism(Rule):
    """Sources of run-to-run variation in protocol code.

    Round counts are only reproducible if every protocol is a
    deterministic function of (graph, seed).  Flags the global
    ``random`` module, numpy's legacy global RNG, wall-clock reads,
    the salted builtin ``hash``, and iteration over unordered sets.
    """

    code = "SIM003"
    name = "nondeterminism"
    summary = "unseeded RNG, wall-clock, salted hash, or set iteration"

    def check(
        self, tree: ast.Module, path: str, ctx: Optional[LintContext] = None
    ) -> Iterator[Finding]:
        imports_random = self._imports_module(tree, "random")
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, path, imports_random)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(node.iter, path)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iter(gen.iter, path)

    @staticmethod
    def _imports_module(tree: ast.Module, name: str) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(alias.name == name for alias in node.names):
                    return True
        return False

    def _check_call(
        self, node: ast.Call, path: str, imports_random: bool
    ) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        if imports_random and dotted.startswith("random.") and dotted != "random.Random":
            yield self.finding(
                f"call to the unseeded global RNG '{dotted}' — thread a seeded "
                "Generator through the protocol instead",
                path, node,
            )
        parts = dotted.split(".")
        if (
            len(parts) >= 3
            and parts[-3] in {"np", "numpy"}
            and parts[-2] == "random"
            and parts[-1] not in _NP_RANDOM_OK
        ):
            yield self.finding(
                f"call to numpy's legacy global RNG '{dotted}' — use "
                "numpy.random.default_rng(seed)",
                path, node,
            )
        if dotted in _TIME_CALLS:
            yield self.finding(
                f"wall-clock/entropy read '{dotted}' in protocol code — "
                "round counts must not depend on real time",
                path, node,
            )
        if dotted == "hash":
            yield self.finding(
                "builtin hash() is salted per process (PYTHONHASHSEED) — "
                "use a keyed/explicit hash",
                path, node,
            )

    def _check_iter(self, iterable: ast.AST, path: str) -> Iterator[Finding]:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            yield self.finding(
                "iteration over a set literal/comprehension — order is "
                "unspecified; iterate a sorted() copy",
                path, iterable,
            )
        elif isinstance(iterable, ast.Call):
            tail = call_tail(iterable)
            if tail in {"set", "frozenset"}:
                yield self.finding(
                    f"iteration over {tail}(...) — order is unspecified; "
                    "iterate a sorted() copy or keep the original sequence",
                    path, iterable,
                )
