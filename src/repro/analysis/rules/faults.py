"""Fault-injection rule: SIM007 (impure fault hook).

A :class:`~repro.sim.network.FaultHook` implementation sits *between*
protocol code and the wire: it may reorder fate, but it must not become
a side channel.  Three impurity classes break the chaos suite's
replay-determinism and accounting guarantees:

* consuming **un-seeded randomness** — ``np.random.default_rng()``
  with no seed, or the global RNGs — makes the fault schedule differ
  between the run and its replay;
* **mutating simulator state** through the ``net`` handle (other than
  the sanctioned fail-stop entry points) teleports facts past the
  model;
* **swallowing a message without billing** — a ``continue`` that
  excludes a message from delivery with no counter bump or raise in its
  branch leaves the injector ledger blind to the loss.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    GROW_METHODS,
    LintContext,
    Rule,
    call_tail,
    dotted_name,
)

#: Methods a hook may legitimately call on the network/machine handle.
_SANCTIONED_NET_CALLS = frozenset({
    "crash_reset", "_count_violation", "resync_entropy",
})
#: Mutating container/method tails beyond GROW_METHODS.
_MUTATORS = GROW_METHODS | {"clear", "pop", "remove", "discard", "popitem"}
#: Counter-ish call tails that count as "billing" a swallowed message.
_BILLING_TAILS = frozenset({"bump", "emit", "record", "count", "tally"})


def _is_fault_hook_class(cls: ast.ClassDef) -> bool:
    """A FaultHook implementation: defines ``intercept`` or subclasses a
    base whose name ends in ``FaultHook``."""
    for base in cls.bases:
        dotted = dotted_name(base)
        if dotted is not None and dotted.split(".")[-1] == "FaultHook":
            return True
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name == "intercept"
        for node in cls.body
    )


class ImpureFaultHook(Rule):
    """A FaultHook implementation with replay-breaking side effects."""

    code = "SIM007"
    name = "impure-fault-hook"
    summary = "fault hook mutates machine state, draws unseeded entropy, or swallows unbilled"

    def check(
        self, tree: ast.Module, path: str, ctx: Optional[LintContext] = None
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and _is_fault_hook_class(node):
                yield from self._check_hook(node, path)

    def _check_hook(self, cls: ast.ClassDef, path: str) -> Iterator[Finding]:
        for func in cls.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            net_params = self._net_params(func)
            yield from self._check_entropy(func, cls, path)
            yield from self._check_net_mutation(func, cls, net_params, path)
            if func.name == "intercept":
                yield from self._check_swallowed(func, cls, path)

    @staticmethod
    def _net_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
        """Parameters that hand the hook a simulator handle."""
        names = [a.arg for a in func.args.args if a.arg != "self"]
        out = {n for n in names if n in ("net", "network")}
        if func.name == "intercept" and len(names) >= 2:
            out.add(names[1])  # intercept(self, messages, net)
        return out

    # -- unseeded entropy ----------------------------------------------
    def _check_entropy(
        self,
        func: ast.AST,
        cls: ast.ClassDef,
        path: str,
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func) or ""
            tail = call_tail(node)
            if tail == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    f"'{cls.name}' draws from default_rng() with no seed — "
                    "a fault hook must derive every decision from its "
                    "plan's seed or replays diverge",
                    path, node,
                )
            elif dotted.startswith("random.") and dotted != "random.Random":
                yield self.finding(
                    f"'{cls.name}' calls the global RNG '{dotted}' — fault "
                    "schedules must replay from the plan seed",
                    path, node,
                )

    # -- net/machine mutation ------------------------------------------
    def _check_net_mutation(
        self,
        func: ast.AST,
        cls: ast.ClassDef,
        net_params: Set[str],
        path: str,
    ) -> Iterator[Finding]:
        if not net_params:
            return
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    root = self._root_name(target)
                    if root in net_params:
                        yield self.finding(
                            f"'{cls.name}.{getattr(func, 'name', '?')}' writes "
                            f"through the simulator handle '{root}' — a fault "
                            "hook observes the wire, it does not own machine "
                            "state",
                            path, node,
                        )
            elif isinstance(node, ast.Call):
                tail = call_tail(node)
                if tail is None or tail in _SANCTIONED_NET_CALLS:
                    continue
                if tail in _MUTATORS and isinstance(node.func, ast.Attribute):
                    root = self._root_name(node.func.value)
                    if root in net_params:
                        yield self.finding(
                            f"'{cls.name}.{getattr(func, 'name', '?')}' mutates "
                            f"'{dotted_name(node.func) or tail}' on the "
                            "simulator handle — unbilled state surgery breaks "
                            "replay equivalence",
                            path, node,
                        )

    @staticmethod
    def _root_name(node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    # -- swallowed messages --------------------------------------------
    def _check_swallowed(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ast.ClassDef,
        path: str,
    ) -> Iterator[Finding]:
        names = [a.arg for a in func.args.args if a.arg != "self"]
        msg_params = {n for n in names if n in ("messages", "msgs")}
        if not msg_params and names:
            msg_params = {names[0]}
        for loop in ast.walk(func):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            if not self._iterates_messages(loop.iter, msg_params):
                continue
            yield from self._check_loop_continues(loop, cls, path)

    @staticmethod
    def _iterates_messages(iterable: ast.expr, msg_params: Set[str]) -> bool:
        for node in ast.walk(iterable):
            if isinstance(node, ast.Name) and node.id in msg_params:
                return True
        return False

    def _check_loop_continues(
        self, loop: ast.stmt, cls: ast.ClassDef, path: str
    ) -> Iterator[Finding]:
        # A `continue` drops the message from this iteration's outcome.
        # Billing = any call or raise in the statements that run before
        # it on its branch (the innermost body containing the continue).
        for body in self._bodies(loop):
            for idx, stmt in enumerate(body):
                if not isinstance(stmt, ast.Continue):
                    continue
                before = body[:idx]
                if not any(self._has_call_or_raise(s) for s in before):
                    yield self.finding(
                        f"'{cls.name}.intercept' drops a message via bare "
                        "'continue' with no counter bump, emit, or raise on "
                        "its branch — every swallowed message must be billed "
                        "to the injector ledger",
                        path, stmt,
                    )

    def _bodies(self, node: ast.stmt) -> Iterator[List[ast.stmt]]:
        """Every statement list nested in the loop, excluding nested
        loops' bodies — a ``continue`` there targets the inner loop."""
        stack: List[Sequence[ast.stmt]] = [getattr(node, "body", [])]
        while stack:
            body = list(stack.pop())
            yield body
            for stmt in body:
                if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                    continue  # inner loop owns its continues
                for name in ("body", "orelse", "finalbody"):
                    child = getattr(stmt, name, None)
                    if child:
                        stack.append(child)
                for handler in getattr(stmt, "handlers", ()):
                    stack.append(handler.body)

    @staticmethod
    def _has_call_or_raise(stmt: ast.stmt) -> bool:
        return any(
            isinstance(sub, (ast.Call, ast.Raise)) for sub in ast.walk(stmt)
        )
