"""State-isolation rules: SIM002 (cross-machine state), SIM005 (space).

Both are local by nature — the patterns through which isolation breaks
are visible in one module — so they stay intraprocedural in v2.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    GROW_METHODS,
    LintContext,
    Rule,
    call_tail,
    dotted_name,
    walk_functions,
)


# ----------------------------------------------------------------------
# SIM002 — cross-machine state access
# ----------------------------------------------------------------------
class CrossMachineState(Rule):
    """Machine code touching state it could not own.

    Three patterns break machine isolation: ``global`` declarations
    (module-level mutable state is visible to every simulated machine at
    once), mutation of a module-level container from inside a function,
    and a :class:`MachineProgram` method reaching into another object's
    ``.state``/``.store``.
    """

    code = "SIM002"
    name = "cross-machine-state"
    summary = "protocol code touches shared or foreign machine state"

    def check(
        self, tree: ast.Module, path: str, ctx: Optional[LintContext] = None
    ) -> Iterator[Finding]:
        module_containers = self._module_level_containers(tree)
        for func in walk_functions(tree):
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    yield self.finding(
                        f"'global {', '.join(node.names)}' — module-level mutable "
                        "state is shared across all simulated machines",
                        path, node,
                    )
                elif isinstance(node, ast.Call):
                    func_expr = node.func
                    if (
                        isinstance(func_expr, ast.Attribute)
                        and func_expr.attr in GROW_METHODS
                        and isinstance(func_expr.value, ast.Name)
                        and func_expr.value.id in module_containers
                    ):
                        yield self.finding(
                            f"mutation of module-level container "
                            f"'{func_expr.value.id}' from protocol code",
                            path, node,
                        )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    for target in self._store_roots(node):
                        if target in module_containers:
                            yield self.finding(
                                f"write into module-level container '{target}' "
                                "from protocol code",
                                path, node,
                            )
        yield from self._check_programs(tree, path)

    def _module_level_containers(self, tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            targets: Sequence[ast.AST] = ()
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not self._is_container_expr(value):
                continue
            for t in targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
        return names

    @staticmethod
    def _is_container_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"list", "dict", "set", "defaultdict",
                                    "OrderedDict", "Counter", "deque"}
        return False

    @staticmethod
    def _store_roots(node: ast.AST) -> Iterator[str]:
        # Only subscript stores count as container mutations; a plain
        # rebind creates a local that shadows the global, it does not mutate.
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for t in targets:
            if isinstance(t, ast.Subscript):
                root = t.value
                while isinstance(root, ast.Subscript):
                    root = root.value
                if isinstance(root, ast.Name):
                    yield root.id

    def _check_programs(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {b for base in node.bases if (b := dotted_name(base)) is not None}
            if not any(b.split(".")[-1] == "MachineProgram" for b in bases):
                continue
            for func in node.body:
                if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for sub in ast.walk(func):
                    if (
                        isinstance(sub, ast.Attribute)
                        and sub.attr in {"state", "store"}
                        and not (
                            isinstance(sub.value, ast.Name)
                            and sub.value.id == "self"
                        )
                    ):
                        owner = dotted_name(sub.value) or "<expr>"
                        yield self.finding(
                            f"MachineProgram method reads '{owner}.{sub.attr}' — "
                            "a program may only touch self.state; remote facts "
                            "must arrive through the network",
                            path, sub,
                        )


# ----------------------------------------------------------------------
# SIM005 — space-budget escape
# ----------------------------------------------------------------------
_GAUGE_CALLS = {"set_gauge", "bump_gauge", "_update_gauges", "refresh_gauges"}


class SpaceBudgetEscape(Rule):
    """Container growth that dodges the machine's space gauges.

    Applies to classes that participate in space accounting (their body
    calls a gauge method somewhere): any method that grows a public
    ``self.<container>`` without touching a gauge understates
    ``Machine.space_words`` until some later method happens to refresh
    it.  Underscore-prefixed attributes are exempt — they are simulator
    acceleration caches, not modeled machine state.
    """

    code = "SIM005"
    name = "space-budget-escape"
    summary = "state container grown without a space-gauge update"

    def check(
        self, tree: ast.Module, path: str, ctx: Optional[LintContext] = None
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and self._class_uses_gauges(node):
                yield from self._check_class(node, path)

    @staticmethod
    def _class_uses_gauges(cls: ast.ClassDef) -> bool:
        return any(
            isinstance(sub, ast.Call) and call_tail(sub) in _GAUGE_CALLS
            for sub in ast.walk(cls)
        )

    def _check_class(self, cls: ast.ClassDef, path: str) -> Iterator[Finding]:
        for func in cls.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name == "__init__" or self._has_gauge_call(func):
                continue
            for growth, attr in self._growth_sites(func):
                yield self.finding(
                    f"'{cls.name}.{func.name}' grows 'self.{attr}' without a "
                    "space-gauge update (call set_gauge/bump_gauge or the "
                    "class's gauge refresh)",
                    path, growth,
                )

    @staticmethod
    def _has_gauge_call(func: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Call) and call_tail(sub) in _GAUGE_CALLS
            for sub in ast.walk(func)
        )

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        """``self.<attr>`` at the root of an attribute/subscript chain."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _growth_sites(
        self, func: ast.AST
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        attr = self._self_attr(target.value)
                        if attr and not attr.startswith("_"):
                            yield node, attr
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in GROW_METHODS
                ):
                    attr = self._self_attr(func_expr.value)
                    if attr and not attr.startswith("_"):
                        yield node, attr
