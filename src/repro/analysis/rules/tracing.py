"""Trace-schema rule: SIM008 (trace event drift).

The JSONL trace format is a versioned contract
(:mod:`repro.trace.events` owns the schema as typed
:class:`~repro.trace.events.EventSpec` records).  Every
``recorder.emit("<type>", field=...)`` call site is checked against
that registry: an unknown event type, a missing required field, or a
field the schema does not declare is drift — either the emitter is
wrong, or the schema needed a version bump and did not get one.

Calls whose event type is not a string literal, or that splat
``**fields``, are skipped: those sites are the schema module's own
plumbing and the runtime validator's problem.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    LintContext,
    Rule,
    call_tail,
    has_star_args,
    string_const,
)

#: Fields stamped by the emitter itself, never by the call site.
_AUTO_FIELDS = frozenset({"type", "seq"})


def _load_schema() -> Tuple[Dict[str, Tuple[str, ...]], Dict[str, Tuple[str, ...]]]:
    """(required, allowed) per event type, from the live schema module.

    Reading the schema from :mod:`repro.trace.events` (stdlib-only, no
    numpy) keeps the rule and the runtime validator in lock-step: a
    schema bump updates both, and an emitter that drifts from either is
    flagged.
    """
    from repro.trace.events import EVENT_SPECS

    required: Dict[str, Tuple[str, ...]] = {}
    allowed: Dict[str, Tuple[str, ...]] = {}
    for spec in EVENT_SPECS:
        required[spec.type] = spec.required
        allowed[spec.type] = spec.required + spec.optional
    return required, allowed


class TraceEventDrift(Rule):
    """An ``emit(...)`` call that does not fit the versioned event schema."""

    code = "SIM008"
    name = "trace-event-drift"
    summary = "emit() call drifts from the versioned trace event schema"

    def __init__(self) -> None:
        self._schema: Optional[
            Tuple[Dict[str, Tuple[str, ...]], Dict[str, Tuple[str, ...]]]
        ] = None

    def check(
        self, tree: ast.Module, path: str, ctx: Optional[LintContext] = None
    ) -> Iterator[Finding]:
        if self._schema is None:
            try:
                self._schema = _load_schema()
            except ImportError:  # pragma: no cover - analysis without repro.trace
                return
        required, allowed = self._schema
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or call_tail(node) != "emit":
                continue
            if not node.args:
                continue
            etype = string_const(node.args[0])
            if etype is None:
                continue  # dynamic type: runtime validation's job
            if etype not in required:
                yield self.finding(
                    f"emit of unknown trace event type {etype!r} — not in "
                    "the repro-trace schema; add an EventSpec (and bump the "
                    "schema version) before emitting it",
                    path, node,
                )
                continue
            provided = {kw.arg for kw in node.keywords if kw.arg is not None}
            unknown = sorted(
                f for f in provided
                if f not in allowed[etype] and f not in _AUTO_FIELDS
            )
            if unknown:
                yield self.finding(
                    f"emit('{etype}') carries field(s) {unknown} the schema "
                    "does not declare — extend the EventSpec (schema bump) "
                    "instead of drifting the wire format",
                    path, node,
                )
            if has_star_args(node):
                continue  # **fields: cannot prove absence statically
            missing = sorted(
                f for f in required[etype]
                if f not in provided and f not in _AUTO_FIELDS
            )
            if missing:
                yield self.finding(
                    f"emit('{etype}') missing required field(s) {missing} — "
                    "readers of the versioned schema will reject this event",
                    path, node,
                )
