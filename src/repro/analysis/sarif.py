"""SARIF 2.1.0 serialization of a simlint report.

SARIF is the interchange format code-scanning UIs ingest (GitHub's
``upload-sarif`` action renders each result as an annotation on the PR
diff).  The mapping is deliberately small:

* one ``run`` with ``tool.driver.name = "simlint"`` and the full rule
  catalog (so viewers can show rule help without a second lookup);
* one ``result`` per finding — new findings at level ``error``,
  baseline-absorbed findings at level ``note`` with
  ``properties.baselined = true`` and the debt's age in days;
* ``artifactLocation.uri`` is the forward-slash relative path, which is
  what code-scanning matches against the checkout.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import BaselineEntry
from repro.analysis.findings import META_CODE, Finding
from repro.analysis.rules import ALL_RULES, Rule

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "https://example.invalid/repro/docs/static_analysis.md"


def _rule_descriptor(rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": "error"},
    }


def _meta_descriptor() -> Dict[str, Any]:
    return {
        "id": META_CODE,
        "name": "meta",
        "shortDescription": {
            "text": "malformed, bare, or unused suppression directives"
        },
        "defaultConfiguration": {"level": "error"},
    }


def _result(
    finding: Finding,
    level: str,
    properties: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    uri = os.path.normpath(finding.path).replace(os.sep, "/").lstrip("./")
    result: Dict[str, Any] = {
        "ruleId": finding.code,
        "level": level,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if properties:
        result["properties"] = properties
    return result


def to_sarif(
    findings: Sequence[Finding],
    baselined: Sequence[Tuple[Finding, BaselineEntry]] = (),
    rules: Optional[Sequence[Rule]] = None,
) -> Dict[str, Any]:
    """Build the SARIF log object (a plain dict, ready for json.dump)."""
    catalog = list(rules if rules is not None else ALL_RULES)
    results: List[Dict[str, Any]] = [_result(f, "error") for f in findings]
    for finding, entry in baselined:
        results.append(
            _result(
                finding,
                "note",
                {
                    "baselined": True,
                    "first_seen": entry.first_seen,
                    "age_days": entry.age_days(),
                },
            )
        )
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": _INFO_URI,
                        "rules": [
                            _meta_descriptor(),
                            *(_rule_descriptor(r) for r in catalog),
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(
    findings: Sequence[Finding],
    baselined: Sequence[Tuple[Finding, BaselineEntry]] = (),
    rules: Optional[Sequence[Rule]] = None,
) -> str:
    return json.dumps(
        to_sarif(findings, baselined, rules), indent=2, sort_keys=True
    )
