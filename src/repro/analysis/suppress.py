"""Inline suppressions: ``# simlint: disable=SIMxxx[,SIMyyy] reason``.

A suppression silences the named rule(s) on the physical line(s) of the
flagged statement.  Written inline (after code) it covers its own line;
written on a line of its own it covers the statement that follows.  The
reason is mandatory — a suppression is a claim
that the analyzer is wrong *here*, and the claim must be argued where it
is made.  A bare ``disable=`` without a reason, an unknown rule code, or
a malformed directive is itself reported as ``SIM000``, so suppressions
cannot rot silently.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import META_CODE, Finding

#: The directive marker; anything after it must parse as ``disable=``.
_MARKER_RE = re.compile(r"#\s*simlint\s*:\s*(?P<body>.*)$")
#: ``disable=SIM001,SIM002 reason text`` — codes first, reason after.
_DISABLE_RE = re.compile(
    r"^disable\s*=\s*(?P<codes>[A-Za-z0-9_,\s]*?)(?:\s+(?P<reason>\S.*?))?\s*$"
)
_CODE_RE = re.compile(r"^SIM\d{3}$")


@dataclass
class Suppression:
    """One parsed ``disable=`` directive."""

    line: int
    codes: Tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)


@dataclass
class SuppressionTable:
    """All suppressions of one file, indexed by physical line."""

    by_line: Dict[int, List[Suppression]]
    errors: List[Finding]

    def is_suppressed(self, code: str, lines: range) -> bool:
        """True if ``code`` is disabled on any physical line of the node."""
        for line in lines:
            for sup in self.by_line.get(line, ()):
                if code in sup.codes:
                    sup.used = True
                    return True
        return False

    def unused(self) -> List[Suppression]:
        out: List[Suppression] = []
        seen: Set[int] = set()
        for sups in self.by_line.values():
            for s in sups:
                if not s.used and id(s) not in seen:
                    seen.add(id(s))
                    out.append(s)
        return out


def parse_suppressions(path: str, source: str) -> SuppressionTable:
    """Extract and validate every ``# simlint:`` comment in ``source``."""
    by_line: Dict[int, List[Suppression]] = {}
    errors: List[Finding] = []
    known: Set[str] = _known_codes()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return SuppressionTable(by_line, errors)  # parse errors surface elsewhere
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        marker = _MARKER_RE.search(tok.string)
        if marker is None:
            continue
        line, col = tok.start
        body = marker.group("body").strip()
        directive = _DISABLE_RE.match(body)
        if directive is None:
            errors.append(Finding(
                META_CODE,
                f"malformed simlint directive {body!r} "
                "(expected 'disable=SIMxxx[,SIMyyy] reason')",
                path, line, col,
            ))
            continue
        codes = tuple(
            c.strip() for c in directive.group("codes").split(",") if c.strip()
        )
        reason = (directive.group("reason") or "").strip()
        bad = [c for c in codes if not _CODE_RE.match(c) or c not in known]
        if not codes or bad:
            errors.append(Finding(
                META_CODE,
                f"unknown rule code(s) {', '.join(bad) or '<none>'} in suppression",
                path, line, col,
            ))
            continue
        if not reason:
            errors.append(Finding(
                META_CODE,
                f"suppression of {', '.join(codes)} has no reason — "
                "write '# simlint: disable=<code> <why this is safe>'",
                path, line, col,
            ))
            continue
        sup = Suppression(line, codes, reason)
        by_line.setdefault(line, []).append(sup)
        if tok.line[:col].strip() == "":
            # Standalone directive: it also covers the next physical line
            # (the statement it annotates).  The object is shared, so a
            # hit through either registration marks it used.
            by_line.setdefault(line + 1, []).append(sup)
    return SuppressionTable(by_line, errors)


def _known_codes() -> Set[str]:
    from repro.analysis.rules import ALL_RULES

    return {rule.code for rule in ALL_RULES}
