"""Baselines the paper's algorithm is compared against.

* :class:`SequentialDynamicMST` — single-machine oracle (sorted-edge
  Kruskal recompute per batch); the ground truth for every test and the
  wall-clock reference;
* :class:`RecomputeBaseline` — the *static* cluster approach: rebuild the
  MST from scratch with the Theorem 5.8 protocol after every batch
  (Θ(n/k + log n) rounds per batch, however small the batch);
* :class:`OneAtATimeBaseline` — the Italiano-et-al.-style dynamic
  approach: O(1) rounds per *individual* update (§5.4), i.e. Θ(b) rounds
  for a size-b batch.  (Italiano et al. maintain an approximate MST; our
  §5.4 exact single-update algorithm has the same round profile, which is
  what the comparison measures.)
"""

from repro.baselines.sequential import SequentialDynamicMST
from repro.baselines.recompute import RecomputeBaseline
from repro.baselines.one_at_a_time import OneAtATimeBaseline
from repro.baselines.approximate import ApproximateDynamicMST

__all__ = [
    "SequentialDynamicMST",
    "RecomputeBaseline",
    "OneAtATimeBaseline",
    "ApproximateDynamicMST",
]
