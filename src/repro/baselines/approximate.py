"""(1+ε)-approximate dynamic MST via weight rounding.

Italiano et al. (the paper's §1/§2 point of departure) maintain an
*approximate* MST in O(1) rounds per update.  Their core trick is weight
discretization: snap weights to powers of (1+ε) so only O(log_{1+ε} W)
distinct classes exist.  We reproduce the accuracy/exactness trade by
running the exact machinery on rounded weights: the result is a spanning
forest whose weight is within (1+ε)× of the true MSF — the quantity the
comparison bench reports next to the exact algorithm's.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Set

from repro.core.api import BatchReport, DynamicMST
from repro.graphs.generators import RngLike
from repro.graphs.graph import Edge, WeightedGraph
from repro.graphs.streams import Update


def round_weight(w: float, epsilon: float, floor: float = 1e-12) -> float:
    """Snap ``w`` up to the next power of (1 + epsilon)."""
    if w <= floor:
        return floor
    base = 1.0 + epsilon
    return base ** math.ceil(math.log(w / floor, base)) * floor


class ApproximateDynamicMST:
    """Exact machinery over (1+ε)-rounded weights.

    The maintained forest is a minimum spanning forest of the *rounded*
    graph; its true weight is at most (1+ε) times the optimum (every
    edge's rounded weight is within a (1+ε) factor of its true weight and
    rounding preserves the ≤-order up to merging of near-ties).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        k: int,
        epsilon: float = 0.1,
        rng: RngLike = None,
        init: str = "free",
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.true_weights = {(e.u, e.v): e.weight for e in graph.edges()}
        rounded = WeightedGraph(graph.vertices())
        for e in graph.edges():
            rounded.add_edge(e.u, e.v, round_weight(e.weight, epsilon))
        self.dm = DynamicMST.build(rounded, k, rng=rng, init=init)

    def apply_batch(self, batch: Sequence[Update]) -> BatchReport:
        rounded_batch: List[Update] = []
        for upd in batch:
            if upd.kind == "add":
                self.true_weights[upd.endpoints] = upd.weight
                rounded_batch.append(
                    Update.add(upd.u, upd.v, round_weight(upd.weight, self.epsilon))
                )
            else:
                self.true_weights.pop(upd.endpoints, None)
                rounded_batch.append(upd)
        return self.dm.apply_batch(rounded_batch)

    def msf_edges(self) -> Set[Edge]:
        """The maintained forest, reported with *true* weights."""
        return {
            Edge(e.u, e.v, self.true_weights[(e.u, e.v)])
            for e in self.dm.msf_edges()
        }

    def total_weight(self) -> float:
        return sum(e.weight for e in self.msf_edges())

    def distinct_weight_classes(self) -> int:
        """Distinct rounded weights currently live (the Italiano knob)."""
        return len({e.weight for e in self.dm.shadow.edges()})
