"""The per-update dynamic baseline (Italiano-et-al. style).

Processes each update of a batch individually with the §5.4 algorithms:
O(1) rounds per update, hence Θ(b) rounds per size-b batch.  A thin
wrapper around :meth:`DynamicMST.apply_one_at_a_time` so the benchmark
harness can treat all engines uniformly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.core.api import DynamicMST
from repro.graphs.generators import RngLike
from repro.graphs.graph import Edge, WeightedGraph
from repro.graphs.streams import Update
from repro.sim.partition import VertexPartition


class OneAtATimeBaseline:
    """Single-update processing of batches over the k-machine cluster."""

    def __init__(
        self,
        graph: WeightedGraph,
        k: int,
        rng: RngLike = None,
        init: str = "free",
        vp: Optional[VertexPartition] = None,
    ) -> None:
        self.dm = DynamicMST.build(graph, k, rng=rng, init=init, vp=vp)
        self.batch_rounds: List[int] = []

    def apply_batch(self, batch: Sequence[Update]) -> Set[Edge]:
        report = self.dm.apply_one_at_a_time(batch)
        self.batch_rounds.append(report.rounds)
        return self.dm.msf_edges()

    def msf_edges(self) -> Set[Edge]:
        return self.dm.msf_edges()

    @property
    def rounds(self) -> int:
        return self.dm.rounds
