"""The static-per-batch baseline: rebuild the MST after every batch.

This is what a cluster without dynamic algorithms does: apply the edge
churn to the distributed storage (free — updates arrive at their hosting
machines) and rerun the full Theorem 5.8 construction.  Per-batch cost is
Θ(n/k + log n) rounds no matter how small the batch, which is the curve
the batch-dynamic algorithm beats (bench `bench_baseline_comparison`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.core.init_build import distributed_init, make_states
from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import Edge, WeightedGraph
from repro.graphs.streams import Update, apply_updates
from repro.sim.network import KMachineNetwork
from repro.sim.partition import VertexPartition, random_vertex_partition


class RecomputeBaseline:
    """Distributed full-recompute per batch."""

    def __init__(
        self,
        graph: WeightedGraph,
        k: int,
        rng: RngLike = None,
        vp: Optional[VertexPartition] = None,
    ) -> None:
        self.k = k
        self.rng = as_rng(rng)
        self.graph = graph.copy()
        self.net = KMachineNetwork(k)
        self.vp = vp if vp is not None else random_vertex_partition(
            sorted(graph.vertices()), k, self.rng
        )
        self._msf: Set[Edge] = set()
        self.batch_rounds: List[int] = []
        self._rebuild()

    def _rebuild(self) -> int:
        before = self.net.ledger.snapshot()
        states, tid = make_states(self.graph, self.vp, self.net)
        self._msf, _ = distributed_init(
            self.net, self.vp, states, sorted(self.graph.vertices()), tid
        )
        return self.net.ledger.since(before).rounds

    def apply_batch(self, batch: Sequence[Update]) -> Set[Edge]:
        apply_updates(self.graph, batch)
        self.batch_rounds.append(self._rebuild())
        return set(self._msf)

    def msf_edges(self) -> Set[Edge]:
        return set(self._msf)

    @property
    def rounds(self) -> int:
        return self.net.ledger.rounds
