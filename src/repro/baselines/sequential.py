"""Sequential dynamic-MST oracle.

Maintains the evolving graph and recomputes the unique MSF per batch with
Kruskal over an incrementally maintained sorted edge list.  This is the
correctness oracle for every distributed engine and the single-machine
wall-clock baseline for the throughput benches.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Sequence, Set, Tuple

from repro.graphs.dsu import DisjointSet
from repro.graphs.graph import Edge, WeightedGraph, normalize
from repro.graphs.streams import Update


class SequentialDynamicMST:
    """Single-machine batched dynamic MSF (sorted-list Kruskal)."""

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph.copy()
        self._sorted: List[Tuple[Tuple[float, int, int], Edge]] = sorted(
            (e.key(), e) for e in graph.edges()
        )
        self._msf: Set[Edge] = set()
        self._recompute()

    def _recompute(self) -> None:
        dsu = DisjointSet(self.graph.vertices())
        msf: Set[Edge] = set()
        for _key, e in self._sorted:
            if dsu.union(e.u, e.v):
                msf.add(e)
        self._msf = msf

    def apply_batch(self, batch: Sequence[Update]) -> Set[Edge]:
        """Apply the batch and return the new MSF."""
        for upd in batch:
            u, v = upd.endpoints
            if upd.kind == "add":
                self.graph.add_edge(u, v, upd.weight)
                e = Edge(u, v, upd.weight)
                insort(self._sorted, (e.key(), e))
            else:
                e = self.graph.remove_edge(u, v)
                idx = self._index_of(e)
                self._sorted.pop(idx)
        self._recompute()
        return set(self._msf)

    def _index_of(self, e: Edge) -> int:
        lo, hi = 0, len(self._sorted)
        key = e.key()
        while lo < hi:
            mid = (lo + hi) // 2
            if self._sorted[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo >= len(self._sorted) or self._sorted[lo][0] != key:
            raise KeyError(f"edge {e} not in sorted list")
        return lo

    def msf_edges(self) -> Set[Edge]:
        return set(self._msf)

    def total_weight(self) -> float:
        return sum(e.weight for e in self._msf)

    def in_mst(self, u: int, v: int) -> bool:
        u, v = normalize(u, v)
        return any((e.u, e.v) == (u, v) for e in self._msf)
