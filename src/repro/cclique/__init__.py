"""CONGESTED-CLIQUE MST engines (the §6.2 deletion subroutine).

The paper reduces a k-edge deletion batch to one MST instance on a
contracted graph with at most k+1 super-vertices, solved with the
Jurdziński–Nowicki O(1)-round CONGESTED-CLIQUE algorithm.  Per the
substitution table in DESIGN.md we provide three interchangeable engines
(every engine is exact; they differ only in measured round count):

* ``boruvka`` — deterministic Borůvka over batched min-queries,
  O(log k) rounds;
* ``lotker`` — merge-and-filter with doubly-growing machine groups
  (Lotker et al. 2003), O(log log k) rounds;
* ``sample_gather`` — JN-flavoured randomized engine: gather-and-solve
  when the instance is sparse (JN's O(1) base case), preceded by
  group-pair sparsification + Lenzen dedup when it is not; measured O(1)
  rounds on every instance the §6.2 reduction produces.

All engines speak :class:`CCEdge` (a super-vertex edge carrying the
original graph edge as payload) and leave every machine knowing the full
super-MSF.
"""

from repro.cclique.ccedge import CCEdge
from repro.cclique.engines import (
    ENGINES,
    boruvka_engine,
    cc_msf,
    lotker_engine,
    sample_gather_engine,
)
from repro.cclique.sketches import AGMSketch, SketchConnectivity
from repro.cclique.model import CongestedClique
from repro.cclique.dynamic_connectivity import SketchDynamicConnectivity

__all__ = [
    "CCEdge",
    "cc_msf",
    "boruvka_engine",
    "lotker_engine",
    "sample_gather_engine",
    "ENGINES",
    "AGMSketch",
    "SketchConnectivity",
    "CongestedClique",
    "SketchDynamicConnectivity",
]
