"""Super-vertex edges for the contracted MST instances."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple


@dataclass(frozen=True, order=True)
class CCEdge:
    """An edge between super-vertices (components).

    ``key`` is the global total-order key of the underlying graph edge
    (weight, u, v), so contracted instances inherit the unique-MSF
    property.  ``data`` carries whatever the caller needs back (for the
    §6.2 reduction: the original Edge).  Ordering is by (key, cu, cv) so
    sorted CCEdge lists are deterministic.
    """

    key: Tuple[float, int, int]
    cu: int
    cv: int
    data: Any = None

    def __post_init__(self) -> None:
        if self.cu == self.cv:
            raise ValueError("super self-loop")
        if self.cu > self.cv:
            raise ValueError("use CCEdge.make: endpoints must be canonical (cu < cv)")

    @staticmethod
    def make(cu: int, cv: int, key: Tuple[float, int, int], data: Any = None) -> "CCEdge":
        a, b = (cu, cv) if cu < cv else (cv, cu)
        return CCEdge(key, a, b, data)

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.cu, self.cv)
