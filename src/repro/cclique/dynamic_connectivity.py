"""Batch-dynamic connectivity with AGM sketches (Dhulipala et al. style).

The related-work comparator: where the paper maintains an *exact MST*
with Euler labels, the sketching line of work maintains *connectivity*
with linear sketches — updates are O(polylog) sketch-cell changes and a
spanning forest is recoverable per batch by sketch-Borůvka.

This is a faithful-in-spirit single-structure implementation (the
sketches are real linear sketches; the per-batch recovery is the
standard summed-sketch Borůvka).  It exists for the comparison bench and
tests — the exact-MST reproduction does not depend on it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cclique.sketches import AGMSketch
from repro.graphs.dsu import DisjointSet
from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import WeightedGraph
from repro.graphs.streams import Update


class SketchDynamicConnectivity:
    """Maintains per-vertex sketch families under edge updates.

    ``columns`` independent sketch families support that many Borůvka
    rounds per recovery; O(log n) suffices w.h.p., and recovery falls
    back to reporting possibly-unmerged components if the budget runs
    out (detected by the tests against the DSU ground truth).
    """

    def __init__(self, graph: WeightedGraph, columns: Optional[int] = None,
                 rng: RngLike = None) -> None:
        rng = as_rng(rng)
        self.n = max(graph.vertices(), default=0) + 1
        self.vertices = sorted(graph.vertices())
        if columns is None:
            columns = 2 * int(np.ceil(np.log2(max(self.n, 2)))) + 4
        self.columns = columns
        self._seeds = [int(rng.integers(0, 2**62)) for _ in range(columns)]
        self._sketches: List[Dict[int, AGMSketch]] = [
            {v: AGMSketch(max(self.n, 2), seed) for v in self.vertices}
            for seed in self._seeds
        ]
        self.words_updated = 0
        self._edges = set()
        for e in graph.edges():
            self._apply(e.u, e.v, +1)
            self._edges.add((e.u, e.v))

    def _apply(self, u: int, v: int, delta: int) -> None:
        for fam in self._sketches:
            fam[u].update_for(u, u, v, delta)
            fam[v].update_for(v, u, v, delta)
            # Each endpoint touches O(levels) cells of one sampler.
            self.words_updated += fam[u].words // len(fam[u].sampler.cells) * 2
        # (coarse words metric: 2 cell-columns per family)

    def apply_batch(self, batch: Sequence[Update]) -> None:
        for upd in batch:
            pair = upd.endpoints
            if upd.kind == "add":
                if pair in self._edges:
                    raise ValueError(f"edge {pair} already present")
                self._edges.add(pair)
                self._apply(*pair, +1)
            else:
                if pair not in self._edges:
                    raise ValueError(f"edge {pair} not present")
                self._edges.discard(pair)
                self._apply(*pair, -1)

    def components(self) -> DisjointSet:
        """Sketch-Borůvka over the maintained sketches (one-shot copies)."""
        import copy

        dsu = DisjointSet(self.vertices)
        for fam in self._sketches:
            # Sum each current component's sketches and try to merge.
            comp: Dict[object, AGMSketch] = {}
            for v in self.vertices:
                root = dsu.find(v)
                sk = copy.deepcopy(fam[v])
                if root in comp:
                    comp[root].merge(sk)
                else:
                    comp[root] = sk
            merged = False
            for root in sorted(comp, key=repr):
                got = comp[root].sample_edge()
                if got is not None and got in self._edges and dsu.union(*got):
                    merged = True
            if not merged and dsu.n_components == len(
                {dsu.find(v) for v in self.vertices}
            ):
                # Keep scanning remaining families only if progress may
                # still be possible; cheap early-exit heuristic:
                continue
        return dsu

    def connected(self, u: int, v: int) -> bool:
        d = self.components()
        return d.connected(u, v)
