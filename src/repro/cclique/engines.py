"""Exact MST engines for contracted CONGESTED-CLIQUE instances.

Input convention (matching the state after §6.2 step 7): ``n_vertices``
super-vertices, ``local_edges[m]`` the :class:`CCEdge` list held by
machine m.  Every engine returns the unique super-MSF (by the global edge
key order) and finishes with all machines knowing it — the final result
broadcast is part of the measured cost.

Engines:

* :func:`boruvka_engine` — deterministic; each phase batches one
  min-query per component (O(c/k + 1) rounds) and merges locally from the
  broadcast answers; O(log n') phases.
* :func:`lotker_engine` — merge-and-filter paradigm (Lotker et al. 2003 /
  Lattanzi et al. filtering): machines pair up each level, ship their
  locally-filtered MSF to the partner via Lenzen routing (O(1) rounds per
  level because a local MSF has < n' ≤ k+1 edges), halving the number of
  active machines; O(log k) levels with tiny constants.
* :func:`sample_gather_engine` — the JN-flavoured randomized engine
  (DESIGN.md substitution): if the instance is *sparse* (m' ≤ gather
  threshold) gather everything at a leader in O(1) rounds via Lenzen
  routing and solve locally — Jurdziński–Nowicki's own base case.  Dense
  instances are first sparsified by group-pair partitioning (each machine
  owns one group pair, computes the local MSF of the edges routed to it),
  which is O(1) rounds per iteration; if sparsification stalls the engine
  falls back to Borůvka phases.  On every instance the §6.2 reduction
  produces, the measured cost is a small constant number of rounds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.comm.aggregate import batched_queries, global_sum
from repro.comm.lenzen import lenzen_route
from repro.comm.rerouting import scheduled_broadcasts
from repro.cclique.ccedge import CCEdge
from repro.graphs.dsu import DisjointSet
from repro.graphs.generators import RngLike, as_rng
from repro.perf import config as _perf_config
from repro.perf.config import fast_path_enabled
from repro.sim.message import WORDS_COMPONENT_EDGE, Message
from repro.sim.network import Network


def _cc_local_msf(edges: Sequence[CCEdge]) -> List[CCEdge]:
    """Machine-local cycle deletion over super-vertices (no communication).

    Pure local computation (no wire), so the columnar kernel
    (:func:`repro.perf.cclique_columnar.cc_local_msf_columnar`) is used
    above the vectorize/loop crossover when the fast path is on; it
    returns the identical edge list in the identical order.
    """
    if fast_path_enabled() and len(edges) >= _perf_config.VECTOR_MIN_ROWS:
        from repro.perf.cclique_columnar import cc_local_msf_columnar

        return cc_local_msf_columnar(edges)
    dsu = DisjointSet()
    out: List[CCEdge] = []
    for e in sorted(edges):
        if dsu.union(e.cu, e.cv):
            out.append(e)
    return out


def _broadcast_result(net: Network, holder: int, msf: List[CCEdge]) -> List[CCEdge]:
    """Holder shares the final MSF with everyone (counted, O(|msf|/k + 1))."""
    msf = sorted(msf)
    scheduled_broadcasts(
        net, [(holder, ("msf_edge", e), WORDS_COMPONENT_EDGE) for e in msf]
    )
    return msf


# ----------------------------------------------------------------------
# Borůvka
# ----------------------------------------------------------------------
def boruvka_engine(
    net: Network,
    n_vertices: int,
    local_edges: Sequence[Sequence[CCEdge]],
    rng: RngLike = None,
) -> List[CCEdge]:
    """Deterministic Borůvka with batched per-component min-queries.

    Dispatch is adaptive like the update path (any execution backend
    whose fast path is on — ``inproc-columnar`` or ``parallel`` — takes
    the columnar engine, but only above the vectorize/loop crossover;
    both engines are wire-identical, so the gate never changes a ledger).
    """
    if fast_path_enabled() and (
        sum(len(edges) for edges in local_edges) >= _perf_config.VECTOR_MIN_ROWS
    ):
        from repro.perf.cclique_columnar import boruvka_engine_columnar

        return boruvka_engine_columnar(net, n_vertices, local_edges, rng)
    k = net.k
    if len(local_edges) != k:
        raise ValueError("need one edge list per machine")
    recorder = net.ledger.recorder
    if recorder is not None:
        recorder.on_engine("cc_boruvka", "scalar")
    # The component map is replicated: every machine sees the same
    # broadcast answers, so it evolves identically everywhere.
    dsu = DisjointSet(range(n_vertices))
    msf: List[CCEdge] = []
    local = [list(edges) for edges in local_edges]
    with net.ledger.phase("cc.boruvka"):
        while True:
            roots = sorted(dsu.find(v) for v in range(n_vertices))
            roots = sorted(set(roots))
            if len(roots) <= 1:
                break
            per_query: Dict[int, List[Optional[CCEdge]]] = {}
            for c in roots:
                per_query[c] = [None] * k
            for m in range(k):
                # Machine-local minimum outgoing edge per component.
                best: Dict[int, CCEdge] = {}
                for e in local[m]:
                    ru, rv = dsu.find(e.cu), dsu.find(e.cv)
                    if ru == rv:
                        continue
                    for r in (ru, rv):
                        cur = best.get(r)
                        if cur is None or e < cur:
                            best[r] = e
                for r, e in best.items():
                    per_query[r][m] = e
            answers = batched_queries(
                net, per_query, min, words=WORDS_COMPONENT_EDGE
            )
            merged_any = False
            for c in sorted(answers):
                e = answers[c]
                if e is not None and dsu.union(e.cu, e.cv):
                    msf.append(e)
                    merged_any = True
            if not merged_any:
                break
    # Everyone already knows the MSF (answers were broadcast), so no final
    # result broadcast is needed.
    return sorted(msf)


# ----------------------------------------------------------------------
# Merge-and-filter
# ----------------------------------------------------------------------
def lotker_engine(
    net: Network,
    n_vertices: int,
    local_edges: Sequence[Sequence[CCEdge]],
    rng: RngLike = None,
) -> List[CCEdge]:
    """Binary merge-and-filter: survivors halve each level.

    At level L the active machines are multiples of 2^L; machine
    m + 2^L ships its locally-filtered MSF (< n' edges, Lenzen-routable
    in O(1) rounds) to machine m, which re-filters the union.  After
    ceil(log2 k) levels machine 0 holds the global MSF and broadcasts it.
    """
    k = net.k
    if len(local_edges) != k:
        raise ValueError("need one edge list per machine")
    current: List[List[CCEdge]] = [_cc_local_msf(edges) for edges in local_edges]
    stride = 1
    with net.ledger.phase("cc.lotker"):
        while stride < k:
            msgs: List[Message] = []
            for m in range(0, k, 2 * stride):
                partner = m + stride
                if partner < k and current[partner]:
                    msgs.extend(
                        Message(partner, m, ("cc_edge", e), WORDS_COMPONENT_EDGE)
                        for e in current[partner]
                    )
            inboxes = lenzen_route(net, msgs)
            for m in range(0, k, 2 * stride):
                partner = m + stride
                if partner < k:
                    received = [p[1] for _src, p in inboxes.get(m, [])]
                    current[m] = _cc_local_msf(current[m] + received)
                    current[partner] = []
            stride *= 2
    return _broadcast_result(net, 0, current[0])


# ----------------------------------------------------------------------
# Sample-gather (JN-flavoured)
# ----------------------------------------------------------------------
def sample_gather_engine(
    net: Network,
    n_vertices: int,
    local_edges: Sequence[Sequence[CCEdge]],
    rng: RngLike = None,
    gather_factor: int = 2,
    max_sparsify: int = 2,
) -> List[CCEdge]:
    """Gather-and-solve with group-pair sparsification for dense inputs."""
    k = net.k
    if len(local_edges) != k:
        raise ValueError("need one edge list per machine")
    rng = as_rng(rng)
    current: List[List[CCEdge]] = [_cc_local_msf(edges) for edges in local_edges]
    threshold = max(gather_factor * k, n_vertices)

    for attempt in range(max_sparsify + 1):
        m_total = global_sum(net, [len(c) for c in current])
        if m_total is None or m_total <= threshold:
            break
        if attempt == max_sparsify:
            # Sparsification stalled; fall back to Borůvka on what's left.
            return boruvka_engine(net, n_vertices, current, rng)
        # Group-pair sparsification: G groups of super-vertices so that the
        # number of unordered group pairs is at most k; each pair is owned
        # by one machine which locally MSF-filters the edges it receives.
        G = max(2, int(np.floor((np.sqrt(8 * k + 1) - 1) / 2)))
        group_of = lambda v: v % G  # noqa: E731 - shared deterministic rule
        def pair_machine(gi: int, gj: int) -> int:
            a, b = (gi, gj) if gi <= gj else (gj, gi)
            idx = a * G - (a * (a - 1)) // 2 + (b - a)
            return idx % k
        msgs: List[Message] = []
        new_local: List[List[CCEdge]] = [[] for _ in range(k)]
        for m in range(k):
            for e in current[m]:
                owner = pair_machine(group_of(e.cu), group_of(e.cv))
                if owner == m:
                    new_local[m].append(e)
                else:
                    msgs.append(Message(m, owner, ("cc_edge", e), WORDS_COMPONENT_EDGE))
        inboxes = lenzen_route(net, msgs)
        for m in range(k):
            received = [p[1] for _src, p in inboxes.get(m, [])]
            new_local[m] = _cc_local_msf(new_local[m] + received)
        current = new_local

    # Sparse case (JN base case): gather everything at a random leader and
    # solve locally; the leader receives ≤ threshold = O(k) edges, which
    # Lenzen routing delivers in O(1) rounds.
    leader = int(rng.integers(0, k))
    msgs = [
        Message(m, leader, ("cc_edge", e), WORDS_COMPONENT_EDGE)
        for m in range(k)
        if m != leader
        for e in current[m]
    ]
    inboxes = lenzen_route(net, msgs)
    received = [p[1] for _src, p in inboxes.get(leader, [])]
    msf = _cc_local_msf(current[leader] + received)
    return _broadcast_result(net, leader, msf)


ENGINES: Dict[str, Callable] = {
    "boruvka": boruvka_engine,
    "lotker": lotker_engine,
    "sample_gather": sample_gather_engine,
}


def cc_msf(
    net: Network,
    n_vertices: int,
    local_edges: Sequence[Sequence[CCEdge]],
    engine: str = "sample_gather",
    rng: RngLike = None,
) -> List[CCEdge]:
    """Dispatch to a named engine; see module docstring for the menu."""
    try:
        fn = ENGINES[engine]
    except KeyError:
        raise ValueError(f"unknown engine {engine!r}; choose from {sorted(ENGINES)}") from None
    return fn(net, n_vertices, local_edges, rng=rng)
