"""The CONGESTED CLIQUE as a first-class model (§3).

The paper treats the CONGESTED CLIQUE as "the special case of the
k-machine model where k = n": machine i *is* vertex i and holds exactly
its incident edges.  :class:`CongestedClique` packages that convention
plus a static MST entry point, so the engines in
:mod:`repro.cclique.engines` can also be used standalone (they are the
§6.2 subroutine, but they solve any instance).
"""

from __future__ import annotations

from typing import List, Set

from repro.cclique.ccedge import CCEdge
from repro.cclique.engines import cc_msf
from repro.errors import ModelViolation
from repro.graphs.generators import RngLike
from repro.graphs.graph import Edge, WeightedGraph
from repro.sim.metrics import Ledger
from repro.sim.network import KMachineNetwork


class CongestedClique:
    """n machines, one vertex each, Θ(log n)-bit links."""

    def __init__(self, graph: WeightedGraph, words_per_round: int = 1) -> None:
        verts = sorted(graph.vertices())
        if verts != list(range(len(verts))):
            raise ModelViolation(
                "CONGESTED CLIQUE requires vertices 0..n-1 (machine i = vertex i)"
            )
        self.graph = graph.copy()
        self.n = len(verts)
        self.net = KMachineNetwork(max(self.n, 1), words_per_round=words_per_round)

    @property
    def ledger(self) -> Ledger:
        return self.net.ledger

    def local_edges(self) -> List[List[CCEdge]]:
        """Machine i's view: all edges incident to vertex i.

        Each edge appears on both endpoint machines, as in the model.
        """
        local: List[List[CCEdge]] = [[] for _ in range(self.n)]
        for e in self.graph.edges():
            cc = CCEdge.make(e.u, e.v, e.key(), data=(e.u, e.v, e.weight))
            local[e.u].append(cc)
            local[e.v].append(cc)
        return local

    def mst(self, engine: str = "sample_gather", rng: RngLike = None) -> Set[Edge]:
        """Compute the MSF; every machine ends up knowing it.

        Returns the edge set; rounds are measured on :attr:`ledger`.
        """
        if self.n == 0:
            return set()
        got = cc_msf(self.net, self.n, self.local_edges(), engine=engine, rng=rng)
        return {Edge(*e.data) for e in got}
