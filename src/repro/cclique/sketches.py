"""AGM linear graph sketches and sketch-based connectivity.

Ahn–Guha–McGregor (PODS '12) sketches are the standard substrate of the
related batch-dynamic *connectivity* work the paper cites (Dhulipala et
al.); the deletion-case MST subroutine of Jurdziński–Nowicki also relies
on sparse-recovery sketches.  We implement the classic construction:

* an :class:`L0Sampler` over a coordinate universe: per level, a hashed
  subsample with (count, index-sum, fingerprint) cells; recovery succeeds
  when some level isolates exactly one nonzero coordinate;
* :class:`AGMSketch` — per-vertex sketch of its edge-incidence vector
  (+1 on edges where the vertex is the min endpoint, -1 otherwise), so
  sketches of a vertex set *sum* to a sketch of its outgoing edges;
* :class:`SketchConnectivity` — Borůvka over summed sketches, using one
  fresh sketch copy per round (sketches are one-shot once queried).

Sketches here are used by the comparison bench (sketching vs Euler-tour
approaches) and as a self-contained substrate; the exact-MST path of the
reproduction does not depend on them, mirroring the paper's remark that
its contributions avoid sketching except inside the deletion subroutine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graphs.dsu import DisjointSet
from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import WeightedGraph, normalize

_FP_PRIME = (1 << 61) - 1  # Mersenne prime for fingerprint arithmetic


def _edge_id(u: int, v: int, n: int) -> int:
    u, v = normalize(u, v)
    return u * n + v


def _id_edge(eid: int, n: int) -> Tuple[int, int]:
    return divmod(eid, n)


@dataclass
class _Cell:
    count: int = 0
    index_sum: int = 0
    fingerprint: int = 0


class L0Sampler:
    """One-shot L0 sampler of a dynamic vector with ±1 updates.

    ``seed`` fixes both the level hashes and the fingerprint base, so two
    samplers built with the same seed are *linear*: adding their cells
    gives the sampler of the summed vector.
    """

    def __init__(self, universe: int, seed: int) -> None:
        self.universe = universe
        self.levels = max(1, int(np.ceil(np.log2(max(universe, 2)))) + 2)
        rng = np.random.default_rng(seed)
        # Pairwise-independent-ish level hash: h(i) = (a*i + b mod p) mod 2^l.
        self._a = int(rng.integers(1, _FP_PRIME))
        self._b = int(rng.integers(0, _FP_PRIME))
        self._r = int(rng.integers(2, _FP_PRIME))
        self.cells = [_Cell() for _ in range(self.levels)]

    def _level_of(self, idx: int) -> int:
        h = (self._a * idx + self._b) % _FP_PRIME
        # Number of trailing-zero-style successes: idx survives to level l
        # with probability 2^-l.
        lvl = 0
        while lvl + 1 < self.levels and (h >> lvl) & 1 == 0:
            lvl += 1
        return lvl

    def update(self, idx: int, delta: int) -> None:
        """Add ``delta`` (±1) to coordinate ``idx``."""
        if not 0 <= idx < self.universe:
            raise ValueError("index outside universe")
        lvl = self._level_of(idx)
        fp = delta * pow(self._r, idx + 1, _FP_PRIME) % _FP_PRIME
        for l in range(lvl + 1):
            c = self.cells[l]
            c.count += delta
            c.index_sum += delta * idx
            c.fingerprint = (c.fingerprint + fp) % _FP_PRIME

    def merge(self, other: "L0Sampler") -> None:
        """Linear combination: absorb another sampler with the same seed."""
        if (self._a, self._b, self._r, self.universe) != (
            other._a,
            other._b,
            other._r,
            other.universe,
        ):
            raise ValueError("samplers built with different seeds cannot merge")
        for c, oc in zip(self.cells, other.cells):
            c.count += oc.count
            c.index_sum += oc.index_sum
            c.fingerprint = (c.fingerprint + oc.fingerprint) % _FP_PRIME

    def sample(self) -> Optional[Tuple[int, int]]:
        """Return (index, sign) of some nonzero coordinate, or None."""
        for c in self.cells:
            if c.count in (1, -1):
                idx = c.index_sum * c.count
                if 0 <= idx < self.universe:
                    expect = c.count * pow(self._r, idx + 1, _FP_PRIME) % _FP_PRIME
                    if expect == c.fingerprint:
                        return (idx, c.count)
        return None

    @property
    def words(self) -> int:
        """Sketch size in model words (3 cells' worth per level)."""
        return 3 * self.levels


class AGMSketch:
    """Per-vertex sketch of the edge-incidence vector of a graph snapshot."""

    def __init__(self, n: int, seed: int) -> None:
        self.n = n
        self.seed = seed
        self.sampler = L0Sampler(n * n, seed)

    def update_for(self, owner: int, u: int, v: int, delta: int = 1) -> None:
        """Record edge (u, v) insertion (delta=1) / deletion (-1) for ``owner``."""
        if owner not in (u, v):
            raise ValueError("owner must be an endpoint")
        eid = _edge_id(u, v, self.n)
        a, _b = normalize(u, v)
        sign = 1 if owner == a else -1
        self.sampler.update(eid, sign * delta)

    def merge(self, other: "AGMSketch") -> None:
        self.sampler.merge(other.sampler)

    def sample_edge(self) -> Optional[Tuple[int, int]]:
        got = self.sampler.sample()
        if got is None:
            return None
        eid, _sign = got
        return _id_edge(eid, self.n)

    @property
    def words(self) -> int:
        return self.sampler.words


def vertex_sketches(
    graph: WeightedGraph, n: int, seed: int
) -> Dict[int, AGMSketch]:
    """Build one AGM sketch per vertex for a graph snapshot."""
    sketches = {v: AGMSketch(n, seed) for v in graph.vertices()}
    for e in graph.edges():
        sketches[e.u].update_for(e.u, e.u, e.v)
        sketches[e.v].update_for(e.v, e.u, e.v)
    return sketches


class SketchConnectivity:
    """Borůvka connectivity over summed AGM sketches.

    Uses one independent sketch family per Borůvka round (a queried
    sketch is spent).  With O(log n) rounds and O(log^2 n)-word sketches
    this is the communication pattern of the sketch-based batch-dynamic
    connectivity line of work; we run it centrally and only *count* its
    words via :meth:`words_per_vertex`.
    """

    def __init__(self, graph: WeightedGraph, rng: RngLike = None) -> None:
        self.graph = graph
        self.n = max(graph.vertices(), default=0) + 1
        self.rng = as_rng(rng)
        self.rounds_used = 0
        self._families_used = 0

    def words_per_vertex(self) -> int:
        one = AGMSketch(max(self.n, 2), 0).words
        return one * max(self._families_used, 1)

    def components(self, max_rounds: Optional[int] = None) -> DisjointSet:
        """Return a DSU describing the connected components."""
        dsu = DisjointSet(self.graph.vertices())
        if self.graph.m == 0:
            return dsu
        n_rounds = max_rounds if max_rounds is not None else 2 * int(np.ceil(np.log2(max(self.n, 2)))) + 4
        for _ in range(n_rounds):
            seed = int(self.rng.integers(0, 2**62))
            self._families_used += 1
            sketches = vertex_sketches(self.graph, max(self.n, 2), seed)
            # Sum sketches within each current component.
            comp_sketch: Dict[object, AGMSketch] = {}
            for v, sk in sketches.items():
                root = dsu.find(v)
                if root in comp_sketch:
                    comp_sketch[root].merge(sk)
                else:
                    comp_sketch[root] = sk
            merged = False
            for root in sorted(comp_sketch, key=repr):
                got = comp_sketch[root].sample_edge()
                if got is None:
                    continue
                u, v = got
                if self.graph.has_edge(u, v) and dsu.union(u, v):
                    merged = True
            self.rounds_used += 1
            if not merged:
                break
        return dsu
