"""Command-line interface: quick demos without writing code.

    python -m repro demo --n 200 --m 600 --k 8 --batches 5 --batch-size 8
    python -m repro verify --seed 3
    python -m repro lowerbound --k 4 --delta 1.0
    python -m repro trace small -o run.jsonl
    python -m repro report run.jsonl
    python -m repro trace-diff a.jsonl b.jsonl
    python -m repro chaos smoke-medium --drop 0.02 --crashes 1:3
    python -m repro watch smoke-medium
    python -m repro stream sliding-window --policy adaptive
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core import DynamicMST
    from repro.graphs import churn_stream, random_weighted_graph

    rng = np.random.default_rng(args.seed)
    if args.input:
        from repro.graphs.io import read_edge_list

        g = read_edge_list(args.input)
    else:
        g = random_weighted_graph(args.n, args.m, rng)
    dm = DynamicMST.build(g, args.k, rng=rng, init=args.init, engine=args.engine,
                          backend=args.backend)
    if args.profile:
        from repro.sim.metrics import PhaseProfiler

        dm.net.ledger.profiler = PhaseProfiler()
    print(f"n={args.n} m={args.m} k={args.k} engine={args.engine}")
    print(f"init: {dm.init_rounds} rounds; MSF weight {dm.total_weight():.3f}")
    for i, batch in enumerate(
        churn_stream(dm.shadow.copy(), args.batch_size, args.batches, rng=rng)
    ):
        rep = dm.apply_batch(batch)
        print(f"batch {i}: {rep.size:>3} updates  {rep.rounds:>5} rounds  "
              f"weight {dm.total_weight():.3f}")
    dm.check()
    print("consistency check passed")
    if args.profile:
        print(dm.net.ledger.profiler.report())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core import DynamicMST
    from repro.graphs import churn_stream, random_weighted_graph

    profiler = None
    if args.profile:
        from repro.sim.metrics import PhaseProfiler

        # One profiler across all trials: the counters aggregate.
        profiler = PhaseProfiler()
    rng = np.random.default_rng(args.seed)
    failures = 0
    for trial in range(args.trials):
        n = int(rng.integers(5, 40))
        m = int(rng.integers(0, n * (n - 1) // 2 // 2))
        k = int(rng.integers(2, 9))
        g = random_weighted_graph(n, m, rng, connected=False)
        dm = DynamicMST.build(g, k, rng=rng, init="free", engine=args.engine)
        if profiler is not None:
            dm.net.ledger.profiler = profiler
        try:
            for batch in churn_stream(g, int(rng.integers(1, k + 2)), 5, rng=rng):
                dm.apply_batch(batch)
                dm.check()
        except Exception as exc:  # noqa: BLE001 - CLI surface
            failures += 1
            print(f"trial {trial}: FAILED — {type(exc).__name__}: {exc}")
    print(f"{args.trials - failures}/{args.trials} randomized trials passed")
    if profiler is not None:
        print(profiler.report())
    return 1 if failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core import DynamicMST
    from repro.graphs.io import read_stream

    stream = read_stream(args.stream)
    dm = DynamicMST.build(stream.initial, args.k, rng=args.seed, init=args.init)
    if args.profile:
        from repro.sim.metrics import PhaseProfiler

        dm.net.ledger.profiler = PhaseProfiler()
    print(f"replaying {len(stream)} batches over k={args.k} machines "
          f"(init {dm.init_rounds} rounds)")
    for i, batch in enumerate(stream):
        if not batch:
            continue
        rep = dm.apply_batch(batch)
        print(f"batch {i}: {rep.size:>3} updates  {rep.rounds:>5} rounds")
    dm.check()
    print(f"done; total {dm.rounds} rounds, MSF weight {dm.total_weight():.4f}")
    if args.profile:
        print(dm.net.ledger.profiler.report())
    return 0


def _serving_metrics(args: argparse.Namespace):  # -> context manager
    """An :class:`~repro.obs.ObsSession` for ``--serve-metrics``, or a no-op.

    Yields the live telemetry sink to tee into the run (``None`` when
    the flag is absent) and prints the scrape URL once the server is up.
    """
    from contextlib import contextmanager

    @contextmanager
    def _ctx():
        port = getattr(args, "serve_metrics", None)
        if port is None:
            yield None
            return
        from repro.obs import ObsSession

        with ObsSession(port=port) as session:
            print(f"serving metrics at {session.url}/metrics "
                  f"(dashboard {session.url}/)", file=sys.stderr)
            sink = session.sink()
            try:
                yield sink
            finally:
                sink.close()

    return _ctx()


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace import get_scenario, run_traced

    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    fast: Optional[bool] = None
    if args.fast:
        fast = True
    elif args.scalar:
        fast = False
    out = args.out or f"{scenario.name}.trace.jsonl"
    with _serving_metrics(args) as telemetry:
        summary = run_traced(
            scenario, out, fast=fast, engine=args.engine, init=args.init,
            profile=args.profile, perturb_batch=args.perturb_batch,
            backend=args.backend, telemetry=telemetry,
        )
    print(f"traced scenario {scenario.name}: n={scenario.n} k={scenario.k} "
          f"batch={scenario.batch}x{scenario.n_batches}")
    print(f"rounds={summary['rounds']} messages={summary['messages']} "
          f"words={summary['words']} events={summary['events']}")
    print(f"ledger digest {summary['digest'][:16]}")
    print(f"wrote {out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.trace import read_trace, render_text, summarize, to_json, to_prometheus
    from repro.trace.events import TraceFormatError

    try:
        events = read_trace(args.trace)
        summary = summarize(events, envelope=args.envelope)
    except (TraceFormatError, OSError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(to_json(summary), indent=2))
    elif args.prometheus:
        print(to_prometheus(summary), end="")
    else:
        print(render_text(summary))
    return 1 if summary.budget_violations or summary.violations else 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.trace import first_divergence, read_trace, render_divergence
    from repro.trace.events import TraceFormatError

    try:
        events_a = read_trace(args.a)
        events_b = read_trace(args.b)
        divergence = first_divergence(events_a, events_b)
    except (TraceFormatError, OSError) as exc:
        print(f"cannot diff traces: {exc}", file=sys.stderr)
        return 2
    print(
        render_divergence(
            divergence, events_a, events_b,
            name_a=args.a, name_b=args.b, context=args.context,
        )
    )
    return 1 if divergence is not None else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.faults import FaultPlan, run_chaos
    from repro.trace import get_scenario

    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.plan:
        with open(args.plan) as f:
            plan = FaultPlan.from_spec(json.load(f))
    else:
        plan = FaultPlan(
            seed=args.fault_seed,
            drop=args.drop,
            dup=args.dup,
            reorder=args.reorder,
            crashes=FaultPlan.parse_crashes(args.crashes or ""),
        )
    with _serving_metrics(args) as telemetry:
        summary = run_chaos(
            scenario, plan, checkpoint_every=args.checkpoint_every,
            engine=args.engine, sink=args.out, backend=args.backend,
            telemetry=telemetry,
        )
    print(f"chaos scenario {scenario.name}: n={scenario.n} k={scenario.k} "
          f"batch={scenario.batch}x{scenario.n_batches}")
    spec = summary["plan"]
    print(f"plan: seed={spec['seed']} drop={spec['drop']} dup={spec['dup']} "
          f"reorder={spec['reorder']} crashes={len(spec['crashes'])}")
    faults = summary["faults"]
    mix = "  ".join(f"{k}={v}" for k, v in sorted(faults.items()) if v)
    print(f"injected: {mix or 'nothing'}")
    print(f"recoveries={summary['recoveries']} "
          f"replayed_batches={summary['replayed_batches']} "
          f"checkpoints={summary['checkpoints']}")
    print(f"rounds={summary['rounds']} "
          f"(recovery/retry overhead {summary['overhead_rounds']})")
    for i, b in enumerate(summary["batches"]):
        status = "ok" if b["ok"] else "MISMATCH"
        print(f"batch {i}: {b['size']:>3} updates  {b['rounds']:>5} rounds  "
              f"weight {b['weight']:.3f}  {status}")
    if args.out:
        print(f"wrote {args.out}")
    if not summary["ok"]:
        print(f"{summary['mismatches']} batch(es) diverged from the "
              "sequential oracle", file=sys.stderr)
        return 1
    print("all batches match the sequential oracle; consistency check passed")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs import watch_scenario
    from repro.trace import get_scenario

    try:
        get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    def on_ready(session) -> None:  # noqa: ANN001 - CLI callback
        print(f"watching {args.scenario}: dashboard {session.url}/  "
              f"metrics {session.url}/metrics")
        if args.loops == 0:
            print("looping until interrupted (Ctrl-C to stop)")

    def on_loop(i: int, summary) -> None:  # noqa: ANN001 - CLI callback
        print(f"loop {i}: rounds={summary['rounds']} "
              f"words={summary['words']} digest={summary['digest'][:16]}")

    report = watch_scenario(
        args.scenario, host=args.host, port=args.port, loops=args.loops,
        engine=args.engine, init=args.init, backend=args.backend,
        envelope=args.envelope, on_ready=on_ready, on_loop=on_loop,
    )
    snap = report["snapshot"]
    print(f"stopped after {report['loops']} loop(s); "
          f"{snap['totals']['rounds']} rounds, "
          f"{snap['bus']['events']} bus events "
          f"({snap['bus']['dropped']} dropped)")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.core import DynamicMST
    from repro.stream import make_shape, shape_names

    if args.shape not in shape_names():
        print(f"unknown stream shape {args.shape!r}; known: "
              f"{', '.join(shape_names())}", file=sys.stderr)
        return 2
    stream = make_shape(args.shape, seed=args.seed, ticks=args.ticks,
                        rate=args.rate)
    print(f"shape {args.shape}: {len(stream)} arrivals over "
          f"{stream.horizon + 1} ticks, k={args.k} "
          f"(capacity Θ(k)={args.k}), policy={args.policy}, "
          f"coalescing {'off' if args.no_coalesce else 'on'}")
    with _serving_metrics(args) as telemetry:
        dm = DynamicMST.build(stream.initial, args.k, rng=args.seed,
                              init=args.init)
        if telemetry is not None:
            dm.attach_trace(telemetry)
        rep = dm.ingest(stream, policy=args.policy,
                        coalesce=not args.no_coalesce)
        if telemetry is not None:
            dm.detach_trace()
    dm.check()
    reasons = "  ".join(f"{k}={v}" for k, v in sorted(rep.cut_reasons.items()))
    print(f"admitted {rep.admitted}  shipped {rep.shipped}  "
          f"absorbed {rep.absorbed} "
          f"({rep.absorbed / max(rep.admitted, 1):.0%} coalesced away)")
    print(f"cuts {rep.cuts} ({reasons or 'none'})  batches {rep.batches}  "
          f"rounds {rep.rounds}  elapsed {rep.elapsed_ticks} ticks")
    print(f"staleness p50 {rep.p50_ticks:.0f} ticks  p99 {rep.p99_ticks:.0f} "
          f"ticks  peak queue {rep.peak_queue_depth}")
    print(f"throughput {rep.updates_per_s:.1f} updates/s  "
          f"{rep.rounds_per_update:.2f} rounds/update")
    print(f"MSF weight {rep.msf_weight:.4f}  forest digest "
          f"{rep.forest_digest[:16]}")
    print("consistency check passed")
    return 0


def _serve_config(args: argparse.Namespace):
    from repro.serve import ServeConfig

    return ServeConfig.from_env(
        k=args.k, n=args.n, m=args.m, seed=args.seed,
        init=args.init, backend=args.backend,
        policy=args.policy, coalesce=not args.no_coalesce,
        host=args.host, port=args.port,
        rate_limit=args.rate_limit, rate_burst=args.rate_burst,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    config = _serve_config(args)

    async def _serve(telemetry) -> int:
        import signal

        from repro.serve import MSTDaemon, verify_determinism

        daemon = MSTDaemon(config, telemetry=telemetry)
        port = await daemon.start_tcp()
        print(f"repro.serve listening on {config.host}:{port}  "
              f"(k={config.k} n={config.n} m={config.m} seed={config.seed} "
              f"policy={config.policy} backend={config.resolved_backend()})",
              flush=True)
        print("protocol repro-serve/1: line-delimited JSON; "
              "see docs/serving.md", file=sys.stderr)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-posix
                pass
        await stop.wait()
        await daemon.shutdown(drain=True)
        stats = daemon.stats()
        print(f"drained: admitted={stats['admitted']} "
              f"rejected={stats['rejected']} cuts={stats['cuts']} "
              f"sessions={stats['sessions_served']}")
        gate = verify_determinism(daemon.reducer)
        status = "ok" if gate["ok"] else "MISMATCH"
        print(f"determinism gate: {status}  "
              f"ledger {gate['live_ledger_digest'][:16]}")
        return 0 if gate["ok"] else 1

    with _serving_metrics(args) as telemetry:
        try:
            return asyncio.run(_serve(telemetry))
        except KeyboardInterrupt:
            return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    async def _run() -> int:
        if args.connect:
            from repro.serve.loadgen import run_tcp

            host, _, port = args.connect.rpartition(":")
            report = await run_tcp(
                host or "127.0.0.1", int(port),
                clients=args.clients, commands=args.commands, seed=args.seed,
            )
            daemon = None
        else:
            from repro.serve.loadgen import run_embedded

            config = _serve_config(args)
            report, daemon = await run_embedded(
                config, clients=args.clients, commands=args.commands,
                seed=args.seed, verify=args.verify,
            )
        out = report.as_dict()
        if args.json:
            print(json.dumps(out, indent=2, sort_keys=True))
        else:
            print(f"{report.clients} clients x {args.commands} commands: "
                  f"{report.commands} sent, {report.ok} ok, "
                  f"{report.error_total} errors, {report.events} events, "
                  f"{report.commands_per_s:.0f} cmd/s")
            if report.errors:
                print(f"errors by code: {report.errors}")
            if daemon is not None:
                stats = daemon.stats()
                print(f"daemon: admitted={stats['admitted']} "
                      f"absorbed={stats['absorbed']} cuts={stats['cuts']} "
                      f"rounds={stats['rounds']} "
                      f"p99 staleness {stats['p99_ticks']:.0f} ticks")
        if report.verify is not None:
            status = "ok" if report.verify["ok"] else "MISMATCH"
            print(f"determinism gate: {status}  live "
                  f"{report.verify['live_ledger_digest'][:16]}  replay "
                  f"{report.verify['replay_ledger_digest'][:16]}")
            if not report.verify["ok"]:
                return 1
        return 0

    return asyncio.run(_run())


def _cmd_lowerbound(args: argparse.Namespace) -> int:
    from repro.graphs import random_weighted_graph
    from repro.lowerbound import run_lower_bound_experiment

    rng = np.random.default_rng(args.seed)
    g = random_weighted_graph(args.n, args.m, rng)
    meter = run_lower_bound_experiment(
        g, k=args.k, delta=args.delta, rng=args.seed, pairs=args.pairs
    )
    print(meter.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Batch-dynamic exact MST for cluster computing "
        "(Gilbert & Li, SPAA 2020 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a churn stream and print rounds")
    demo.add_argument("--n", type=int, default=200)
    demo.add_argument("--m", type=int, default=600)
    demo.add_argument("--k", type=int, default=8)
    demo.add_argument("--batches", type=int, default=5)
    demo.add_argument("--batch-size", type=int, default=8)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--input", help="edge-list file instead of a random graph")
    demo.add_argument("--init", choices=["distributed", "free"], default="distributed")
    demo.add_argument("--engine", default="sample_gather",
                      choices=["boruvka", "lotker", "sample_gather"])
    demo.add_argument("--backend", default=None, metavar="NAME",
                      help="execution backend: reference, inproc-columnar, "
                           "or parallel (default: ambient REPRO_BACKEND)")
    demo.add_argument("--profile", action="store_true",
                      help="print per-phase wall-time/allocation counters")
    demo.set_defaults(fn=_cmd_demo)

    verify = sub.add_parser("verify", help="randomized self-check vs the oracle")
    verify.add_argument("--trials", type=int, default=5)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--engine", default="sample_gather",
                        choices=["boruvka", "lotker", "sample_gather"])
    verify.add_argument("--profile", action="store_true",
                        help="print per-phase wall-time/allocation counters "
                             "aggregated over all trials")
    verify.set_defaults(fn=_cmd_verify)

    replay = sub.add_parser("replay", help="replay a JSON update stream")
    replay.add_argument("stream", help="stream file from repro.graphs.io.write_stream")
    replay.add_argument("--k", type=int, default=8)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--init", choices=["distributed", "free"], default="free")
    replay.add_argument("--profile", action="store_true",
                        help="print per-phase wall-time/allocation counters")
    replay.set_defaults(fn=_cmd_replay)

    trace = sub.add_parser(
        "trace", help="record a named scenario as a structured JSONL trace"
    )
    trace.add_argument("scenario",
                       help="scenario name (see repro.trace.scenarios.SCENARIOS)")
    trace.add_argument("-o", "--out", default=None,
                       help="output path (default <scenario>.trace.jsonl)")
    trace.add_argument("--engine", default="sample_gather",
                       choices=["boruvka", "lotker", "sample_gather"])
    trace.add_argument("--init", choices=["distributed", "free"], default=None,
                       help="override the scenario's init mode "
                            "(default: the scenario's own, usually free)")
    trace.add_argument("--profile", action="store_true",
                       help="embed per-phase wall/alloc counters in run_end")
    engine_pin = trace.add_mutually_exclusive_group()
    engine_pin.add_argument("--fast", action="store_true",
                            help="pin the columnar fast path on")
    engine_pin.add_argument("--scalar", action="store_true",
                            help="pin the scalar reference path on")
    trace.add_argument("--backend", default=None, metavar="NAME",
                       help="execution backend: reference, inproc-columnar, "
                            "or parallel (outranks --fast/--scalar)")
    trace.add_argument("--perturb-batch", type=int, default=None,
                       help="charge one extra round before this batch index "
                            "(seeded fault for trace-diff demos)")
    trace.add_argument("--serve-metrics", type=int, default=None, const=0,
                       nargs="?", metavar="PORT",
                       help="serve live /metrics and the dashboard while the "
                            "run executes (default port: auto)")
    trace.set_defaults(fn=_cmd_trace)

    report = sub.add_parser(
        "report", help="per-phase/per-machine metrics report from a trace"
    )
    report.add_argument("trace", help="JSONL trace from 'repro trace'")
    fmt = report.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true", help="machine-readable JSON")
    fmt.add_argument("--prometheus", action="store_true",
                     help="Prometheus text exposition")
    report.add_argument("--envelope", type=int, default=None,
                        help="rounds allowed per ceil(batch/capacity) unit "
                             "(default: repro.trace.budgets.DEFAULT_ENVELOPE)")
    report.set_defaults(fn=_cmd_report)

    tdiff = sub.add_parser(
        "trace-diff",
        help="locate the first divergent charge between two traces",
    )
    tdiff.add_argument("a")
    tdiff.add_argument("b")
    tdiff.add_argument("--context", type=int, default=3,
                       help="events of context to print around the divergence")
    tdiff.set_defaults(fn=_cmd_trace_diff)

    chaos = sub.add_parser(
        "chaos",
        help="run a scenario under a seeded fault plan, checked per batch",
    )
    chaos.add_argument("scenario",
                       help="scenario name (see repro.trace.scenarios.SCENARIOS)")
    chaos.add_argument("--drop", type=float, default=0.0,
                       help="per-message drop probability in [0,1)")
    chaos.add_argument("--dup", type=float, default=0.0,
                       help="per-message duplication probability in [0,1)")
    chaos.add_argument("--reorder", type=float, default=0.0,
                       help="within-round reorder probability in [0,1)")
    chaos.add_argument("--crashes", default=None,
                       help="crash schedule 'batch:machine[:superstep],...'")
    chaos.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the fault injector's generator")
    chaos.add_argument("--plan", default=None,
                       help="JSON fault-plan file (overrides the flags above)")
    chaos.add_argument("--checkpoint-every", type=int, default=2,
                       help="checkpoint period in batches (default 2)")
    chaos.add_argument("--engine", default="sample_gather",
                       choices=["boruvka", "lotker", "sample_gather"])
    chaos.add_argument("--backend", default=None, metavar="NAME",
                       help="execution backend: reference, inproc-columnar, "
                            "or parallel (faults still decide in the parent)")
    chaos.add_argument("-o", "--out", default=None,
                       help="record the run (incl. fault/recovery events) "
                            "to this JSONL trace")
    chaos.add_argument("--serve-metrics", type=int, default=None, const=0,
                       nargs="?", metavar="PORT",
                       help="serve live /metrics and the dashboard while the "
                            "run executes (default port: auto)")
    chaos.set_defaults(fn=_cmd_chaos)

    watch = sub.add_parser(
        "watch",
        help="loop a scenario with the live dashboard/metrics server up",
    )
    watch.add_argument("scenario",
                       help="scenario name (see repro.trace.scenarios.SCENARIOS)")
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, default=0,
                       help="HTTP port (default: pick a free one)")
    watch.add_argument("--loops", type=int, default=0,
                       help="runs of the scenario (0 = until interrupted)")
    watch.add_argument("--engine", default="sample_gather",
                       choices=["boruvka", "lotker", "sample_gather"])
    watch.add_argument("--init", choices=["distributed", "free"], default=None,
                       help="override the scenario's init mode")
    watch.add_argument("--backend", default=None, metavar="NAME",
                       help="execution backend: reference, inproc-columnar, "
                            "or parallel")
    watch.add_argument("--envelope", type=int, default=None,
                       help="rounds allowed per ceil(batch/capacity) unit "
                            "(default: repro.trace.budgets.DEFAULT_ENVELOPE)")
    watch.set_defaults(fn=_cmd_watch)

    stream = sub.add_parser(
        "stream",
        help="replay a named arrival stream through the admission "
             "coalescer + batch scheduler (repro.stream)",
    )
    stream.add_argument("shape",
                        help="stream shape (see repro.stream.shapes.SHAPES): "
                             "uniform, sliding-window, flash-crowd, adversarial")
    stream.add_argument("--policy", default="adaptive",
                        choices=["fixed", "deadline", "adaptive"],
                        help="batch-cut policy (default adaptive)")
    stream.add_argument("--no-coalesce", action="store_true",
                        help="ship every admitted update (the uncoalesced "
                             "baseline)")
    stream.add_argument("--k", type=int, default=8)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--ticks", type=int, default=24,
                        help="arrival horizon in ticks")
    stream.add_argument("--rate", type=int, default=8,
                        help="arrivals per tick")
    stream.add_argument("--init", choices=["distributed", "free"],
                        default="free")
    stream.add_argument("--serve-metrics", type=int, default=None, const=0,
                        nargs="?", metavar="PORT",
                        help="serve live /metrics and the dashboard while "
                             "the stream runs (default port: auto)")
    stream.set_defaults(fn=_cmd_stream)

    def _serve_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--k", type=int, default=8)
        sp.add_argument("--n", type=int, default=64)
        sp.add_argument("--m", type=int, default=128)
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--init", choices=["distributed", "free"],
                        default="free")
        sp.add_argument("--backend", default=None, metavar="NAME",
                        help="execution backend: reference, inproc-columnar, "
                             "or parallel (default: REPRO_BACKEND)")
        sp.add_argument("--policy", default="adaptive",
                        choices=["fixed", "deadline", "adaptive"])
        sp.add_argument("--no-coalesce", action="store_true",
                        help="ship every admitted update uncoalesced")
        sp.add_argument("--host", default="127.0.0.1")
        sp.add_argument("--port", type=int, default=7787,
                        help="TCP port (0 = pick a free one)")
        sp.add_argument("--rate-limit", type=float, default=0.0,
                        help="per-client mutations/s (0 = unlimited)")
        sp.add_argument("--rate-burst", type=int, default=64)

    serve = sub.add_parser(
        "serve",
        help="run the always-on MST update daemon (repro.serve; "
             "line-delimited JSON over TCP)",
    )
    _serve_args(serve)
    serve.add_argument("--serve-metrics", type=int, default=None, const=0,
                       nargs="?", metavar="PORT",
                       help="serve live /metrics and the dashboard "
                            "(default port: auto)")
    serve.set_defaults(fn=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a daemon with concurrent simulated update streams",
    )
    _serve_args(loadgen)
    loadgen.add_argument("--connect", default=None, metavar="HOST:PORT",
                         help="aim at a live daemon instead of an embedded "
                              "one")
    loadgen.add_argument("--clients", type=int, default=100)
    loadgen.add_argument("--commands", type=int, default=10,
                         help="commands per client")
    loadgen.add_argument("--verify", action="store_true",
                         help="embedded only: drain and run the "
                              "determinism gate (exit 1 on mismatch)")
    loadgen.add_argument("--json", action="store_true",
                         help="print the report as JSON")
    loadgen.set_defaults(fn=_cmd_loadgen)

    lb = sub.add_parser("lowerbound", help="run the Theorem 7.1 adversary")
    lb.add_argument("--n", type=int, default=150)
    lb.add_argument("--m", type=int, default=3000)
    lb.add_argument("--k", type=int, default=4)
    lb.add_argument("--delta", type=float, default=1.0)
    lb.add_argument("--pairs", type=int, default=3)
    lb.add_argument("--seed", type=int, default=0)
    lb.set_defaults(fn=_cmd_lowerbound)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
