"""Communication primitives built on the dumb network.

Everything here is an explicit multi-superstep protocol whose round cost
is *measured* by the network ledger, never asserted:

* :mod:`repro.comm.rerouting` — the Rerouting Lemma (Lemma 4.2 / A.1–A.2):
  B broadcasts in R dependency sets in O(B/k + R) rounds, plus the naive
  strategy kept for the ablation bench;
* :mod:`repro.comm.aggregate` — converge-cast min/max/sum and the batched
  "O(k) queries collated round-robin mod k" pattern of §6.1 step 6;
* :mod:`repro.comm.lenzen` — Lenzen routing and sorting (Theorem 4.1);
* :mod:`repro.comm.trees` — MPC broadcast / converge-cast trees with
  branching factor S (§8).
"""

from repro.comm.rerouting import naive_broadcasts, scheduled_broadcasts
from repro.comm.aggregate import (
    batched_queries,
    converge_cast,
    global_max,
    global_min,
    global_sum,
)
from repro.comm.lenzen import lenzen_route, lenzen_sort
from repro.comm.trees import tree_broadcast, tree_converge_cast

__all__ = [
    "scheduled_broadcasts",
    "naive_broadcasts",
    "converge_cast",
    "global_min",
    "global_max",
    "global_sum",
    "batched_queries",
    "lenzen_route",
    "lenzen_sort",
    "tree_broadcast",
    "tree_converge_cast",
]
