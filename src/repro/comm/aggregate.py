"""Converge-casts: global min / max / sum, and batched queries.

A single aggregation is a two-superstep star: every machine sends its
local value to the collation machine (k messages over k distinct links —
one round per word), and the collation machine broadcasts the result.

:func:`batched_queries` implements the §6.1 step-6 pattern: Q independent
aggregation queries are collated at machines ``qid mod k``, so the
per-link load stays O(Q/k) and all Q queries finish in O(Q/k + 1) rounds;
the results are then shared with everyone through the Rerouting Lemma.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.comm.rerouting import scheduled_broadcasts
from repro.sim.message import WORDS_ID, Message
from repro.sim.network import Network

#: per-machine local values: values[mid] is machine mid's contribution
#: (None means "no contribution").
LocalValues = Sequence[Optional[Any]]


def converge_cast(
    net: Network,
    root: int,
    values: LocalValues,
    combine: Callable[[List[Any]], Any],
    words: int = WORDS_ID,
) -> Any:
    """Aggregate per-machine values at ``root``; only the root learns it."""
    if len(values) != net.k:
        raise ValueError("need exactly one (possibly None) value per machine")
    net.superstep(
        Message(mid, root, val, words)
        for mid, val in enumerate(values)
        if val is not None and mid != root
    )
    contributions = [v for v in values if v is not None]
    return combine(contributions) if contributions else None


def _broadcast_result(net: Network, root: int, result: Any, words: int) -> None:
    net.broadcast(root, result, words)


def global_min(
    net: Network, values: LocalValues, words: int = WORDS_ID, root: int = 0
) -> Any:
    """All machines learn the global minimum of the per-machine values."""
    res = converge_cast(net, root, values, min, words)
    _broadcast_result(net, root, res, words)
    return res


def global_max(
    net: Network, values: LocalValues, words: int = WORDS_ID, root: int = 0
) -> Any:
    """All machines learn the global maximum of the per-machine values."""
    res = converge_cast(net, root, values, max, words)
    _broadcast_result(net, root, res, words)
    return res


def global_sum(
    net: Network, values: LocalValues, words: int = WORDS_ID, root: int = 0
) -> Any:
    """All machines learn the global sum of the per-machine values."""
    res = converge_cast(net, root, values, lambda xs: sum(xs), words)
    _broadcast_result(net, root, res, words)
    return res


def batched_queries(
    net: Network,
    per_query_values: Dict[Any, LocalValues],
    combine: Callable[[List[Any]], Any],
    words: int = WORDS_ID,
) -> Dict[Any, Any]:
    """Resolve Q independent aggregation queries in O(Q/k + 1) rounds.

    ``per_query_values[qid][mid]`` is machine ``mid``'s contribution to
    query ``qid`` (None if it has none).  Query ``qid`` is collated at
    machine ``index(qid) mod k`` where queries are taken in sorted order,
    matching the deterministic assignment of §6.1 step 6.  Every machine
    learns every result (shared via the Rerouting Lemma).
    """
    if not per_query_values:
        return {}
    k = net.k
    qids = sorted(per_query_values, key=repr)
    collator = {qid: idx % k for idx, qid in enumerate(qids)}
    # Superstep: each machine sends each non-None contribution to the
    # collation machine of that query.
    net.superstep(
        Message(mid, collator[qid], (qid, val), words)
        for qid in qids
        for mid, val in enumerate(per_query_values[qid])
        if val is not None and mid != collator[qid]
    )
    results: Dict[Any, Any] = {}
    bcast_reqs: List[Tuple[int, Any, int]] = []
    for qid in qids:
        contributions = [v for v in per_query_values[qid] if v is not None]
        res = combine(contributions) if contributions else None
        results[qid] = res
        bcast_reqs.append((collator[qid], (qid, res), words))
    # Share all Q results with everyone: Q broadcasts => O(Q/k + 1) rounds.
    scheduled_broadcasts(net, bcast_reqs)
    return results
