"""Lenzen routing and sorting (Theorem 4.1).

Lenzen's deterministic algorithms solve, in O(1) rounds of a fully
connected k-node system:

* **Routing** — each node is source/destination of up to k messages;
* **Sorting** — each node holds up to k keys; node i must learn the keys
  with global ranks (i-1)k+1 .. ik.

We implement both as explicit supersteps whose cost the ledger measures.
Routing uses the classic two-phase balancing (source spreads its messages
over deterministic intermediates, intermediates forward).  Sorting uses
splitter sampling + range routing + exact rank rebalancing; on every
workload the reduction of §6.2 produces (≤ k items per machine), the
measured cost is a small constant number of rounds, matching the theorem.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.perf.config import fast_path_enabled
from repro.sim.message import WORDS_ID, Message
from repro.sim.network import Network
from repro.sim.plane import MessagePlane


def _bipartite_edge_coloring(pairs: List[Tuple[int, int]]) -> List[int]:
    """Colour a bipartite multigraph's edges with Δ colours (König).

    ``pairs`` are (source, destination) edges; returns one colour per
    edge such that no two edges sharing a source or a destination get the
    same colour.  Classic alternating-path construction: this is the
    combinatorial heart of Lenzen's deterministic O(1) routing — edges of
    one colour form a (partial) matching, i.e. a conflict-free superstep.
    """
    used_s: Dict[int, Dict[int, int]] = {}  # source -> colour -> edge idx
    used_d: Dict[int, Dict[int, int]] = {}
    colour_of: List[int] = [-1] * len(pairs)

    def first_free(used: Dict[int, int]) -> int:
        c = 0
        while c in used:
            c += 1
        return c

    for idx, (s, d) in enumerate(pairs):
        us = used_s.setdefault(s, {})
        ud = used_d.setdefault(d, {})
        a = first_free(us)
        b = first_free(ud)
        if a != b and a in ud:
            # Free colour a at d by flipping the a/b alternating path
            # starting with d's a-edge.  In a bipartite graph this path
            # cannot reach s, so a stays free at s (König's argument).
            path: List[int] = []
            node, at_src, want = d, False, a
            while True:
                side = used_s if at_src else used_d
                eidx = side.get(node, {}).get(want)
                if eidx is None:
                    break
                path.append(eidx)
                es, ed = pairs[eidx]
                node = ed if at_src else es
                at_src = not at_src
                want = b if want == a else a
            for eidx in path:
                old = colour_of[eidx]
                es, ed = pairs[eidx]
                del used_s[es][old]
                del used_d[ed][old]
                colour_of[eidx] = b if old == a else a
            for eidx in path:
                es, ed = pairs[eidx]
                used_s[es][colour_of[eidx]] = eidx
                used_d[ed][colour_of[eidx]] = eidx
        colour_of[idx] = a
        us[a] = idx
        ud[a] = idx
    return colour_of


def lenzen_route(
    net: Network, messages: Sequence[Message]
) -> Dict[int, List[Tuple[int, Any]]]:
    """Route point-to-point messages via balanced intermediates.

    Messages are assigned intermediates from a bipartite edge colouring
    of the (source, destination) demand multigraph: colour c routes via
    machine c mod k, so with per-machine send/receive load ≤ k messages
    both phases have O(1) per-link load — the Theorem 4.1 guarantee,
    realized deterministically.  Inboxes carry the *original* source.
    """
    k = net.k
    msgs = list(messages)
    if not msgs:
        return {}
    if k == 1:
        return {0: [(0, m.payload) for m in msgs]}
    msgs.sort(key=lambda m: (m.src, m.dst, repr(m.payload)))
    colours = _bipartite_edge_coloring([(m.src, m.dst) for m in msgs])

    fast = fast_path_enabled()
    phase1: List[Tuple[int, int, Any, int]] = []
    at_intermediate: List[Tuple[int, Message]] = []  # (intermediate, original)
    for m, c in zip(msgs, colours):
        inter = c % k
        at_intermediate.append((inter, m))
        if inter != m.src:
            # Envelope carries (dst, payload); same width + 1 id word.
            phase1.append((m.src, inter, ("fwd", m.dst, m.payload), m.words + 1))
    if fast:
        net.superstep_plane(MessagePlane.point_to_point(phase1))
    else:
        net.superstep(Message(s, d, p, w) for (s, d, p, w) in phase1)

    phase2: List[Tuple[int, int, Any, int]] = []
    inboxes: Dict[int, List[Tuple[int, Any]]] = {}
    for inter, m in at_intermediate:
        if inter != m.dst:
            phase2.append((inter, m.dst, ("src", m.src, m.payload), m.words + 1))
        inboxes.setdefault(m.dst, []).append((m.src, m.payload))
    if fast:
        net.superstep_plane(MessagePlane.point_to_point(phase2))
    else:
        net.superstep(Message(s, d, p, w) for (s, d, p, w) in phase2)
    for dst in inboxes:
        inboxes[dst].sort(key=lambda sp: (sp[0], repr(sp[1])))
    return inboxes


def _splitters(all_samples: List[Any], k: int) -> List[Any]:
    """k-1 splitters at even quantiles of the shared sample set."""
    if not all_samples or k <= 1:
        return []
    s = sorted(all_samples)
    return [s[min(len(s) - 1, (i * len(s)) // k)] for i in range(1, k)]


def _range_of(key: Any, splitters: List[Any]) -> int:
    """Index of the splitter range containing ``key`` (binary search)."""
    lo, hi = 0, len(splitters)
    while lo < hi:
        mid = (lo + hi) // 2
        if key <= splitters[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def lenzen_sort(
    net: Network,
    items_per_machine: Sequence[Sequence[Any]],
    words: int = WORDS_ID,
    samples_per_machine: int = 4,
) -> List[List[Any]]:
    """Globally sort; machine i ends with the items of ranks [i*q, (i+1)*q).

    Keys may repeat: ties are broken by (source machine, local index), so
    the final distribution is deterministic.  Returns the new per-machine
    item lists (undecorated, sorted).
    """
    k = net.k
    if len(items_per_machine) != k:
        raise ValueError("need one item list per machine")
    total = sum(len(it) for it in items_per_machine)
    if total == 0:
        return [[] for _ in range(k)]
    if k == 1:
        return [sorted(items_per_machine[0])]

    # Decorate for a strict total order.
    local: List[List[Tuple[Any, int, int]]] = [
        sorted((key, mid, j) for j, key in enumerate(items))
        for mid, items in enumerate(items_per_machine)
    ]

    # Step 1 (regular sampling à la PSRS, spread over the clique): every
    # machine picks k evenly spaced local samples and sends its j-th one
    # to machine j — a transpose, one message per ordered pair, O(words)
    # rounds.  Machine j's splitter is the median of what it received
    # (k² effective samples for O(1) cost), then all k splitters are
    # shared in one broadcast superstep.
    received: List[List[Tuple[Any, int, int]]] = [[] for _ in range(k)]
    transpose: List[Message] = []
    for mid in range(k):
        items = local[mid]
        for j in range(k):
            if not items:
                continue
            sample = items[min(len(items) - 1, (j * len(items)) // k)]
            if j == mid:
                received[j].append(sample)
            else:
                transpose.append(Message(mid, j, ("sample", sample), words))
    net.superstep(transpose)
    for m in transpose:
        received[m.dst].append(m.payload[1])
    splitter_of: List[Optional[Tuple[Any, int, int]]] = []
    for j in range(k):
        if received[j]:
            got = sorted(received[j])
            splitter_of.append(got[len(got) // 2])
        else:
            splitter_of.append(None)
    net.superstep(
        Message(j, dst, ("splitter", splitter_of[j]), words)
        for j in range(k)
        for dst in range(k)
        if dst != j and splitter_of[j] is not None
    )
    splitters = sorted(s for s in splitter_of if s is not None)[: k - 1]

    # Step 2: route every item to the machine owning its sample range
    # (via Lenzen routing so skewed ranges cannot congest single links).
    route_msgs: List[Message] = []
    range_items: List[List[Tuple[Any, int, int]]] = [[] for _ in range(k)]
    for mid in range(k):
        for item in local[mid]:
            owner = _range_of(item, splitters)
            if owner == mid:
                range_items[mid].append(item)
            else:
                route_msgs.append(Message(mid, owner, ("item", item), words))
    inbox = lenzen_route(net, route_msgs)
    for dst, received in inbox.items():
        for _src, (_tag, item) in received:
            range_items[dst].append(item)
    for mid in range(k):
        range_items[mid].sort()

    # Step 3: owners broadcast their received counts; everyone derives the
    # exact global offset of each range.
    counts = [len(range_items[mid]) for mid in range(k)]
    net.superstep(
        Message(mid, dst, ("count", counts[mid]), WORDS_ID)
        for mid in range(k)
        for dst in range(k)
        if dst != mid
    )
    offsets = [0] * k
    for mid in range(1, k):
        offsets[mid] = offsets[mid - 1] + counts[mid - 1]
    quota = -(-total // k)

    # Step 4: route each item to its final machine (global rank // quota),
    # again via Lenzen routing — a contiguous run moving wholesale to one
    # destination must not serialize on a single link.
    final_msgs: List[Message] = []
    result: List[List[Tuple[Any, int, int]]] = [[] for _ in range(k)]
    for mid in range(k):
        for pos, item in enumerate(range_items[mid]):
            rank = offsets[mid] + pos
            dest = min(rank // quota, k - 1)
            if dest == mid:
                result[mid].append(item)
            else:
                final_msgs.append(Message(mid, dest, ("item", item), words))
    inbox = lenzen_route(net, final_msgs)
    for dst, received in inbox.items():
        for _src, (_tag, item) in received:
            result[dst].append(item)
    return [[key for (key, _m, _j) in sorted(items)] for items in result]
