"""The Rerouting Lemma (Lemma 4.2, proof in Appendix A.1).

``B`` broadcasts, each originating at some machine and destined for *all*
machines, complete in O(B/k + 1) rounds: first every machine announces how
many broadcasts it owns (fixing a global order), then repeatedly the next
k messages in the global order are relayed — message ``i*k + j`` hops to
machine ``j``, and machine ``j`` broadcasts it.  Both supersteps of an
iteration have per-link load at most the message width, so each iteration
is O(1) rounds.

:func:`naive_broadcasts` is the strategy the lemma replaces (every owner
broadcasts its own messages back-to-back, costing ``max_i C_i`` rounds);
it is kept for the ablation benchmark.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.perf.config import fast_path_enabled
from repro.sim.message import WORDS_ID, Message
from repro.sim.network import Network
from repro.sim.plane import MessagePlane

#: A broadcast request: (source machine, payload, payload width in words).
BroadcastReq = Tuple[int, Any, int]


def scheduled_broadcasts(
    net: Network, requests: Sequence[BroadcastReq], announce: bool = True
) -> List[Tuple[int, Any]]:
    """Complete all broadcasts; return [(src, payload), ...] in global order.

    The return value is exactly what every machine ends up knowing, in the
    deterministic global order (by machine id, then by the owner's local
    order) fixed by the announcement round.
    """
    reqs = list(requests)
    for src, _payload, words in reqs:
        if words <= 0:
            raise ValueError("payload width must be positive")
        net._check_endpoint(src)
    if not reqs:
        return []
    k = net.k
    fast = fast_path_enabled()
    if announce and k > 1:
        # Step 1: every machine broadcasts its request count (1 word).
        counts: dict[int, int] = {}
        for src, _p, _w in reqs:
            counts[src] = counts.get(src, 0) + 1
        if fast:
            net.superstep_plane(MessagePlane.fanout(
                [(src, ("count", counts[src]), WORDS_ID) for src in counts], k
            ))
        else:
            net.superstep(
                Message(src, dst, ("count", counts.get(src, 0)), WORDS_ID)
                for src in counts
                for dst in range(k)
                if dst != src
            )
    # Global order: by source machine, then local order.  Each iteration
    # hands g messages to each of the k relay machines, where g is how
    # many broadcasts a relay can emit per round in this model (1 in the
    # k-machine model; S/((k-1)·w) in MPC).
    ordered = sorted(range(len(reqs)), key=lambda i: (reqs[i][0], i))
    max_words = max(w for (_s, _p, w) in reqs)
    g = max(1, net.relay_multiplicity(max_words))
    out: List[Tuple[int, Any]] = []
    for base in range(0, len(ordered), k * g):
        chunk = [reqs[i] for i in ordered[base : base + k * g]]
        # Step 2a: message j of the chunk hops to relay machine j mod k.
        hops: List[Tuple[int, int, Any, int]] = []
        relay: List[Tuple[int, Any, int]] = []
        for j, (src, payload, words) in enumerate(chunk):
            target = j % k
            relay.append((target, payload, words))
            if src != target:
                hops.append((src, target, payload, words))
        if fast:
            net.superstep_plane(MessagePlane.point_to_point(hops))
        else:
            net.superstep(Message(s, t, p, w) for (s, t, p, w) in hops)
        # Step 2b: every relay machine broadcasts its message(s).
        if fast:
            net.superstep_plane(MessagePlane.fanout(relay, k))
        else:
            net.superstep(
                Message(j, dst, payload, words)
                for (j, payload, words) in relay
                for dst in range(k)
                if dst != j
            )
        out.extend((reqs[i][0], reqs[i][1]) for i in ordered[base : base + k * g])
    return out


def naive_broadcasts(
    net: Network, requests: Sequence[BroadcastReq]
) -> List[Tuple[int, Any]]:
    """The unbalanced strategy: every owner broadcasts its own messages.

    One superstep per *wave*, where wave t carries the t-th message of
    every machine; the busiest machine dictates the number of waves, so
    the measured cost is ``Θ(max_i C_i)`` rounds — the quantity the
    Rerouting Lemma beats.  Kept for `bench_ablation.py`.
    """
    reqs = list(requests)
    if not reqs:
        return []
    k = net.k
    per_machine: dict[int, List[Tuple[int, Any, int]]] = {}
    for i, (src, payload, words) in enumerate(reqs):
        per_machine.setdefault(src, []).append((i, payload, words))
    waves = max(len(v) for v in per_machine.values())
    for t in range(waves):
        net.superstep(
            Message(src, dst, payload, words)
            for src, items in per_machine.items()
            if t < len(items)
            for (_i, payload, words) in [items[t]]
            for dst in range(k)
            if dst != src
        )
    ordered = sorted(range(len(reqs)), key=lambda i: (reqs[i][0], i))
    return [(reqs[i][0], reqs[i][1]) for i in ordered]
