"""MPC broadcast and converge-cast trees (§8).

In the MPC model with space S = n^alpha per machine, a machine can send S
words per round, so a broadcast can fan out over a tree with branching
factor ``S / words``; the tree covers k machines in O(log_{S} k) = O(1/alpha)
rounds.  Converge-casts run the same tree in reverse, combining values at
every internal node.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.sim.message import Message
from repro.sim.network import Network


def _levels(k: int, root: int, branching: int) -> List[List[int]]:
    """BFS levels of the implicit tree over machine ids rooted at ``root``.

    Machines are relabelled so the root is 0; machine x's children are
    x * branching + 1 .. x * branching + branching in the relabelled
    space.  Returns levels of *original* machine ids.
    """
    if branching < 1:
        raise ValueError("branching must be >= 1")
    relabel = lambda x: (x + root) % k  # noqa: E731 - tiny local helper
    levels: List[List[int]] = [[relabel(0)]]
    lo, hi = 0, 1  # virtual-id range of current level
    while hi < k:
        nlo = lo * branching + 1
        nhi = min(hi * branching + 1, k)
        levels.append([relabel(x) for x in range(nlo, nhi)])
        lo, hi = nlo, nhi
    return levels


def _parent_virtual(x: int, branching: int) -> int:
    return (x - 1) // branching


def tree_broadcast(
    net: Network,
    root: int,
    payload: Any,
    words: int,
    branching: int,
) -> int:
    """Broadcast ``payload`` from ``root`` to all machines; return #supersteps."""
    k = net.k
    if k == 1:
        return 0
    levels = _levels(k, root, branching)
    supersteps = 0
    for depth in range(1, len(levels)):
        # Recompute the virtual-id range of this level to find parents.
        lo, hi = 0, 1
        for _ in range(depth):
            lo, hi = lo * branching + 1, min(hi * branching + 1, k)
        msgs = []
        for i, mid in enumerate(levels[depth]):
            virt = lo + i
            pvirt = _parent_virtual(virt, branching)
            parent = (pvirt + root) % k
            if parent != mid:
                msgs.append(Message(parent, mid, payload, words))
        net.superstep(msgs)
        supersteps += 1
    return supersteps


def tree_converge_cast(
    net: Network,
    root: int,
    values: Sequence[Optional[Any]],
    combine: Callable[[List[Any]], Any],
    words: int,
    branching: int,
) -> Any:
    """Combine per-machine values at ``root`` over the same implicit tree."""
    k = net.k
    if len(values) != k:
        raise ValueError("need one (possibly None) value per machine")
    if k == 1:
        vals = [v for v in values if v is not None]
        return combine(vals) if vals else None
    levels = _levels(k, root, branching)
    # Partial aggregates held at each machine, initially its own value.
    partial: List[List[Any]] = [[v] if v is not None else [] for v in values]
    for depth in range(len(levels) - 1, 0, -1):
        lo, hi = 0, 1
        for _ in range(depth):
            lo, hi = lo * branching + 1, min(hi * branching + 1, k)
        msgs = []
        sends: List[tuple[int, int]] = []
        for i, mid in enumerate(levels[depth]):
            virt = lo + i
            parent = (_parent_virtual(virt, branching) + root) % k
            if partial[mid]:
                agg = combine(partial[mid])
                sends.append((mid, parent))
                if parent != mid:
                    msgs.append(Message(mid, parent, agg, words))
                    partial[parent].append(agg)
                else:
                    partial[parent].append(agg)
                partial[mid] = []
        net.superstep(msgs)
    vals = partial[root]
    return combine(vals) if vals else None
