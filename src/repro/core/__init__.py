"""The paper's primary contribution: batch-dynamic exact MST.

Layout:

* :mod:`repro.core.state` — the per-machine Euler state of §5.2 (MST edge
  labels, neighbour witness edges, tour sizes);
* :mod:`repro.core.scripts` — the k-way structural-update engine of
  Lemma 5.9: parameter collection, deterministic script construction with
  cascading label transforms, per-machine application, witness repair;
* :mod:`repro.core.init_build` — Theorem 5.8 initialisation (distributed
  Borůvka + batched Euler construction);
* :mod:`repro.core.single_update` — §5.4 one-at-a-time updates;
* :mod:`repro.core.decomposition` — Lemma 6.3 path decomposition (pure
  functions, independently tested);
* :mod:`repro.core.batch_addition` / :mod:`repro.core.batch_deletion` —
  §6.1 and §6.2;
* :mod:`repro.core.api` — the :class:`DynamicMST` facade.
"""

from repro.core.api import BatchReport, DynamicMST

__all__ = ["DynamicMST", "BatchReport"]
