"""Public facade: :class:`DynamicMST`.

Wraps the k-machine simulator, the partition, the per-machine Euler
states, and the §5/§6 protocols behind a small API:

    >>> from repro.core import DynamicMST
    >>> from repro.graphs import random_weighted_graph, Update
    >>> g = random_weighted_graph(100, 300, rng=0)
    >>> dm = DynamicMST.build(g, k=8, rng=0)
    >>> report = dm.apply_batch([Update.add(3, 77, 0.5), Update.delete(0, 1)])
    >>> report.rounds  # communication rounds this batch cost  # doctest: +SKIP

The object also maintains a *shadow graph* (the sequential ground truth)
used for input validation and for :meth:`check`, which verifies the full
distributed state against first principles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.batch_addition import batch_add
from repro.core.batch_deletion import batch_delete
from repro.core.checker import check_global_consistency
from repro.core.init_build import distributed_init, free_init, make_states
from repro.core.single_update import single_add, single_delete
from repro.errors import InconsistentUpdate
from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import Edge, WeightedGraph, normalize
from repro.graphs.streams import Update
from repro.perf.config import override_backend, override_fast_path
from repro.sim.executor import ExecutionBackend, resolve_backend
from repro.sim.metrics import TraceSink
from repro.sim.network import FaultHook, KMachineNetwork
from repro.sim.partition import VertexPartition, random_vertex_partition


@dataclass
class BatchReport:
    """Cost and outcome of one applied batch."""

    size: int
    rounds: int
    messages: int
    words: int
    mode: str  # "batch" or "one_at_a_time"
    details: Dict[str, int] = field(default_factory=dict)


class DynamicMST:
    """Batch-dynamic exact MST over a simulated k-machine cluster."""

    def __init__(
        self,
        graph: WeightedGraph,
        k: int,
        vp: VertexPartition,
        net: KMachineNetwork,
        engine: str = "sample_gather",
        rng: RngLike = None,
    ) -> None:
        self.k = k
        self.net = net
        self.vp = vp
        self.engine = engine
        self.rng = as_rng(rng)
        #: Tri-state columnar-fast-path pin: True/False force it for every
        #: operation on this instance; None defers to the process default.
        self.fast: Optional[bool] = None
        #: Execution-backend pin (see :mod:`repro.sim.executor`): set when
        #: the instance was built with an explicit ``backend=``; None
        #: defers to ``fast`` and then to the ambient/process default.
        self.exec_backend: Optional[ExecutionBackend] = None
        self.shadow = graph.copy()
        self.states, self._next_tour_id = make_states(graph, vp, net)
        self.init_rounds = 0
        self.reports: List[BatchReport] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: WeightedGraph,
        k: int,
        rng: RngLike = None,
        engine: str = "sample_gather",
        init: str = "distributed",
        words_per_round: int = 1,
        vp: Optional[VertexPartition] = None,
        fast: Optional[bool] = None,
        trace: Optional[TraceSink] = None,
        backend: Optional[str] = None,
    ) -> "DynamicMST":
        """Partition ``graph`` over ``k`` machines and build the structure.

        ``init="distributed"`` runs the Theorem 5.8 protocol (O(n/k +
        log n) measured rounds); ``init="free"`` installs the structure
        from the oracle without charging the ledger (for update-focused
        benchmarks).  ``fast`` pins the columnar fast path on (True) or
        off (False) for this instance regardless of the process default;
        both settings produce byte-identical ledgers (see
        :mod:`repro.perf`).  ``backend`` pins a full execution backend
        by name (``reference``, ``inproc-columnar``, ``parallel``; see
        :mod:`repro.sim.executor`) and takes precedence over ``fast``;
        with both ``None`` the instance follows the ambient default
        (``REPRO_BACKEND``/``REPRO_FAST``) at each operation.  All
        backends produce byte-identical ledgers.  ``trace`` attaches a
        recorder *before* initialisation, so a measured init's charges
        are part of the trace (charge indices must be contiguous from 0
        — a recorder attached after a distributed init would start
        mid-transcript).
        """
        rng = as_rng(rng)
        net = KMachineNetwork(k, words_per_round=words_per_round)
        if vp is None:
            vp = random_vertex_partition(sorted(graph.vertices()), k, rng)
        dm = cls(graph, k, vp, net, engine=engine, rng=rng)
        if backend is not None:
            dm.exec_backend = resolve_backend(backend=backend)
            dm.fast = dm.exec_backend.fast
        else:
            dm.fast = fast
        if trace is not None:
            dm.attach_trace(trace)
        before = net.ledger.snapshot()
        with dm._engine_context():
            if init == "distributed":
                _msf, dm._next_tour_id = distributed_init(
                    net, vp, dm.states, sorted(graph.vertices()), dm._next_tour_id
                )
            elif init == "free":
                _msf, dm._next_tour_id = free_init(
                    graph, vp, dm.states, dm._next_tour_id
                )
            else:
                raise ValueError(f"unknown init mode {init!r}")
        dm.init_rounds = net.ledger.since(before).rounds
        return dm

    def _engine_context(self):
        """The engine scope for one operation on this instance.

        An explicit backend pin overrides everything (it pushes both the
        backend and fast-path stacks); otherwise the legacy tri-state
        ``fast`` pin applies, with ``None`` deferring to the ambient
        default at call time.
        """
        if self.exec_backend is not None:
            return override_backend(self.exec_backend)
        return override_fast_path(self.fast)

    # ------------------------------------------------------------------
    # observability (repro.trace)
    # ------------------------------------------------------------------
    def _trace_meta(self) -> Dict[str, object]:
        """Model metadata stamped into the ``run_start`` trace event."""
        meta: Dict[str, object] = {
            "model": "k-machine",
            "k": self.k,
            "words_per_round": getattr(self.net, "words_per_round", None),
            "engine": self.engine,
            "n": self.shadow.n,
            "m": self.shadow.m,
            "strict": self.net.strict,
        }
        faults = self.net.faults
        if faults is not None and faults.enabled:
            # Stamped only for runs that can actually inject something, so
            # an empty fault plan leaves traces byte-identical to a run
            # with no hook at all.
            meta["faults"] = True
        return meta

    def attach_trace(self, recorder: TraceSink) -> None:
        """Install a trace recorder and announce the run's model metadata.

        ``recorder`` is any :class:`~repro.sim.metrics.TraceSink` — in
        practice a :class:`repro.trace.recorder.TraceRecorder`.  Every
        subsequent superstep/charge/phase/violation is emitted as a
        structured event until :meth:`detach_trace`.
        """
        self.net.ledger.recorder = recorder
        recorder.emit("run_start", **self._trace_meta())

    def detach_trace(self) -> None:
        """Emit the ``run_end`` totals and detach the recorder."""
        ledger = self.net.ledger
        recorder = ledger.recorder
        if recorder is None:
            return
        fields: Dict[str, object] = {
            "rounds": ledger.rounds,
            "messages": ledger.messages,
            "words": ledger.words,
            "digest": ledger.digest(),
            "strict_violations": self.net.strict_violations,
        }
        if ledger.profiler is not None:
            fields["profile"] = ledger.profiler.as_dict()
        recorder.emit("run_end", **fields)
        ledger.recorder = None

    # ------------------------------------------------------------------
    # fault injection (repro.faults)
    # ------------------------------------------------------------------
    def attach_faults(self, hook: FaultHook) -> None:
        """Install a transport fault hook (see :mod:`repro.faults`).

        While attached *and enabled*, every superstep passes through the
        hook: messages may be dropped (and retransmitted under the
        ``fault-retry`` phase), duplicated, reordered within the round,
        or black-holed at crashed machines.  A disabled hook (empty fault
        plan, nothing crashed) leaves the network path untouched —
        ledgers and traces stay byte-identical to a run with no hook.
        """
        self.net.faults = hook

    def detach_faults(self) -> None:
        """Remove the fault hook; subsequent supersteps run fault-free."""
        self.net.faults = None

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def _validate_batch(self, batch: Sequence[Update]) -> Tuple[List, List]:
        adds: List[Tuple[int, int, float]] = []
        dels: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for upd in batch:
            pair = upd.endpoints
            if pair in seen:
                raise InconsistentUpdate(f"edge {pair} updated twice in one batch")
            seen.add(pair)
            if not (self.shadow.has_vertex(upd.u) and self.shadow.has_vertex(upd.v)):
                raise InconsistentUpdate(f"unknown vertex in update {upd}")
            if upd.kind == "add":
                if self.shadow.has_edge(*pair):
                    raise InconsistentUpdate(f"cannot add existing edge {pair}")
                adds.append((upd.u, upd.v, upd.weight))
            else:
                if not self.shadow.has_edge(*pair):
                    raise InconsistentUpdate(f"cannot delete missing edge {pair}")
                dels.append(pair)
        return adds, dels

    def apply_batch(self, batch: Sequence[Update]) -> BatchReport:
        """Apply a mixed batch: deletions first (§6.2), then additions (§6.1)."""
        with self._engine_context():
            return self._apply_batch(batch)

    def _apply_batch(self, batch: Sequence[Update]) -> BatchReport:
        adds, dels = self._validate_batch(batch)
        recorder = self.net.ledger.recorder
        if recorder is not None:
            recorder.emit("batch_start", size=len(batch), mode="batch")
        before = self.net.ledger.snapshot()
        details: Dict[str, int] = {}
        if dels:
            self._next_tour_id, d = batch_delete(
                self.net, self.vp, self.states, dels, self._next_tour_id,
                engine=self.engine, rng=self.rng,
            )
            details.update({f"del_{k}": v for k, v in d.items()})
            for (u, v) in dels:
                self.shadow.remove_edge(u, v)
        if adds:
            self._next_tour_id, d = batch_add(
                self.net, self.vp, self.states, adds, self._next_tour_id
            )
            details.update({f"add_{k}": v for k, v in d.items()})
            for (u, v, w) in adds:
                self.shadow.add_edge(u, v, w)
        delta = self.net.ledger.since(before)
        report = BatchReport(
            size=len(batch), rounds=delta.rounds, messages=delta.messages,
            words=delta.words, mode="batch", details=details,
        )
        if recorder is not None:
            recorder.emit(
                "batch_end", size=report.size, mode=report.mode,
                rounds=report.rounds, messages=report.messages,
                words=report.words, details=details,
            )
        self.reports.append(report)  # simlint: disable=SIM005 driver-side measurement log, not machine state
        self._prune_tours()
        return report

    def apply_one_at_a_time(self, batch: Sequence[Update]) -> BatchReport:
        """Baseline: process a batch as individual §5.4 updates."""
        with self._engine_context():
            return self._apply_one_at_a_time(batch)

    def _apply_one_at_a_time(self, batch: Sequence[Update]) -> BatchReport:
        adds, dels = self._validate_batch(batch)
        recorder = self.net.ledger.recorder
        if recorder is not None:
            recorder.emit("batch_start", size=len(batch), mode="one_at_a_time")
        before = self.net.ledger.snapshot()
        for (u, v) in dels:
            self._next_tour_id, _ = single_delete(
                self.net, self.vp, self.states, u, v, self._next_tour_id
            )
            self.shadow.remove_edge(u, v)
        for (u, v, w) in adds:
            self._next_tour_id, _ = single_add(
                self.net, self.vp, self.states, u, v, w, self._next_tour_id
            )
            self.shadow.add_edge(u, v, w)
        delta = self.net.ledger.since(before)
        report = BatchReport(
            size=len(batch), rounds=delta.rounds, messages=delta.messages,
            words=delta.words, mode="one_at_a_time",
        )
        if recorder is not None:
            recorder.emit(
                "batch_end", size=report.size, mode=report.mode,
                rounds=report.rounds, messages=report.messages,
                words=report.words,
            )
        self.reports.append(report)  # simlint: disable=SIM005 driver-side measurement log, not machine state
        self._prune_tours()
        return report

    def apply(self, batch: Sequence[Update], mode: str = "auto") -> BatchReport:
        """Dispatch a batch: "batch" (§6), "one_at_a_time" (§5.4), or
        "auto" — the batch protocols' fixed costs only pay off beyond a
        couple of updates, so tiny batches take the single-update path."""
        if mode == "auto":
            mode = "one_at_a_time" if len(batch) <= 2 else "batch"
        if mode == "batch":
            return self.apply_batch(batch)
        if mode == "one_at_a_time":
            return self.apply_one_at_a_time(batch)
        raise ValueError(f"unknown mode {mode!r}")

    def add_edge(self, u: int, v: int, w: float) -> BatchReport:
        return self.apply_one_at_a_time([Update.add(u, v, w)])

    # ------------------------------------------------------------------
    # streaming ingestion (repro.stream)
    # ------------------------------------------------------------------
    @property
    def batch_capacity(self) -> int:
        """The model's natural batch size: Θ(k) per Theorem 6.1.

        The streaming scheduler chunks its cuts at this size; the MPC
        subclass overrides it with the per-machine space S (§8).
        """
        return self.k

    def ingest(
        self,
        arrivals,
        policy: str = "adaptive",
        coalesce: bool = True,
        max_batch: Optional[int] = None,
        **policy_kwargs,
    ):
        """Replay an :class:`~repro.graphs.streams.ArrivalStream` through
        the admission buffer + batch scheduler (see :mod:`repro.stream`).

        Returns a :class:`~repro.stream.ingest.StreamReport`.  Scheduling
        is host-side and charges zero rounds; only the resulting
        :meth:`apply_batch` calls touch the ledger.
        """
        from repro.stream.ingest import StreamIngestor

        ingestor = StreamIngestor(
            self, policy=policy, coalesce=coalesce, max_batch=max_batch,
            **policy_kwargs,
        )
        return ingestor.run(arrivals)

    # ------------------------------------------------------------------
    # vertex churn (beyond the paper, which fixes the vertex set)
    # ------------------------------------------------------------------
    def add_vertex(self, x: int) -> None:
        """Register a new isolated vertex (O(1) rounds).

        The vertex lands on a random machine per the random-vertex-
        partition rule; its singleton tour id comes from the replicated
        counter so every machine agrees without negotiation.
        """
        if self.shadow.has_vertex(x):
            raise InconsistentUpdate(f"vertex {x} already exists")
        home = int(self.rng.integers(0, self.k))
        self.net.broadcast(home, ("new_vertex", x, self._next_tour_id), 2)
        self.shadow.add_vertex(x)
        self.vp.add_vertex(x, home)
        st = self.states[home]
        st.vertices.add(x)
        st.track(x)
        st.tour_of[x] = self._next_tour_id
        st.tour_size[self._next_tour_id] = 0
        self._next_tour_id += 1

    def remove_vertex(self, x: int) -> BatchReport:
        """Remove a vertex, deleting its incident edges first (one batch)."""
        if not self.shadow.has_vertex(x):
            raise InconsistentUpdate(f"vertex {x} does not exist")
        incident = [Update.delete(e.u, e.v) for e in self.shadow.incident_edges(x)]
        report = self.apply_batch(incident) if incident else BatchReport(
            size=0, rounds=0, messages=0, words=0, mode="batch"
        )
        self.net.broadcast(self.vp.home(x), ("del_vertex", x), 1)
        self.shadow.remove_vertex(x)
        home = self.vp.home(x)
        st = self.states[home]
        st.vertices.discard(x)
        for s2 in self.states:
            s2.tracked.discard(x)
            s2.witness.pop(x, None)
            s2.tour_of.pop(x, None)
        self.vp.remove_vertex(x)
        self._prune_tours()
        return report

    def delete_edge(self, u: int, v: int) -> BatchReport:
        return self.apply_one_at_a_time([Update.delete(u, v)])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def msf_edges(self) -> Set[Edge]:
        """The current minimum spanning forest (union of machine views)."""
        out: Dict[Tuple[int, int], Edge] = {}
        for st in self.states:
            for (u, v), ete in st.mst.items():
                out[(u, v)] = ete.as_edge()
        return set(out.values())

    def in_mst(self, u: int, v: int) -> bool:
        """Would be answered by either hosting machine locally."""
        key = normalize(u, v)
        return key in self.states[self.vp.home(key[0])].mst

    def total_weight(self) -> float:
        return sum(e.weight for e in self.msf_edges())

    @property
    def rounds(self) -> int:
        return self.net.ledger.rounds

    def peak_space_words(self) -> int:
        return max(m.peak_words for m in self.net.machines)

    # ------------------------------------------------------------------
    # distributed read queries (charged on the ledger; repro.core.queries)
    # ------------------------------------------------------------------
    def connected(self, u: int, v: int) -> bool:
        """O(1)-round distributed connectivity query."""
        from repro.core import queries

        return queries.connectivity_query(self.net, self.vp, self.states, u, v)

    def batch_connected(self, pairs) -> Dict[Tuple[int, int], bool]:
        """q connectivity queries in O(q/k + 1) rounds."""
        from repro.core import queries

        return queries.batch_connectivity(self.net, self.vp, self.states, pairs)

    def bottleneck_edge(self, u: int, v: int) -> Optional[Tuple[float, int, int]]:
        """Heaviest MST edge on the u–v tree path (None if disconnected)."""
        from repro.core import queries

        return queries.path_max_query(self.net, self.vp, self.states, u, v)

    def distributed_weight(self) -> float:
        """Forest weight via one converge-cast (vs the free local msf sum)."""
        from repro.core import queries

        return queries.forest_weight_query(self.net, self.vp, self.states)

    def component_count(self) -> int:
        """Number of trees in the forest, via one converge-cast."""
        from repro.core import queries

        return queries.component_count_query(self.net, self.vp, self.states)

    def subtree_size(self, x: int) -> int:
        """Vertices below x w.r.t. the current tour root (O(1) rounds)."""
        from repro.core import queries

        return queries.subtree_size_query(self.net, self.vp, self.states, x)

    def lca(self, u: int, v: int) -> Optional[int]:
        """Lowest common ancestor w.r.t. the current tour root, or None."""
        from repro.core import queries

        return queries.lca_query(self.net, self.vp, self.states, u, v)

    def reweight_edge(self, u: int, v: int, new_weight: float) -> BatchReport:
        """Change an edge's weight (delete + re-insert, two mini-batches)."""
        first = self.apply_batch([Update.delete(u, v)])
        second = self.apply_batch([Update.add(u, v, new_weight)])
        merged = BatchReport(
            size=1,
            rounds=first.rounds + second.rounds,
            messages=first.messages + second.messages,
            words=first.words + second.words,
            mode="reweight",
        )
        # simlint: disable=SIM005 driver-side measurement log, not machine state
        self.reports[-2:] = [merged]
        return merged

    # ------------------------------------------------------------------
    # verification / maintenance
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Raise ProtocolError if the distributed state is inconsistent.

        Centralized instrumentation (free); for the in-model O(1)-round
        self-check see :meth:`audit`.
        """
        check_global_consistency(self.states, self.shadow, self.vp)

    def audit(self) -> bool:
        """Distributed fingerprint self-audit (O(#tours/k + 1) rounds).

        Returns True if every tour's labels pass the Schwartz–Zippel
        walk check; see :mod:`repro.core.audit`.
        """
        from repro.core.audit import distributed_audit

        ok, _bad = distributed_audit(self.net, self.vp, self.states, rng=self.rng)
        return ok

    def _prune_tours(self) -> None:
        """Drop per-machine tour-size entries no longer referenced."""
        for st in self.states:
            live = {t for t in st.tour_of.values() if t is not None}
            live.update(e.tour for e in st.mst.values())
            live.update(w.tour for w in st.witness.values() if w is not None)
            st.tour_size = {t: s for t, s in st.tour_size.items() if t in live}
            st.refresh_gauges()
