"""Distributed self-audit: verify the Euler structure in O(T/k + 1) rounds.

The test suite's :mod:`repro.core.checker` is centralized instrumentation;
a real deployment wants the *cluster itself* to detect corruption.  The
Euler walk admits a classic fingerprint check:

A tour of size L is valid iff the multiset of directed traversals
``{(t, tail_t, head_t)}`` chains — equivalently, the multisets
``{(t + 1 mod L, head_t)}`` and ``{(t, tail_t)}`` are equal, and the
labels are exactly {0..L-1}.  Multiset equality is checked with a random
polynomial fingerprint (Schwartz–Zippel): each machine sums
``r^encode(label, vertex) mod p`` over the traversals of the edges it
*homes* (the smaller endpoint's machine, so replicated copies are not
double-counted), and per-tour converge-casts compare the two sums plus a
label checksum.  A corrupted label, direction or size is detected with
probability ≥ 1 - L/p per audit.

Cost: the fingerprints of all T affected tours are aggregated through
:func:`repro.comm.aggregate.batched_queries` — O(T/k + 1) rounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.aggregate import batched_queries
from repro.core.state import MachineState
from repro.graphs.generators import RngLike, as_rng
from repro.sim.message import WORDS_ID
from repro.sim.network import Network
from repro.sim.partition import VertexPartition

_P = (1 << 61) - 1


def _encode(label: int, vertex: int, r: int, salt: int) -> int:
    return pow(r, (label * 1_000_003 + vertex + salt) % (_P - 1) + 1, _P)


def distributed_audit(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    rng: RngLike = None,
) -> Tuple[bool, List[int]]:
    """Audit every tour; returns (ok, list of suspicious tour ids).

    The shared random base r is drawn by machine 0 and broadcast (one
    round) so all machines fingerprint consistently.
    """
    rng = as_rng(rng)
    r = int(rng.integers(2, _P - 2))
    net.broadcast(0, ("audit_base", r), WORDS_ID)

    # Per machine, per tour: (chain_forward, chain_backward, label_sum,
    # label_sq_sum, n_traversals) over the edges this machine homes.
    per_query: Dict[int, List[Optional[Tuple[int, int, int, int, int]]]] = {}
    sizes: Dict[int, int] = {}
    for st in states:
        local: Dict[int, List[int]] = {}
        for (u, v), ete in st.mst.items():
            if vp.home(u) != st.mid:
                continue  # the other copy's machine reports this edge
            acc = local.setdefault(ete.tour, [0, 0, 0, 0, 0])
            for label in (ete.t_uv, ete.t_vu):
                head = ete.head_at(label)
                tail = ete.tail_at(label)
                size = st.tour_size.get(ete.tour)
                if size is None or size <= 0:
                    continue
                acc[0] = (acc[0] + _encode((label + 1) % size, head, r, 7)) % _P
                acc[1] = (acc[1] + _encode(label, tail, r, 7)) % _P
                acc[2] += label
                acc[3] += label * label
                acc[4] += 1
        for tid, acc in local.items():
            if tid not in per_query:
                per_query[tid] = [None] * net.k
            per_query[tid][st.mid] = tuple(acc)
        for tid, size in st.tour_size.items():
            sizes.setdefault(tid, size)

    def combine(parts: List[Tuple[int, int, int, int, int]]):
        f = b = s = q = c = 0
        for (pf, pb, ps, pq, pc) in parts:
            f = (f + pf) % _P
            b = (b + pb) % _P
            s += ps
            q += pq
            c += pc
        return (f, b, s, q, c)

    answers = batched_queries(net, per_query, combine, words=WORDS_ID * 5)

    bad: List[int] = []
    for tid, ans in answers.items():
        if ans is None:
            bad.append(tid)
            continue
        f, b, s, q, c = ans
        size = sizes.get(tid, -1)
        # 1. All labels present exactly once: count, sum, sum of squares.
        exp_s = size * (size - 1) // 2
        exp_q = (size - 1) * size * (2 * size - 1) // 6
        if c != size or s != exp_s or q != exp_q:
            bad.append(tid)
            continue
        # 2. The walk chains: forward and backward fingerprints agree.
        if f != b:
            bad.append(tid)
    return (not bad, sorted(bad))
