"""Batch edge additions (§6.1).

Protocol (each numbered step is O(1) rounds; O(k) broadcasts go through
the Rerouting Lemma):

1. the k new edges are broadcast — everyone learns the set A;
2. home machines of A-vertices broadcast their tour ids and parent
   intervals (the simulated-reroot information of steps 2–3);
3. every machine determines locally, for each of its *own* vertices,
   whether it is in B (≥ 3 incident Steiner edges — a pure local check
   since a home machine holds all of a vertex's edges) and broadcasts the
   B-anchors it found;
4. every machine builds the identical induced tree T / path-set list
   (Lemma 6.3, via :mod:`repro.core.decomposition`);
5. one max-query per path set, collated round-robin (§6.1 step 6) through
   :func:`repro.comm.aggregate.batched_queries`;
6. every machine solves the identical contracted instance M'' and derives
   the cut/link decisions;
7. the Euler structure is updated k edges at a time (Lemma 5.9) and new
   neighbour witnesses are broadcast.

The whole batch is deterministic — Theorem 6.1's addition case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.aggregate import batched_queries
from repro.comm.rerouting import scheduled_broadcasts
from repro.core.decomposition import (
    AnchorInfo,
    PathSet,
    build_paths,
    in_m_prime,
    solve_contracted,
)
from repro.core.scripts import run_structural_batch, _repair_witnesses
from repro.core.state import MachineState
from repro.errors import InconsistentUpdate
from repro.graphs.graph import normalize
from repro.perf.config import fast_path_enabled
from repro.perf.steiner import m_prime_members, steiner_degrees
from repro.sim.message import WORDS_EDGE, WORDS_ID, WORDS_UPDATE
from repro.sim.network import Network
from repro.sim.partition import VertexPartition


def batch_add(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    adds: Sequence[Tuple[int, int, float]],
    next_tour_id: int,
) -> Tuple[int, Dict[str, int]]:
    """Insert a batch of edges; returns (tour counter, summary dict)."""
    adds = [(*normalize(u, v), w) for (u, v, w) in adds]
    if len({(u, v) for (u, v, _w) in adds}) != len(adds):
        raise InconsistentUpdate("duplicate edge pair within one addition batch")

    # Step 1: broadcast the new edges from the machines they arrived at.
    with net.ledger.phase("add.broadcast_updates"):
        scheduled_broadcasts(
            net,
            [(vp.home(u), ("add", u, v, w), WORDS_UPDATE) for (u, v, w) in adds],
        )
    for (u, v, w) in adds:
        for m in vp.edge_machines(u, v):
            if states[m].hosts_edge(u, v):
                raise InconsistentUpdate(f"edge ({u},{v}) already present")
            states[m].store_graph_edge(u, v, w)

    # Step 2: home machines of A-vertices broadcast anchor info.
    a_vertices = sorted({x for (u, v, _w) in adds for x in (u, v)})
    reqs = []
    for x in a_vertices:
        st = states[vp.home(x)]
        tid = st.tour_of[x]
        size = st.tour_size.get(tid, 0)
        interval = st.parent_interval(x)
        if interval is None:
            interval = (-1, size)  # tour root or isolated vertex
        reqs.append(
            (vp.home(x), ("anchorA", x, tid, interval, size), WORDS_ID * 5)
        )
    with net.ledger.phase("add.anchor_broadcast"):
        got = scheduled_broadcasts(net, reqs)
    a_anchors: Dict[int, AnchorInfo] = {}
    a_entries_by_tour: Dict[int, List[int]] = {}
    tour_sizes: Dict[int, int] = {}
    for _src, (_tag, x, tid, interval, size) in got:
        a_anchors[x] = AnchorInfo(x, tid, tuple(interval))
        a_entries_by_tour.setdefault(tid, []).append(interval[0])
        tour_sizes[tid] = size
    for entries in a_entries_by_tour.values():
        entries.sort()

    # Step 3: B-anchors — a home machine checks each of its own vertices.
    # Fast path: the incident-M′ degree of every vertex of a tour falls
    # out of one batched membership pass (repro.perf.steiner) instead of
    # per-vertex bisect loops; the counted edge sets are identical.
    use_fast = fast_path_enabled()
    eligible = {
        tid: entries
        for tid, entries in a_entries_by_tour.items()
        if len(entries) >= 2
    }
    b_reqs = []
    for st in states:
        deg_map = steiner_degrees(st, eligible) if use_fast else None
        for x in sorted(st.vertices):
            if x in a_anchors:
                continue
            tid = st.tour_of.get(x)
            entries = a_entries_by_tour.get(tid)
            if not entries or len(entries) < 2:
                continue
            if deg_map is not None:
                deg = deg_map.get(x, 0)
            else:
                deg = sum(
                    1
                    for e in st.incident_mst(x)
                    if e.tour == tid and in_m_prime(e.labels(), entries)
                )
            if deg >= 3:
                interval = st.parent_interval(x)
                if interval is None:
                    interval = (-1, tour_sizes.get(tid, 0))
                b_reqs.append(
                    (st.mid, ("anchorB", x, tid, interval), WORDS_ID * 4)
                )
    with net.ledger.phase("add.anchor_broadcast"):
        got_b = scheduled_broadcasts(net, b_reqs)
    anchors: List[AnchorInfo] = list(a_anchors.values())
    for _src, (_tag, x, tid, interval) in got_b:
        anchors.append(AnchorInfo(x, tid, tuple(interval)))

    # Step 4: identical path-set construction everywhere.
    paths = build_paths(anchors, a_entries_by_tour)

    # Step 5: one max-query per path set.
    per_query: Dict[Tuple[int, int], List[Optional[Tuple]]] = {
        p.query_id: [None] * net.k for p in paths
    }
    paths_by_tour: Dict[int, List[PathSet]] = {}
    for p in paths:
        paths_by_tour.setdefault(p.tour, []).append(p)
    for st in states:
        best: Dict[Tuple[int, int], Tuple] = {}
        if use_fast:
            # Batched membership first; only the Steiner slice reaches
            # the per-edge path matching below.
            members = [
                (ete, labels)
                for tid in paths_by_tour
                for (ete, labels) in m_prime_members(
                    st, tid, a_entries_by_tour[tid]
                )
            ]
        else:
            members = []
            for ete in st.mst.values():
                tour_paths = paths_by_tour.get(ete.tour)
                if not tour_paths:
                    continue
                labels = ete.labels()
                entries = a_entries_by_tour[ete.tour]  # kept sorted above
                if in_m_prime(labels, entries, assume_sorted=True):
                    members.append((ete, labels))
        for ete, labels in members:
            for p in paths_by_tour[ete.tour]:
                if p.matches_interval(labels):
                    cand = (ete.key, ete.u, ete.v)
                    cur = best.get(p.query_id)
                    if cur is None or cand > cur:
                        best[p.query_id] = cand
                    break  # path sets are disjoint
        for qid, cand in best.items():
            per_query[qid][st.mid] = cand
    with net.ledger.phase("add.path_max_queries"):
        answers = batched_queries(net, per_query, max, words=WORDS_EDGE)

    # Step 6: identical contraction solve everywhere.
    decision = solve_contracted(paths, answers, adds)

    # Step 7: apply the structural batch and refresh witnesses.
    with net.ledger.phase("add.structural_update"):
        next_tour_id = run_structural_batch(
            net, vp, states, cuts=decision.cuts, links=decision.links,
            next_tour_id=next_tour_id,
        )
        # Machines that started tracking a new remote endpoint need its
        # witness/tour info; endpoints' homes broadcast it (O(k) → O(1)).
        _repair_witnesses(net, vp, states, a_vertices)

    summary = {
        "adds": len(adds),
        "anchors": len(anchors),
        "paths": len(paths),
        "cuts": len(decision.cuts),
        "links": len(decision.links),
        "rejected": len(decision.rejected),
    }
    return next_tour_id, summary
