"""Batch edge deletions (§6.2) — the Las-Vegas randomized case.

Protocol (numbered as in the paper):

1. the deleted edges' Euler values are broadcast and each affected tour's
   components are labelled by bracket matching (Figure 4);
2. every machine labels its surviving graph edges with the component pair
   they cross, using the stored neighbour witnesses (the §5.2 cache; a
   witness that *is* a deleted edge resolves by traversal direction);
3. machine-local cycle deletion keeps ≤ (#components - 1) candidates per
   machine;
4. the candidates are Lenzen-sorted lexicographically by component pair;
5. each machine keeps only the lightest edge per pair within its sorted
   run;
6. cross-machine duplicates are killed by comparing with the predecessor
   run (we share the run boundaries through the Rerouting Lemma — same
   O(1) rounds as the paper's neighbour exchange, simpler to schedule);
7. Lenzen routing ships every surviving candidate to the machines owning
   its two components (component c lives on machine c mod k);
8. a CONGESTED-CLIQUE MST engine (:mod:`repro.cclique`) solves the
   contracted instance — Jurdziński–Nowicki in the paper, our three
   engines per the DESIGN.md substitution;

then the Euler structure applies the k cuts and the replacement links via
Lemma 5.9.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cclique.ccedge import CCEdge
from repro.cclique.engines import cc_msf
from repro.comm.lenzen import lenzen_route, lenzen_sort
from repro.comm.rerouting import scheduled_broadcasts
from repro.core.scripts import run_structural_batch
from repro.core.state import MachineState
from repro.errors import InconsistentUpdate, ProtocolError
from repro.euler.brackets import BracketComponents
from repro.euler.tour import ETEdge
from repro.graphs.generators import RngLike
from repro.graphs.graph import normalize
from repro.perf.config import fast_path_enabled
from repro.sim.message import (
    WORDS_COMPONENT_EDGE,
    WORDS_ET_EDGE,
    WORDS_ID,
    Message,
)
from repro.sim.network import Network
from repro.sim.partition import VertexPartition


def batch_delete(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    dels: Sequence[Tuple[int, int]],
    next_tour_id: int,
    engine: str = "sample_gather",
    rng: RngLike = None,
) -> Tuple[int, Dict[str, int]]:
    """Delete a batch of edges; returns (tour counter, summary dict)."""
    dels = sorted({normalize(u, v) for (u, v) in dels})
    if len(dels) != len({d for d in dels}):
        raise InconsistentUpdate("duplicate edge pair within one deletion batch")

    # Step 1: broadcast deletions with their Euler values (if MST edges).
    reqs = []
    for (u, v) in dels:
        src = vp.home(u)
        st = states[src]
        if not st.hosts_edge(u, v):
            raise InconsistentUpdate(f"edge ({u},{v}) not present")
        ete = st.mst.get((u, v))
        snap = ete.snapshot() if ete is not None else None
        size = st.tour_size[ete.tour] if ete is not None else 0
        reqs.append((src, ("del", u, v, snap, size), WORDS_ET_EDGE + 1))
    with net.ledger.phase("del.broadcast_updates"):
        got = scheduled_broadcasts(net, reqs)

    mst_dels: List[Tuple[ETEdge, int]] = []  # (snapshot, tour size)
    for _src, (_tag, u, v, snap, size) in got:
        if snap is not None:
            mst_dels.append((ETEdge.from_snapshot(list(snap)), size))
    # Local graph-edge removal on the hosting machines.
    for (u, v) in dels:
        for m in vp.edge_machines(u, v):
            states[m].drop_graph_edge(u, v)

    summary = {"dels": len(dels), "mst_dels": len(mst_dels), "components": 0,
               "candidates": 0, "replacements": 0}
    if not mst_dels:
        return next_tour_id, summary

    # Bracket components per affected tour, and the global component ids
    # (every machine derives this identically from the broadcast values).
    by_tour: Dict[int, List[Tuple[ETEdge, int]]] = {}
    for ete, size in mst_dels:
        by_tour.setdefault(ete.tour, []).append((ete, size))
    brackets: Dict[int, BracketComponents] = {}
    comp_base: Dict[int, int] = {}
    total = 0
    for tid in sorted(by_tour):
        pairs = [e.labels() for (e, _s) in by_tour[tid]]
        size = by_tour[tid][0][1]
        brackets[tid] = BracketComponents(pairs, size)
        comp_base[tid] = total
        total += brackets[tid].n_components
    summary["components"] = total

    def comp_of(st: MachineState, x: int) -> Optional[int]:
        tid = st.tour_of.get(x)
        if tid not in brackets:
            return None
        w = st.witness.get(x)
        if w is None:
            raise ProtocolError(
                f"machine {st.mid}: no witness for {x} in split tour"
            )
        return comp_base[tid] + brackets[tid].component_of_vertex(w, x)

    # Fast path: batch the bracket search over every queried vertex of a
    # machine (repro.perf.components); undecidable rows fall back to the
    # scalar comp_of, so values and error behaviour match the reference.
    use_fast = fast_path_enabled()
    if use_fast:
        from repro.perf.components import (
            SCALAR_FALLBACK,
            machine_component_map,
            tour_interval_arrays,
        )

        interval_arrays = tour_interval_arrays(brackets)

    # Steps 2–3: label candidate edges, machine-local cycle deletion.
    local: List[List[Tuple[Tuple[int, int], Tuple, Tuple]]] = []
    n_candidates = 0
    for st in states:
        cmap = (
            machine_component_map(st, brackets, comp_base, interval_arrays)
            if use_fast
            else None
        )
        cands: List[CCEdge] = []
        for (x, y), w in sorted(st.graph_edges.items()):
            if cmap is None:
                cx, cy = comp_of(st, x), comp_of(st, y)
            else:
                cx = cmap[x]
                if cx is SCALAR_FALLBACK:
                    cx = comp_of(st, x)
                cy = cmap[y]
                if cy is SCALAR_FALLBACK:
                    cy = comp_of(st, y)
            if cx is None and cy is None:
                continue
            if cx is None or cy is None:
                raise ProtocolError(
                    f"edge ({x},{y}) straddles an affected and an unaffected tour"
                )
            if cx != cy:
                cands.append(CCEdge.make(cx, cy, (w, x, y), data=(x, y, w)))
        # Local cycle deletion (≤ #components - 1 survivors).
        from repro.cclique.engines import _cc_local_msf

        kept = _cc_local_msf(cands)
        n_candidates += len(kept)
        local.append([((c.cu, c.cv), c.key, c.data) for c in kept])
    summary["candidates"] = n_candidates

    # Step 4: global Lenzen sort by (component pair, key).
    with net.ledger.phase("del.lenzen_sort"):
        sorted_runs = lenzen_sort(net, local, words=WORDS_COMPONENT_EDGE)

    # Step 5: within each machine, keep only the lightest edge per pair.
    pruned: List[List[Tuple[Tuple[int, int], Tuple, Tuple]]] = []
    for run in sorted_runs:
        out = []
        prev_pair = None
        for item in run:
            if item[0] != prev_pair:
                out.append(item)
                prev_pair = item[0]
        pruned.append(out)

    # Step 6: kill duplicates across run boundaries — every machine learns
    # every run's last pair and drops its leading items whose pair already
    # appeared in an earlier machine's run.
    boundary_reqs = [
        (m, ("last_pair", m, pruned[m][-1][0] if pruned[m] else None), WORDS_ID * 2)
        for m in range(net.k)
    ]
    with net.ledger.phase("del.dedup_boundaries"):
        got = scheduled_broadcasts(net, boundary_reqs)
    last_pair = {m: payload[2] for _src, payload in got for m in [payload[1]]}
    for m in range(net.k):
        prior = None
        for j in range(m - 1, -1, -1):
            if last_pair.get(j) is not None:
                prior = last_pair[j]
                break
        if prior is not None and pruned[m] and pruned[m][0][0] == prior:
            pruned[m] = pruned[m][1:]

    # Step 7: route edges touching component c to machine c mod k.
    msgs = []
    routed: List[List[CCEdge]] = [[] for _ in range(net.k)]
    for m in range(net.k):
        for (pair, key, data) in pruned[m]:
            e = CCEdge.make(pair[0], pair[1], key, data)
            for c in pair:
                dst = c % net.k
                if dst == m:
                    routed[m].append(e)
                else:
                    msgs.append(Message(m, dst, ("cand", e), WORDS_COMPONENT_EDGE))
    with net.ledger.phase("del.route_to_components"):
        inboxes = lenzen_route(net, msgs)
    for dst, received in inboxes.items():
        routed[dst].extend(p[1] for _src, p in received)
    routed = [sorted(set(r)) for r in routed]

    # Step 8: the CONGESTED-CLIQUE MST engine on the contracted instance.
    with net.ledger.phase("del.cc_mst"):
        replacements = cc_msf(net, total, routed, engine=engine, rng=rng)
    summary["replacements"] = len(replacements)

    # Apply the structural batch: the deleted MST edges are cut, the
    # chosen replacement edges are linked (Lemma 5.9).
    cuts = [normalize(e.u, e.v) for (e, _s) in mst_dels]
    links = [e.data for e in replacements]
    with net.ledger.phase("del.structural_update"):
        next_tour_id = run_structural_batch(
            net, vp, states, cuts=cuts, links=links, next_tour_id=next_tour_id
        )
    return next_tour_id, summary
