"""Deep consistency checker for the distributed Euler state.

Used by tests and by :meth:`DynamicMST.check`: verifies, from first
principles, that the union of the machines' local views forms the unique
MSF of the current graph with a valid Euler-tour labelling, that replicas
agree, and that witnesses/tour maps are coherent.  Expensive — O(n + m)
per call — and entirely outside the measured protocols.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.state import MachineState
from repro.errors import ProtocolError
from repro.euler.tour import ETEdge, check_valid_tour
from repro.graphs.graph import WeightedGraph, normalize
from repro.graphs.mst import kruskal_msf, msf_key_multiset
from repro.sim.partition import VertexPartition


def check_global_consistency(
    states: Sequence[MachineState],
    graph: WeightedGraph,
    vp: VertexPartition,
) -> None:
    # 1. Graph-edge replication: each edge stored exactly on its endpoint
    #    machines, with the right weight.
    seen: Dict[Tuple[int, int], float] = {}
    for st in states:
        for (u, v), w in st.graph_edges.items():
            machines = set(vp.edge_machines(u, v))
            if st.mid not in machines:
                raise ProtocolError(f"machine {st.mid} stores foreign edge ({u},{v})")
            seen[(u, v)] = w
    expect = {(e.u, e.v): e.weight for e in graph.edges()}
    if seen != expect:
        missing = set(expect) - set(seen)
        extra = set(seen) - set(expect)
        raise ProtocolError(f"graph replicas diverge: missing={missing} extra={extra}")
    for st in states:
        for x in st.vertices:
            pass  # vertex sets are fixed by the partition; nothing to check

    # 2. MST copies agree across machines and form the unique MSF.
    copies: Dict[Tuple[int, int], List[ETEdge]] = {}
    for st in states:
        for key, ete in st.mst.items():
            if key not in st.graph_edges:
                raise ProtocolError(f"machine {st.mid}: MST edge {key} not a graph edge")
            copies.setdefault(key, []).append(ete)
    for key, etes in copies.items():
        snaps = {e.snapshot() for e in etes}
        if len(snaps) != 1:
            raise ProtocolError(f"MST copies diverge for {key}: {snaps}")
        machines_holding = {st.mid for st in states if key in st.mst}
        if machines_holding != set(vp.edge_machines(*key)):
            raise ProtocolError(f"MST edge {key} missing on an endpoint machine")
    forest = [etes[0] for etes in copies.values()]
    got = msf_key_multiset(e.as_edge() for e in forest)
    want = msf_key_multiset(kruskal_msf(graph))
    if got != want:
        raise ProtocolError(f"MST is wrong: got {got} want {want}")

    # 3. Valid Euler tours with consistent sizes.
    by_tour: Dict[int, List[ETEdge]] = {}
    for e in forest:
        by_tour.setdefault(e.tour, []).append(e)
    sizes: Dict[int, int] = {}
    for st in states:
        for tid, s in st.tour_size.items():
            if tid in sizes and sizes[tid] != s:
                raise ProtocolError(f"tour {tid} size disagrees: {sizes[tid]} vs {s}")
            sizes[tid] = s
    for tid, edges in by_tour.items():
        if tid not in sizes:
            raise ProtocolError(f"tour {tid} has edges but no recorded size")
        if not check_valid_tour(edges, sizes[tid]):
            raise ProtocolError(f"tour {tid} labels are not a valid Euler walk")
        if sizes[tid] != 2 * len(edges):
            raise ProtocolError(
                f"tour {tid}: size {sizes[tid]} != 2 * {len(edges)} edges"
            )

    # 4. tour_of matches the forest's actual components.
    tour_truth: Dict[int, int] = {}
    for e in forest:
        for x in (e.u, e.v):
            if x in tour_truth and tour_truth[x] != e.tour:
                raise ProtocolError(f"vertex {x} has edges in two tours")
            tour_truth[x] = e.tour
    for st in states:
        for x in st.tracked:
            tid = st.tour_of.get(x)
            if x in tour_truth:
                if tid != tour_truth[x]:
                    raise ProtocolError(
                        f"machine {st.mid}: tour_of[{x}]={tid}, truth {tour_truth[x]}"
                    )
            else:
                # Isolated vertex: must be a singleton tour of size 0.
                if tid is None:
                    raise ProtocolError(f"machine {st.mid}: no tour for tracked {x}")
                if sizes.get(tid, 0) != 0:
                    raise ProtocolError(
                        f"machine {st.mid}: isolated {x} in tour {tid} of size "
                        f"{sizes.get(tid)}"
                    )

    # 5. Witnesses: a current MST edge incident to the vertex, labels exact.
    true_edges = {(e.u, e.v): e for e in forest}
    for st in states:
        for x in st.tracked:
            w = st.witness.get(x)
            if w is None:
                if x in tour_truth:
                    raise ProtocolError(
                        f"machine {st.mid}: vertex {x} has MST edges but no witness"
                    )
                continue
            key = normalize(w.u, w.v)
            truth = true_edges.get(key)
            if truth is None:
                raise ProtocolError(f"machine {st.mid}: witness {key} for {x} is stale")
            if x not in key:
                raise ProtocolError(f"machine {st.mid}: witness {key} not incident to {x}")
            if w.snapshot() != truth.snapshot():
                raise ProtocolError(
                    f"machine {st.mid}: witness labels stale for {x}: "
                    f"{w.snapshot()} vs {truth.snapshot()}"
                )
