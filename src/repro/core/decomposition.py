"""Path decomposition for batch additions (Lemma 6.3, Figures 2–3).

Pure functions over broadcast-shaped data, so the distributed protocol
and the tests share one implementation.

Definitions (per affected tour t):

* ``A_t`` — endpoints of new edges lying in t; every vertex is described
  by its *parent interval* I(x) = (p_in, p_out) of its parent edge
  (Lemma 5.3), with the sentinel (-1, size) for the tour root, so that
  interval containment is uniform;
* M' — the Steiner tree of A_t inside the MST: edge e ∈ M' iff the count
  of A_t-vertices *below* e satisfies 1 ≤ cnt ≤ |A_t| - 1, where
  "a below e" ⟺ p_in(a) ∈ [e_in, e_out];
* ``B_t`` — vertices with ≥ 3 incident M' edges (computed by their home
  machines, who hold all their edges);
* anchors = A_t ∪ B_t.  Their intervals nest; the nesting forest almost
  equals the induced tree T of the lemma, with one wrinkle: the *topmost
  junction* of the Steiner tree may have exactly two branches and no M'
  edge above it — a "bend" that is in neither A nor B.  Such a bend shows
  up as *two* top-level anchors whose parent edges are both in M'; they
  contribute a single two-arm path set.

Each :class:`PathSet` is one of the lemma's O(k) disjoint sets; at most
its maximum-key edge may be cut.  :func:`solve_contracted` runs Kruskal
on the contracted instance M'' (path sets weighted by their maxima, plus
the new edges) and emits the cut/link decisions.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.dsu import DisjointSet
from repro.graphs.graph import normalize

#: Total-order key of a graph edge: (weight, u, v).
EdgeKey = Tuple[float, int, int]
#: A parent-edge interval; tour roots use the sentinel (-1, size).
Interval = Tuple[int, int]


@dataclass(frozen=True)
class AnchorInfo:
    """Broadcast record for one A∪B vertex: its tour and parent interval."""

    vertex: int
    tour: int
    interval: Interval

    @property
    def is_root(self) -> bool:
        return self.interval[0] < 0


def below(p_in: int, e_labels: Interval) -> bool:
    """Is a vertex with parent-entry time ``p_in`` below edge ``e_labels``?"""
    return e_labels[0] <= p_in <= e_labels[1]


def in_m_prime(
    e_labels: Interval, a_entries: Sequence[int], assume_sorted: bool = False
) -> bool:
    """Steiner-tree membership for one MST edge of an affected tour.

    ``a_entries`` are the p_in values of *all* the tour's A-vertices
    (roots contribute -1, never below any edge).  Pass
    ``assume_sorted=True`` when the list is already ascending (the
    protocols keep it sorted) to skip the defensive sort.
    """
    entries = a_entries if assume_sorted else sorted(a_entries)
    n = len(entries)
    if n < 2:
        return False
    cnt = bisect_right(entries, e_labels[1]) - bisect_left(entries, e_labels[0])
    return 1 <= cnt <= n - 1


@dataclass(frozen=True)
class PathSet:
    """One decomposition set, keyed for the distributed max-query.

    ``kind`` is "chain" (the path from ``child`` up to the real anchor
    ``parent``) or "pair" (the two arms of top-level anchors ``child`` and
    ``parent`` meeting at the tour's topmost Steiner bend).
    """

    tour: int
    kind: str
    child: AnchorInfo
    parent: AnchorInfo

    @property
    def query_id(self) -> Tuple[int, int]:
        if self.kind == "pair":
            return (self.tour, min(self.child.interval[0], self.parent.interval[0]))
        return (self.tour, self.child.interval[0])

    @property
    def h_edge(self) -> Tuple[int, int]:
        """The M'' edge this set contracts to (anchor vertex pair)."""
        return (self.child.vertex, self.parent.vertex)

    def matches_interval(self, e_labels: Interval) -> bool:
        """The interval half of membership (assumes e is known to be in M')."""
        if self.kind == "pair":
            return below(self.child.interval[0], e_labels) or below(
                self.parent.interval[0], e_labels
            )
        return self.parent.interval[0] < e_labels[0] and below(
            self.child.interval[0], e_labels
        )

    def contains_edge(
        self, e_labels: Interval, a_entries: Sequence[int],
        assume_sorted: bool = False,
    ) -> bool:
        """Is MST edge ``e_labels`` (of this tour) a member of this set?"""
        if not in_m_prime(e_labels, a_entries, assume_sorted):
            return False
        return self.matches_interval(e_labels)


def build_paths(
    anchors: Sequence[AnchorInfo],
    a_entries_by_tour: Dict[int, List[int]],
) -> List[PathSet]:
    """Construct the T-edges (path sets) from the broadcast anchors.

    ``a_entries_by_tour[t]`` lists the p_in values of A_t (anchors in A
    only, not B).  Deterministic given identical inputs, so every machine
    derives the same list.
    """
    by_tour: Dict[int, List[AnchorInfo]] = {}
    for a in anchors:
        by_tour.setdefault(a.tour, []).append(a)
    paths: List[PathSet] = []
    for tour in sorted(by_tour):
        group = sorted(by_tour[tour], key=lambda a: (a.interval[0], -a.interval[1]))
        a_entries = a_entries_by_tour.get(tour, [])
        top_level: List[AnchorInfo] = []
        for child in group:
            # Smallest anchor interval strictly containing the child's.
            best: Optional[AnchorInfo] = None
            for cand in group:
                if cand.vertex == child.vertex:
                    continue
                lo, hi = cand.interval
                if lo <= child.interval[0] and child.interval[1] <= hi:
                    if best is None or (lo, -hi) > (best.interval[0], -best.interval[1]):
                        best = cand
            if best is None:
                top_level.append(child)
                continue
            if not child.is_root and in_m_prime(child.interval, a_entries):
                paths.append(PathSet(tour, "chain", child, best))
        # Top-level anchors whose own parent edge is in M' meet at the
        # tour's topmost Steiner bend; there are either 0 or exactly 2.
        live_top = [
            c for c in top_level if not c.is_root and in_m_prime(c.interval, a_entries)
        ]
        if len(live_top) == 2:
            c1, c2 = sorted(live_top, key=lambda a: a.interval[0])
            paths.append(PathSet(tour, "pair", c1, c2))
        elif len(live_top) > 2:
            raise AssertionError(
                f"tour {tour}: {len(live_top)} top-level M'-anchors; "
                "the Steiner structure guarantees at most 2"
            )
    return paths


@dataclass
class ContractionDecision:
    """Output of the contracted-MSF computation."""

    cuts: List[Tuple[int, int]]  # MST edges to remove
    links: List[Tuple[int, int, float]]  # new edges entering the MST
    rejected: List[Tuple[int, int, float]]  # new edges kept as plain graph edges


def solve_contracted(
    paths: Sequence[PathSet],
    path_max: Dict[Tuple[int, int], Optional[Tuple[EdgeKey, int, int]]],
    new_edges: Sequence[Tuple[int, int, float]],
) -> ContractionDecision:
    """Kruskal over the contracted instance M'' (Figure 3's right side).

    ``path_max[qid]`` is the max-query answer for that path set: (edge
    key, u, v) of the heaviest MST edge in the set.  Path sets enter with
    their max key (removing any other edge of the set would be worse),
    new edges with their own key.  A path set losing means its max edge
    is cut; a new edge winning means it is linked.
    """
    items: List[Tuple[EdgeKey, int, Tuple]] = []
    for p in paths:
        ans = path_max.get(p.query_id)
        if ans is None:
            raise ValueError(f"no max answer for path set {p.query_id}")
        key, mu, mv = ans
        items.append((key, 0, (p.h_edge[0], p.h_edge[1], mu, mv)))
    for (u, v, w) in new_edges:
        u, v = normalize(u, v)
        items.append(((w, u, v), 1, (u, v, w)))
    items.sort()

    dsu = DisjointSet()
    decision = ContractionDecision(cuts=[], links=[], rejected=[])
    for key, kind, payload in items:
        if kind == 0:
            child, parent, mu, mv = payload
            if not dsu.union(child, parent):
                decision.cuts.append(normalize(mu, mv))
        else:
            u, v, w = payload
            if dsu.union(u, v):
                decision.links.append((u, v, w))
            else:
                decision.rejected.append((u, v, w))
    return decision
