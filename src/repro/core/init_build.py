"""Initialisation (Theorem 5.8): distributed Borůvka + batched Euler build.

Two modes:

* ``distributed`` — the real protocol: Borůvka phases whose per-component
  min-queries are batched through :func:`repro.comm.aggregate.batched_queries`
  and whose chosen edges are linked into the Euler structure k at a time
  with :func:`repro.core.scripts.run_structural_batch`.  Measured cost is
  O(n/k + log n) rounds (bench T5.8).
* ``free`` — oracle bootstrap: compute the MSF and tour labels centrally
  and install them without charging the ledger.  Benches that study
  *update* cost use this so initialisation does not pollute their
  ledgers; correctness tests use both and compare.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.comm.aggregate import batched_queries
from repro.core.scripts import run_structural_batch
from repro.core.state import MachineState
from repro.euler.tour import ETEdge, EulerForest
from repro.graphs.dsu import DisjointSet
from repro.graphs.graph import Edge, WeightedGraph
from repro.graphs.mst import kruskal_msf
from repro.perf.config import fast_path_enabled
from repro.sim.message import WORDS_EDGE
from repro.sim.network import Network
from repro.sim.partition import VertexPartition


def make_states(
    graph: WeightedGraph,
    vp: VertexPartition,
    net: Network,
) -> Tuple[List[MachineState], int]:
    """Install the partitioned graph on the machines (no communication:
    the model hands each machine its vertices' edges at time zero).

    Every vertex starts as its own singleton tour with tour id = vertex
    id; the replicated fresh-tour counter starts just above.
    """
    states = [
        MachineState(m, vp.vertices_of[m], machine=net.machines[m]) for m in range(net.k)
    ]
    for e in graph.edges():
        for m in vp.edge_machines(e.u, e.v):
            states[m].store_graph_edge(e.u, e.v, e.weight)
    for st in states:
        for x in st.tracked:
            st.tour_of[x] = x
            st.tour_size[x] = 0
        st.refresh_gauges()
    next_tour_id = max(graph.vertices(), default=-1) + 1
    return states, next_tour_id


def distributed_init(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    vertices: Sequence[int],
    next_tour_id: int,
) -> Tuple[Set[Edge], int]:
    """Borůvka + batched Euler construction; returns (MSF edges, counter)."""
    if fast_path_enabled():
        from repro.perf.init_columnar import distributed_init_columnar

        return distributed_init_columnar(
            net, vp, states, vertices, next_tour_id
        )
    recorder = net.ledger.recorder
    if recorder is not None:
        recorder.on_engine("init_build", "scalar")
    k = net.k
    dsu = DisjointSet(vertices)
    msf: Set[Edge] = set()
    with net.ledger.phase("init"):
        while True:
            roots = sorted({dsu.find(v) for v in vertices})
            if len(roots) <= 1:
                break
            per_query: Dict[int, List[Optional[Tuple]]] = {r: [None] * k for r in roots}
            for st in states:
                best: Dict[int, Tuple] = {}
                for (u, v), w in st.graph_edges.items():
                    ru, rv = dsu.find(u), dsu.find(v)
                    if ru == rv:
                        continue
                    cand = ((w, u, v), u, v)
                    for r in (ru, rv):
                        if r in per_query and (r not in best or cand < best[r]):
                            best[r] = cand
                for r, cand in best.items():
                    per_query[r][st.mid] = cand
            answers = batched_queries(net, per_query, min, words=WORDS_EDGE)
            chosen: List[Edge] = []
            for r in sorted(answers):
                ans = answers[r]
                if ans is None:
                    continue
                (wk, u, v) = ans[0], ans[1], ans[2]
                if dsu.union(u, v):
                    chosen.append(Edge(u, v, wk[0]))
            if not chosen:
                break
            msf.update(chosen)
            # Link the new forest edges k at a time (Lemma 5.9).
            chosen.sort(key=lambda e: e.key())
            for base in range(0, len(chosen), k):
                chunk = chosen[base : base + k]
                next_tour_id = run_structural_batch(
                    net,
                    vp,
                    states,
                    cuts=[],
                    links=[(e.u, e.v, e.weight) for e in chunk],
                    next_tour_id=next_tour_id,
                )
    return msf, next_tour_id


def free_init(
    graph: WeightedGraph,
    vp: VertexPartition,
    states: Sequence[MachineState],
    next_tour_id: int,
) -> Tuple[Set[Edge], int]:
    """Oracle bootstrap: install MSF labels centrally, charging nothing."""
    msf = kruskal_msf(graph)
    ef = EulerForest.build(graph.vertices(), msf)
    # Re-id the oracle's tours so they extend the replicated counter:
    # oracle tour t -> next_tour_id + t.
    offset = next_tour_id
    remap = {t: offset + t for t in ef.tour_size}

    # Min-key incident MST edge per vertex, computed once: the witness
    # fallback below would otherwise rescan every oracle edge for every
    # tracked neighbour on every machine (O(tracked · |MSF|)).
    best_incident: Dict[int, ETEdge] = {}
    for e in ef.edges.values():
        for x in (e.u, e.v):
            cur = best_incident.get(x)
            if cur is None or e.key < cur.key:
                best_incident[x] = e

    for st in states:
        for (u, v), w in st.graph_edges.items():
            ete = ef.edges.get((u, v))
            if ete is not None:
                st.add_mst_edge(
                    ETEdge(ete.u, ete.v, ete.weight, ete.t_uv, ete.t_vu, remap[ete.tour])
                )
        st.tour_size = {}
        for x in st.tracked:
            tid = remap[ef.tour_of[x]]
            st.tour_of[x] = tid
            st.tour_size[tid] = ef.tour_size[ef.tour_of[x]]
        for x in st.tracked:
            if x in st.vertices:
                st.witness[x] = st.pick_witness(x)
            else:
                # Any incident MST edge this machine happens to hold; if
                # none, copy from the oracle (the home machine would have
                # broadcast it during a real init).
                e = best_incident.get(x)
                if e is not None:
                    st.witness[x] = ETEdge(e.u, e.v, e.weight, e.t_uv, e.t_vu, remap[e.tour])
                else:
                    st.witness[x] = None
        st.refresh_gauges()
    return set(msf), offset + (max(ef.tour_size, default=-1) + 1)
