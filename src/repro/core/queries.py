"""Read-only query protocols over the maintained structure.

The dynamic MST is only useful if the cluster can *ask it things* without
rebuilding: these are the O(1)-round query protocols the Euler labels
make possible.

* connectivity — u and v are connected iff their tour ids agree; one
  converge-cast of two ids (Italiano et al.'s dynamic-connectivity
  query, answered from the exact structure);
* batched connectivity — q queries collate round-robin, O(q/k + 1)
  rounds (the same schedule as §6.1 step 6);
* path maximum (bottleneck edge) — the heaviest MST edge between u and
  v, via the Lemma 5.4 interval predicate, one max-query;
* forest weight / component count — single converge-casts over machine-
  local aggregates (each MST edge contributes from its smaller-id home
  machine only, so nothing is double counted).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.aggregate import batched_queries, global_max, global_sum
from repro.core.state import MachineState
from repro.errors import ProtocolError
from repro.graphs.graph import normalize
from repro.sim.message import WORDS_EDGE, WORDS_ID, Message
from repro.sim.network import Network
from repro.sim.partition import VertexPartition


def connectivity_query(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    u: int,
    v: int,
) -> bool:
    """Are u and v in the same tree?  O(1) rounds."""
    return batch_connectivity(net, vp, states, [(u, v)])[(normalize(u, v))]


def batch_connectivity(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    pairs: Sequence[Tuple[int, int]],
) -> Dict[Tuple[int, int], bool]:
    """Resolve q connectivity queries in O(q/k + 1) rounds.

    For each pair, the two home machines contribute their vertex's tour
    id; the collation machine compares.  Results are returned to the
    caller (a real deployment would route each answer to the asking
    machine — same cost).
    """
    qpairs = [normalize(u, v) for (u, v) in pairs]
    per_query: Dict[Tuple[int, int], List[Optional[Tuple[int, int]]]] = {}
    for (u, v) in qpairs:
        vals: List[Optional[Tuple[int, int]]] = [None] * net.k
        for x in (u, v):
            home = vp.home(x)
            tid = states[home].tour_of.get(x)
            if tid is None:
                raise ProtocolError(f"machine {home}: unknown tour for {x}")
            prev = vals[home]
            vals[home] = (prev[0], tid) if prev is not None else (tid, tid) if u == v else (tid, -1)
        per_query[(u, v)] = vals
    # Collate: collect the (≤ 2) contributed tour ids and compare.
    def combine(contribs: List[Tuple[int, int]]) -> bool:
        tids = []
        for c in contribs:
            tids.extend(x for x in c if x != -1)
        return len(set(tids)) == 1

    # Rebuild per-query values in the shape batched_queries expects: one
    # value per machine; a machine hosting both endpoints contributes a
    # complete pair, one hosting a single endpoint contributes (tid, -1).
    answers = batched_queries(net, per_query, combine, words=WORDS_ID * 2)
    return {q: bool(a) for q, a in answers.items()}


def path_max_query(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    u: int,
    v: int,
) -> Optional[Tuple[float, int, int]]:
    """The bottleneck (heaviest) MST edge on the u–v tree path.

    Returns (weight, a, b) or None if u, v are disconnected or equal.
    O(1) rounds: one interval broadcast per endpoint plus one max-query;
    uses the root-path XOR characterization of Lemma 5.4, so no physical
    reroot is needed.
    """
    u, v = normalize(u, v)
    if u == v:
        return None
    hu, hv = vp.home(u), vp.home(v)
    tu, tv = states[hu].tour_of.get(u), states[hv].tour_of.get(v)
    if tu != tv or tu is None:
        # Tour ids are exchanged in one superstep.
        net.superstep([Message(hu, hv, ("tid", tu), WORDS_ID)] if hu != hv else [])
        if tu != tv:
            return None
    iu = states[hu].parent_interval(u)
    iv = states[hv].parent_interval(v)
    # Broadcast both parent intervals (roots broadcast a sentinel).
    for home, interval in ((hu, iu), (hv, iv)):
        net.broadcast(home, ("interval", interval), WORDS_ID * 2)

    def on_path(labels: Tuple[int, int]) -> bool:
        def contains(outer, inner_start):
            return outer[0] <= inner_start <= outer[1]
        above_u = iu is not None and contains(labels, iu[0])
        above_v = iv is not None and contains(labels, iv[0])
        return above_u != above_v

    locals_: List[Optional[Tuple]] = []
    for st in states:
        best = None
        for ete in st.mst.values():
            if ete.tour == tu and on_path(ete.labels()):
                cand = (ete.key, ete.u, ete.v)
                if best is None or cand > best:
                    best = cand
        locals_.append(best)
    got = global_max(net, locals_, words=WORDS_EDGE)
    if got is None:
        return None
    (w, a, b), _, _ = got
    return (w, a, b)


def forest_weight_query(
    net: Network, vp: VertexPartition, states: Sequence[MachineState]
) -> float:
    """Total MSF weight: one converge-cast of machine-local sums."""
    sums = []
    for st in states:
        s = 0.0
        for (a, b), ete in st.mst.items():
            if vp.home(a) == st.mid:  # count each edge exactly once
                s += ete.weight
        sums.append(s)
    return float(global_sum(net, sums, words=2))


def component_count_query(
    net: Network, vp: VertexPartition, states: Sequence[MachineState]
) -> int:
    """Number of trees: n minus the globally summed MST edge count."""
    counts = []
    n_vertices = 0
    for st in states:
        n_vertices += len(st.vertices)
        counts.append(
            sum(1 for (a, b) in st.mst if vp.home(a) == st.mid)
        )
    total_edges = global_sum(net, counts, words=1)
    return n_vertices - int(total_edges or 0)


def subtree_size_query(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    x: int,
    root_tour: bool = False,
) -> int:
    """Number of vertices in x's subtree (w.r.t. the current tour root).

    Pure label arithmetic on x's home machine: a subtree spanning s
    vertices occupies exactly 2s consecutive labels (its parent edge's
    closed interval), so s = (p_out - p_in + 1) / 2.  The root's subtree
    is its whole tour: (size / 2) + 1.  One broadcast of the answer.
    """
    home = vp.home(x)
    st = states[home]
    interval = st.parent_interval(x)
    if interval is None:
        tid = st.tour_of.get(x)
        size = st.tour_size.get(tid, 0)
        s = size // 2 + 1
    else:
        p_in, p_out = interval
        s = (p_out - p_in + 1) // 2
    net.broadcast(home, ("subtree", x, s), WORDS_ID * 2)
    return s


def lca_query(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    u: int,
    v: int,
) -> Optional[int]:
    """Lowest common ancestor of u and v w.r.t. the current tour root.

    Protocol: u's and v's parent intervals are broadcast (O(1)); the LCA
    is the vertex whose parent interval is the *minimal* one containing
    both entering times — each machine scans its own MST edges for the
    tightest containing interval and a min converge-cast picks the
    winner.  Returns None if u, v are in different trees; if the LCA is
    the tour root the root vertex is returned (identified by its
    outgoing value 0).
    """
    from repro.comm.aggregate import global_min

    if u == v:
        return u
    u2, v2 = normalize(u, v)
    hu, hv = vp.home(u2), vp.home(v2)
    tu, tv = states[hu].tour_of.get(u2), states[hv].tour_of.get(v2)
    if tu is None or tu != tv:
        return None
    iu = states[hu].parent_interval(u2)
    iv = states[hv].parent_interval(v2)
    if iu is None:
        return u2  # u is the root => it is the LCA
    if iv is None:
        return v2
    net.broadcast(hu, ("interval", u2, iu), WORDS_ID * 2)
    net.broadcast(hv, ("interval", v2, iv), WORDS_ID * 2)
    lo, hi = min(iu[0], iv[0]), max(iu[1], iv[1])

    locals_: List[Optional[Tuple[int, int]]] = []
    for st in states:
        best: Optional[Tuple[int, int]] = None
        for ete in st.mst.values():
            if ete.tour != tu:
                continue
            e_in, e_out = ete.labels()
            if e_in <= lo and hi <= e_out:
                width = e_out - e_in
                head = ete.head_at(e_in)  # the vertex this edge parents
                cand = (width, head)
                if best is None or cand < best:
                    best = cand
        locals_.append(best)
    got = global_min(net, locals_, words=WORDS_ID * 2)
    if got is not None:
        return got[1]
    # No containing edge: the LCA is the tour root itself.  Its home can
    # be identified by the outgoing value 0; one more converge-cast.
    roots: List[Optional[int]] = []
    for st in states:
        r = None
        for ete in st.mst.values():
            if ete.tour == tu and ete.e_min == 0:
                r = ete.tail_at(0)
        roots.append(r)
    return global_min(net, roots, words=WORDS_ID)
