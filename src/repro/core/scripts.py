"""The k-way structural-update engine (Lemma 5.9).

A *structural batch* is an ordered set of MST edge cuts followed by an
ordered set of MST edge links (both cycle-free).  The protocol:

1. For every cut, the home machine of the edge broadcasts the edge's
   Euler snapshot and its tour size; for every link, the home machines of
   the two endpoints broadcast an outgoing value, tour id and tour size.
   All O(k) broadcasts go through the Rerouting Lemma → O(1) rounds.
2. Every machine deterministically builds the same *script*: the sequence
   of :class:`~repro.euler.labels.SplitSpec` / ``JoinSpec`` with fresh
   tour ids from a replicated counter.  Because the broadcast parameters
   were collected *before* any update is applied, the script builder
   cascades every produced spec onto the parameters of the later updates
   ("each machine can keep track of these values, and update them as
   necessary throughout the process", Lemma 5.9).
3. Each machine applies the script to its local labels, witnesses and
   tour bookkeeping — pure local computation.
4. Endpoints of cut edges re-broadcast fresh witnesses (O(k) broadcasts →
   O(1) rounds), exactly the "additional work ... completed if edges are
   deleted" of the lemma.

Links are parameterised *after* cuts are applied, which is why a batch is
two homogeneous phases; §6's protocols always produce cut-then-link
batches, matching Lemma 5.9's homogeneous statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.rerouting import scheduled_broadcasts
from repro.errors import ProtocolError
from repro.euler.labels import (
    JoinSpec,
    SplitSpec,
    join_m1_label,
    join_m2_label,
    split_label,
)
from repro.euler.tour import ETEdge
from repro.core.state import MachineState
from repro.graphs.graph import normalize
from repro.perf import config as _perf_config
from repro.perf.config import fast_path_enabled
from repro.sim.message import WORDS_ET_EDGE, WORDS_ID
from repro.sim.network import Network
from repro.sim.partition import VertexPartition


# ----------------------------------------------------------------------
# script steps
# ----------------------------------------------------------------------
@dataclass
class CutStep:
    """One cut in application-time coordinates."""

    edge: Tuple[int, int]
    snapshot: ETEdge  # the cut edge's labels at the moment it is applied
    spec: SplitSpec


@dataclass
class LinkStep:
    """One link in application-time coordinates."""

    edge: Tuple[int, int]
    weight: float
    spec: JoinSpec


class _CutParam:
    """Mutable working copy of one cut's broadcast parameters."""

    def __init__(self, u: int, v: int, snapshot: ETEdge, size: int) -> None:
        self.u, self.v = u, v
        self.ete = snapshot
        self.size = size

    def cascade(self, spec: SplitSpec) -> None:
        if self.ete.tour != spec.old_tour:
            return
        t1, l1 = split_label(self.ete.t_uv, spec)
        t2, l2 = split_label(self.ete.t_vu, spec)
        if t1 != t2:
            raise ProtocolError("cut edge straddles a split; labels corrupt")
        self.ete.t_uv, self.ete.t_vu, self.ete.tour = l1, l2, t1
        self.size = spec.inside_size if t1 == spec.inside_tour else spec.root_side_size


class _LinkParam:
    """Mutable working copy of one link's broadcast parameters.

    Side 1 belongs to the smaller endpoint u, side 2 to v (u < v); M1
    absorbs M2 per Lemma 5.7.
    """

    def __init__(
        self,
        u: int,
        v: int,
        weight: float,
        a: int,
        tour1: int,
        size1: int,
        b: int,
        tour2: int,
        size2: int,
    ) -> None:
        self.u, self.v, self.weight = u, v, weight
        self.a, self.tour1, self.size1 = a, tour1, size1
        self.b, self.tour2, self.size2 = b, tour2, size2

    def _cascade_side(self, label: int, tour: int, size: int, spec: JoinSpec
                      ) -> Tuple[int, int, int]:
        if tour == spec.tour1:
            if spec.size1 == 0:
                # A singleton M1: its sole vertex's outgoing value in the
                # merged tour is 0 (the new edge departs it at time 0).
                return 0, spec.tour1, spec.new_size
            return join_m1_label(label, spec), spec.tour1, spec.new_size
        if tour == spec.tour2:
            if spec.size2 == 0:
                # A singleton M2: its vertex departs at a + 1.
                return spec.a + 1, spec.tour1, spec.new_size
            return join_m2_label(label, spec), spec.tour1, spec.new_size
        return label, tour, size

    def cascade(self, spec: JoinSpec) -> None:
        self.a, self.tour1, self.size1 = self._cascade_side(
            self.a, self.tour1, self.size1, spec
        )
        self.b, self.tour2, self.size2 = self._cascade_side(
            self.b, self.tour2, self.size2, spec
        )
        if self.tour1 == self.tour2:
            raise ProtocolError(
                f"links are not a forest: ({self.u},{self.v}) now closes a cycle"
            )


# ----------------------------------------------------------------------
# script construction (pure; identical on every machine)
# ----------------------------------------------------------------------
def build_cut_script(
    params: Sequence[_CutParam], next_tour_id: int
) -> Tuple[List[CutStep], int]:
    steps: List[CutStep] = []
    work = list(params)
    for i, p in enumerate(work):
        spec = SplitSpec(
            e_min=p.ete.e_min,
            e_max=p.ete.e_max,
            size=p.size,
            old_tour=p.ete.tour,
            inside_tour=next_tour_id,
        )
        next_tour_id += 1
        steps.append(CutStep(edge=(p.u, p.v), snapshot=p.ete, spec=spec))
        for q in work[i + 1 :]:
            q.cascade(spec)
    return steps, next_tour_id


def build_link_script(params: Sequence[_LinkParam]) -> List[LinkStep]:
    steps: List[LinkStep] = []
    work = list(params)
    for i, p in enumerate(work):
        if p.tour1 == p.tour2:
            raise ProtocolError(f"link ({p.u},{p.v}) would close a cycle")
        spec = JoinSpec(
            a=p.a, b=p.b, size1=p.size1, size2=p.size2, tour1=p.tour1, tour2=p.tour2
        )
        steps.append(LinkStep(edge=(p.u, p.v), weight=p.weight, spec=spec))
        for q in work[i + 1 :]:
            q.cascade(spec)
    return steps


# ----------------------------------------------------------------------
# per-machine application (pure local computation)
# ----------------------------------------------------------------------
def _transform_cut(ete: ETEdge, spec: SplitSpec) -> None:
    if ete.tour != spec.old_tour:
        return
    t1, l1 = split_label(ete.t_uv, spec)
    t2, l2 = split_label(ete.t_vu, spec)
    if t1 != t2:
        raise ProtocolError("edge straddles a split; labels corrupt")
    ete.t_uv, ete.t_vu, ete.tour = l1, l2, t1


def _transform_link(ete: ETEdge, spec: JoinSpec) -> None:
    if ete.tour == spec.tour1:
        ete.t_uv = join_m1_label(ete.t_uv, spec)
        ete.t_vu = join_m1_label(ete.t_vu, spec)
    elif ete.tour == spec.tour2:
        ete.t_uv = join_m2_label(ete.t_uv, spec)
        ete.t_vu = join_m2_label(ete.t_vu, spec)
        ete.tour = spec.tour1


def apply_cut_step(state: MachineState, step: CutStep) -> None:
    spec = step.spec
    cut_key = normalize(*step.edge)

    # 1. Decide sides for tracked vertices of the split tour *before*
    #    relabelling anything (everything is still in old coordinates).
    new_tours: Dict[int, Optional[int]] = {}
    for x in state.tracked:
        if state.tour_of.get(x) != spec.old_tour:
            continue
        w = state.witness.get(x)
        if w is not None and normalize(w.u, w.v) == cut_key:
            inside = step.snapshot.head_at(spec.e_min) == x
        elif w is not None:
            inside = spec.e_min < w.e_min and w.e_max < spec.e_max
        elif x in state.vertices:
            w2 = state.pick_witness(x)
            if w2 is None:
                raise ProtocolError(
                    f"machine {state.mid}: owned vertex {x} in tour "
                    f"{spec.old_tour} has no incident MST edge"
                )
            if normalize(w2.u, w2.v) == cut_key:
                inside = step.snapshot.head_at(spec.e_min) == x
            else:
                inside = spec.e_min < w2.e_min and w2.e_max < spec.e_max
        else:
            new_tours[x] = None  # unknown until the repair broadcast
            continue
        new_tours[x] = spec.inside_tour if inside else spec.old_tour

    # 2. Remove the cut edge; invalidate witnesses that pointed at it.
    state.pop_mst_edge(*cut_key)
    for x, w in state.witness.items():
        if w is not None and normalize(w.u, w.v) == cut_key:
            state.witness[x] = None

    # 3. Relabel surviving MST edges and witnesses of the split tour
    #    (tour-indexed: only the split tour's edges are touched).
    for key in state.mst_keys_in_tour(spec.old_tour):
        ete = state.mst[key]
        _transform_cut(ete, spec)
        state.retour_mst_edge(key, spec.old_tour, ete.tour)
    for w in state.witness.values():
        if w is not None:
            _transform_cut(w, spec)

    # 4. Tour bookkeeping.
    state.tour_size[spec.old_tour] = spec.root_side_size
    state.tour_size[spec.inside_tour] = spec.inside_size
    for x, tid in new_tours.items():
        state.tour_of[x] = tid

    # 5. Owned endpoints whose witness died can re-pick locally for free.
    for x in cut_key:
        if (
            x in state.vertices
            and state.witness.get(x) is None
            and state.tour_of.get(x) is not None
        ):
            state.witness[x] = state.pick_witness(x)
    state.refresh_gauges()


def apply_link_step(state: MachineState, step: LinkStep) -> None:
    spec = step.spec
    u, v = step.edge
    lab_in, lab_out = spec.new_edge_labels

    # 1. Relabel existing MST edges and witnesses (tour-indexed).
    for tid in (spec.tour1, spec.tour2):
        for key in state.mst_keys_in_tour(tid):
            ete = state.mst[key]
            _transform_link(ete, spec)
            state.retour_mst_edge(key, tid, ete.tour)
    for w in state.witness.values():
        if w is not None:
            _transform_link(w, spec)

    # 2. Materialize the new edge if this machine hosts an endpoint.
    new_ete = ETEdge(u, v, step.weight, lab_in, lab_out, spec.tour1)
    if u in state.vertices or v in state.vertices:
        state.add_mst_edge(ETEdge(u, v, step.weight, lab_in, lab_out, spec.tour1))

    # 3. Tour bookkeeping: M2 dissolves into M1.
    for x in state.tracked:
        if state.tour_of.get(x) == spec.tour2:
            state.tour_of[x] = spec.tour1
    state.tour_size[spec.tour1] = spec.new_size
    state.tour_size.pop(spec.tour2, None)

    # 4. Endpoint witnesses: a previously-isolated endpoint now has an edge.
    for x in (u, v):
        if x in state.tracked and state.witness.get(x) is None:
            state.witness[x] = ETEdge(
                new_ete.u, new_ete.v, new_ete.weight, new_ete.t_uv, new_ete.t_vu, new_ete.tour
            )
    state.refresh_gauges()


# ----------------------------------------------------------------------
# the full protocol
# ----------------------------------------------------------------------
def _collect_cut_params(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    cuts: Sequence[Tuple[int, int]],
) -> List[_CutParam]:
    ordered = sorted(normalize(u, v) for (u, v) in cuts)
    reqs = []
    for (u, v) in ordered:
        src = vp.home(u)
        st = states[src]
        ete = st.mst.get((u, v))
        if ete is None:
            raise ProtocolError(f"cut ({u},{v}) is not an MST edge on machine {src}")
        size = st.tour_size[ete.tour]
        reqs.append((src, ("cutp", u, v, ete.snapshot(), size), WORDS_ET_EDGE + 1))
    got = scheduled_broadcasts(net, reqs)
    params = []
    for _src, (_tag, u, v, snap, size) in got:
        params.append(_CutParam(u, v, ETEdge.from_snapshot(list(snap)), size))
    return params


def _collect_link_params(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    links: Sequence[Tuple[int, int, float]],
) -> List[_LinkParam]:
    ordered = sorted((normalize(u, v) + (w,)) for (u, v, w) in links)
    reqs = []
    for (u, v, w) in ordered:
        for x in (u, v):
            src = vp.home(x)
            st = states[src]
            tid = st.tour_of.get(x)
            if tid is None:
                raise ProtocolError(f"machine {src}: unknown tour for owned vertex {x}")
            size = st.tour_size.get(tid)
            if size is None:
                raise ProtocolError(f"machine {src}: unknown size for tour {tid}")
            out = st.outgoing_value(x)
            reqs.append(
                (src, ("linkp", u, v, w, x, out if out is not None else 0, tid, size),
                 WORDS_ID * 5)
            )
    got = scheduled_broadcasts(net, reqs)
    halves: Dict[Tuple[int, int, float], Dict[int, Tuple[int, int, int]]] = {}
    for _src, (_tag, u, v, w, x, out, tid, size) in got:
        halves.setdefault((u, v, w), {})[x] = (out, tid, size)
    params = []
    for (u, v, w) in ordered:
        h = halves[(u, v, w)]
        a, t1, s1 = h[u]
        b, t2, s2 = h[v]
        params.append(_LinkParam(u, v, w, a, t1, s1, b, t2, s2))
    return params


def _repair_witnesses(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    vertices: Sequence[int],
) -> None:
    """Endpoints of cut edges re-broadcast fresh witnesses (Lemma 5.9 tail)."""
    reqs = []
    for x in sorted(set(vertices)):
        src = vp.home(x)
        st = states[src]
        w = st.witness.get(x)
        if w is None:
            w = st.pick_witness(x)
            st.witness[x] = w
        tid = st.tour_of.get(x)
        snap = w.snapshot() if w is not None else None
        reqs.append((src, ("repair", x, snap, tid), WORDS_ET_EDGE + 1))
    got = scheduled_broadcasts(net, reqs)
    for _src, (_tag, x, snap, tid) in got:
        for st in states:
            if x in st.tracked:
                st.witness[x] = ETEdge.from_snapshot(list(snap)) if snap is not None else None
                st.tour_of[x] = tid


def estimate_batch_rows(
    states: Sequence[MachineState],
    cuts: Sequence[Tuple[int, int]],
    links: Sequence[Tuple[int, int, float]],
) -> int:
    """Estimate the rows a columnar batch would pack (harness-side).

    The columnar engine packs every machine's MST-edge rows in the tours
    the batch touches, so the estimate sums the locally-known sizes of
    those tours across machines.  Both engines are wire-identical, so
    the estimate steers local cost only — it can never change a ledger.
    """
    endpoints = {x for (u, v) in cuts for x in (u, v)}
    endpoints.update(x for (u, v, _w) in links for x in (u, v))
    tours = set()
    for st in states:
        for x in endpoints:
            t = st.tour_of.get(x)
            if t is not None:
                tours.add(t)
    return sum(st.tour_size.get(t, 0) for st in states for t in tours)


def run_structural_batch(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    cuts: Sequence[Tuple[int, int]],
    links: Sequence[Tuple[int, int, float]],
    next_tour_id: int,
) -> int:
    """Apply cycle-free cuts then links across all machines (Lemma 5.9).

    Returns the advanced replicated tour-id counter.  Cost: O(|cuts| +
    |links|) broadcasts in O(1) dependency sets → O((|cuts|+|links|)/k + 1)
    rounds, measured on ``net.ledger``.

    Dispatch is adaptive: the columnar engine pays a fixed pack/scatter
    cost per batch, so batches whose estimated affected slice is under
    ``UPDATE_MIN_ROWS`` run the scalar per-edge loops instead (same
    wire, same ledger — only the local arithmetic differs).
    """
    if fast_path_enabled() and (
        estimate_batch_rows(states, cuts, links) >= _perf_config.UPDATE_MIN_ROWS
    ):
        from repro.perf.columnar import run_structural_batch_columnar

        return run_structural_batch_columnar(
            net, vp, states, cuts, links, next_tour_id
        )
    recorder = net.ledger.recorder
    if recorder is not None and (cuts or links):
        recorder.on_engine("structural_batch", "scalar")
    if cuts:
        params = _collect_cut_params(net, vp, states, cuts)
        script, next_tour_id = build_cut_script(params, next_tour_id)
        for st in states:
            for step in script:
                apply_cut_step(st, step)
        endpoints = [x for (u, v) in cuts for x in (u, v)]
        _repair_witnesses(net, vp, states, endpoints)
    if links:
        params = _collect_link_params(net, vp, states, links)
        script = build_link_script(params)
        for st in states:
            for step in script:
                apply_link_step(st, step)
    return next_tour_id
