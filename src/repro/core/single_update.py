"""One-at-a-time updates (§5.4, Theorem 5.1).

These are the simpler single-update algorithms — kept distinct from the
batch protocols both for fidelity and as the baseline the batch bench
compares against (processing a size-b batch as b single updates costs
Θ(b) rounds; the batch algorithm costs O(1)).

* addition: reroot the tour to u (Lemma 5.5), broadcast v's parent
  interval, run one global max-query over the path predicate of
  Lemma 5.4, swap if the new edge is lighter;
* deletion: broadcast the cut edge's labels, classify every vertex with
  the witness rule of §5.4.2 (Lemma 5.2 + direction tie-breaks), run one
  global min-query over the crossing edges, reconnect.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.comm.aggregate import global_max, global_min
from repro.core.scripts import _repair_witnesses, run_structural_batch
from repro.core.state import MachineState
from repro.errors import InconsistentUpdate
from repro.euler.labels import reroot_label
from repro.euler.predicates import side_of_cut
from repro.euler.tour import ETEdge
from repro.graphs.graph import normalize
from repro.perf.config import fast_path_enabled
from repro.sim.message import WORDS_EDGE, WORDS_ET_EDGE, WORDS_ID, WORDS_UPDATE
from repro.sim.network import Network
from repro.sim.partition import VertexPartition


def run_reroot(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    x: int,
) -> None:
    """Reroot x's tour to x (Lemma 5.5): one broadcast, local shifts."""
    home = states[vp.home(x)]
    tid = home.tour_of[x]
    size = home.tour_size.get(tid, 0)
    if size == 0:
        return
    d = home.outgoing_value(x)
    net.broadcast(vp.home(x), ("reroot", tid, d), WORDS_ID * 2)
    if fast_path_enabled():
        from repro.perf.columnar import reroot_machine_labels

        for st in states:
            reroot_machine_labels(st, tid, d, size)
    else:
        for st in states:
            for ete in st.mst.values():
                if ete.tour == tid:
                    ete.t_uv = reroot_label(ete.t_uv, d, size)
                    ete.t_vu = reroot_label(ete.t_vu, d, size)
            for w in st.witness.values():
                if w is not None and w.tour == tid:
                    w.t_uv = reroot_label(w.t_uv, d, size)
                    w.t_vu = reroot_label(w.t_vu, d, size)


def single_add(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    u: int,
    v: int,
    w: float,
    next_tour_id: int,
) -> Tuple[int, Dict[str, int]]:
    """Insert one edge and restore the MST in O(1) rounds (§5.4.1)."""
    u, v = normalize(u, v)
    home_u = states[vp.home(u)]
    if home_u.hosts_edge(u, v):
        raise InconsistentUpdate(f"edge ({u},{v}) already present")
    net.broadcast(vp.home(u), ("add", u, v, w), WORDS_UPDATE)
    for m in vp.edge_machines(u, v):
        states[m].store_graph_edge(u, v, w)

    same_tour = home_u.tour_of[u] == states[vp.home(v)].tour_of[v]
    if not same_tour:
        next_tour_id = run_structural_batch(
            net, vp, states, cuts=[], links=[(u, v, w)], next_tour_id=next_tour_id
        )
        _repair_witnesses(net, vp, states, [u, v])
        return next_tour_id, {"kind": 1, "swapped": 1}

    # Cycle case: find the heaviest MST edge on the u–v path.
    run_reroot(net, vp, states, u)
    home_v = states[vp.home(v)]
    interval = home_v.parent_interval(v)
    assert interval is not None, "v is in u's tour and u is now the root"
    tid = home_v.tour_of[v]
    net.broadcast(vp.home(v), ("parent", tid, interval), WORDS_ID * 3)
    p_in, p_out = interval

    locals_: list = []
    for st in states:
        best = None
        for ete in st.mst.values():
            if ete.tour == tid and ete.e_min <= p_in and ete.e_max >= p_out:
                cand = (ete.key, ete.u, ete.v)
                if best is None or cand > best:
                    best = cand
        locals_.append(best)
    heaviest = global_max(net, locals_, words=WORDS_EDGE)
    assert heaviest is not None, "the u–v path is non-empty"
    if (w, u, v) < heaviest[0]:
        next_tour_id = run_structural_batch(
            net,
            vp,
            states,
            cuts=[normalize(heaviest[1], heaviest[2])],
            links=[(u, v, w)],
            next_tour_id=next_tour_id,
        )
        _repair_witnesses(net, vp, states, [u, v])
        return next_tour_id, {"kind": 2, "swapped": 1}
    _repair_witnesses(net, vp, states, [u, v])
    return next_tour_id, {"kind": 2, "swapped": 0}


def single_delete(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    u: int,
    v: int,
    next_tour_id: int,
) -> Tuple[int, Dict[str, int]]:
    """Delete one edge and restore the MST in O(1) rounds (§5.4.2)."""
    u, v = normalize(u, v)
    home_u = states[vp.home(u)]
    if not home_u.hosts_edge(u, v):
        raise InconsistentUpdate(f"edge ({u},{v}) not present")
    ete = home_u.mst.get((u, v))
    snap = ete.snapshot() if ete is not None else None
    net.broadcast(vp.home(u), ("delete", u, v, snap), WORDS_ET_EDGE + 1)
    for m in vp.edge_machines(u, v):
        states[m].drop_graph_edge(u, v)
    if snap is None:
        return next_tour_id, {"kind": 0, "reconnected": 0}

    cut = ETEdge.from_snapshot(list(snap))
    c_labels = cut.labels()

    # §5.4.2: classify endpoints with the witness rule, min over crossers.
    locals_: list = []
    for st in states:
        best = None
        for (x, y), wt in st.graph_edges.items():
            wx, wy = st.witness.get(x), st.witness.get(y)
            if wx is None or wy is None:
                continue
            if wx.tour != cut.tour or wy.tour != cut.tour:
                continue
            sx = side_of_cut(wx, x, c_labels)
            sy = side_of_cut(wy, y, c_labels)
            if sx != sy:
                cand = ((wt, x, y), x, y, wt)
                if best is None or cand < best:
                    best = cand
        locals_.append(best)
    lightest = global_min(net, locals_, words=WORDS_EDGE)
    links = []
    if lightest is not None:
        _key, x, y, wt = lightest
        links = [(x, y, wt)]
    next_tour_id = run_structural_batch(
        net, vp, states, cuts=[(u, v)], links=links, next_tour_id=next_tour_id
    )
    return next_tour_id, {"kind": 1, "reconnected": int(bool(links))}
