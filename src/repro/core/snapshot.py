"""Checkpointing: serialize / restore a :class:`DynamicMST`.

A long-running maintenance service needs to survive restarts without
paying the O(n/k) initialisation again.  Snapshots are plain
JSON-compatible dictionaries (no pickle): the shadow graph, the
partition, every machine's Euler state, and the replicated tour counter.
Restoring yields a structure that passes the full consistency check and
keeps absorbing batches.

Two restore modes share the per-machine record helpers:

* :func:`from_snapshot` builds a *fresh* structure with a zeroed ledger
  (a cold restart does not inherit the old run's communication bill);
* :func:`restore_into` rolls an *existing* structure back in place,
  leaving its network, ledger, recorder and fault hook untouched — the
  crash-recovery path of :mod:`repro.faults`, where every recovery round
  must keep landing on the live ledger.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.api import DynamicMST
from repro.core.state import MachineState
from repro.errors import ReproError
from repro.euler.tour import ETEdge
from repro.graphs.graph import WeightedGraph
from repro.sim.network import KMachineNetwork, MPCNetwork
from repro.sim.partition import VertexPartition

FORMAT_VERSION = 1


def machine_record(st: MachineState) -> Dict[str, Any]:
    """One machine's full Euler state as a JSON-compatible record."""
    return {
        "mid": st.mid,
        "vertices": sorted(st.vertices),
        "tracked": sorted(st.tracked),
        "graph_edges": [[u, v, w] for (u, v), w in sorted(st.graph_edges.items())],
        "mst": [list(e.snapshot()) for e in sorted(st.mst.values(), key=lambda e: (e.u, e.v))],
        "witness": {
            str(x): (list(w.snapshot()) if w is not None else None)
            for x, w in sorted(st.witness.items())
        },
        "tour_of": {str(x): t for x, t in sorted(st.tour_of.items())},
        "tour_size": {str(t): s for t, s in sorted(st.tour_size.items())},
    }


def restore_machine(mrec: Dict[str, Any], net: Any) -> MachineState:
    """Rebuild one machine's state from a :func:`machine_record` record.

    Re-registering the state against ``net.machines[mid]`` re-accounts
    its space gauges from zero — which is what a restarted incarnation
    after :meth:`~repro.sim.machine.Machine.crash_reset` needs.
    """
    st = MachineState(mrec["mid"], mrec["vertices"], machine=net.machines[mrec["mid"]])
    for x in mrec["tracked"]:
        st.track(x)
    for (u, v, w) in mrec["graph_edges"]:
        st.graph_edges[(u, v)] = w
    for e in mrec["mst"]:
        st.mst[(e[0], e[1])] = ETEdge.from_snapshot(e)
    for x, w in mrec["witness"].items():
        st.witness[int(x)] = ETEdge.from_snapshot(w) if w is not None else None
    st.tour_of = {int(x): t for x, t in mrec["tour_of"].items()}
    st.tour_size = {int(t): s for t, s in mrec["tour_size"].items()}
    st.rebuild_indexes()
    st.refresh_gauges()
    return st


def to_snapshot(dm: DynamicMST) -> Dict[str, Any]:
    """Serialize the full distributed state to a JSON-compatible dict."""
    if isinstance(dm.net, MPCNetwork):
        model = {"kind": "mpc", "space": dm.net.space}
    elif isinstance(dm.net, KMachineNetwork):
        model = {"kind": "kmachine", "words_per_round": dm.net.words_per_round}
    else:
        raise ReproError(f"cannot snapshot network type {type(dm.net).__name__}")
    return {
        "format": FORMAT_VERSION,
        "k": dm.k,
        "engine": dm.engine,
        "next_tour_id": dm._next_tour_id,
        "model": model,
        "vertices": sorted(dm.shadow.vertices()),
        "edges": [[e.u, e.v, e.weight] for e in sorted(dm.shadow.edges(), key=lambda e: e.key())],
        "machine_of": {str(v): m for v, m in dm.vp.machine_of.items()},
        "machines": [machine_record(st) for st in dm.states],
    }


def from_snapshot(snap: Dict[str, Any]) -> DynamicMST:
    """Rebuild a DynamicMST from :func:`to_snapshot` output.

    The network ledger starts at zero (a restart does not inherit the old
    run's communication bill).
    """
    if snap.get("format") != FORMAT_VERSION:
        raise ReproError(f"unsupported snapshot format {snap.get('format')!r}")
    k = snap["k"]
    graph = WeightedGraph(snap["vertices"])
    for (u, v, w) in snap["edges"]:
        graph.add_edge(u, v, w)
    vp = VertexPartition(k, {int(v): m for v, m in snap["machine_of"].items()})
    model = snap["model"]
    if model["kind"] == "mpc":
        from repro.mpc.api import MPCDynamicMST

        net = MPCNetwork(k, space=model["space"], enforce_budget=False)
        dm = MPCDynamicMST(graph, k, vp, net, engine=snap["engine"])
        dm.space = model["space"]
    else:
        net = KMachineNetwork(k, words_per_round=model["words_per_round"])
        dm = DynamicMST(graph, k, vp, net, engine=snap["engine"])
    dm._next_tour_id = snap["next_tour_id"]
    dm.states = [restore_machine(mrec, net) for mrec in snap["machines"]]
    return dm


def restore_into(dm: DynamicMST, snap: Dict[str, Any]) -> None:
    """Roll an existing structure back to ``snap`` in place (rollback).

    The network object — its ledger, charge transcript, attached trace
    recorder and fault hook — is deliberately untouched: a rollback is a
    *recovery* step of a live run, and the rounds it (and the replay
    that follows it) cost must keep accumulating on the same bill.
    Machine protocol state, the shadow graph, the vertex partition and
    the replicated tour counter are all restored; space gauges are
    re-accounted from zero per machine (the restarted incarnations).
    """
    if snap.get("format") != FORMAT_VERSION:
        raise ReproError(f"unsupported snapshot format {snap.get('format')!r}")
    if snap["k"] != dm.k:
        raise ReproError(
            f"snapshot is for k={snap['k']} machines, structure has k={dm.k}"
        )
    graph = WeightedGraph(snap["vertices"])
    for (u, v, w) in snap["edges"]:
        graph.add_edge(u, v, w)
    dm.shadow = graph
    dm.vp = VertexPartition(dm.k, {int(v): m for v, m in snap["machine_of"].items()})
    dm._next_tour_id = snap["next_tour_id"]
    dm.states = [restore_machine(mrec, dm.net) for mrec in snap["machines"]]


def dump(dm: DynamicMST, path: str) -> None:
    """Write a snapshot to ``path`` as JSON."""
    with open(path, "w") as f:
        json.dump(to_snapshot(dm), f)


def load(path: str) -> DynamicMST:
    """Read a snapshot from ``path``."""
    with open(path) as f:
        return from_snapshot(json.load(f))
