"""Per-machine Euler state (§5.2).

Each machine stores, for its vertices V_m:

* all graph edges incident to V_m (the random-vertex-partition rule);
* the MST subset of those edges, annotated with Euler labels
  (:class:`~repro.euler.tour.ETEdge` copies — an edge whose endpoints live
  on two machines exists as two copies kept identical by the shared
  broadcast scripts);
* for every *tracked* vertex x ∈ V_m ∪ N(V_m): a witness — a copy of one
  arbitrary MST edge incident to x — plus x's tour id ("the Euler tour
  information of a single arbitrary edge of that neighbour", §5.2);
* sizes of the tours it references.

Machines never read each other's state directly; every cross-machine fact
arrives through a network primitive.  The state is deliberately redundant
(k copies of shared facts) — that redundancy *is* the model, and
:meth:`MachineState.space_words` is what the space benchmarks measure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.euler.tour import ETEdge
from repro.graphs.graph import Edge, normalize
from repro.sim.machine import Machine
from repro.sim.message import WORDS_EDGE, WORDS_ET_EDGE, WORDS_ID


class MachineState:
    """Everything machine ``mid`` knows."""

    __slots__ = (
        "mid",
        "vertices",
        "tracked",
        "graph_edges",
        "mst",
        "witness",
        "tour_of",
        "tour_size",
        "machine",
        "_mst_by_vertex",
        "_mst_by_tour",
    )

    def __init__(self, mid: int, vertices: Iterable[int], machine: Optional[Machine] = None):
        self.mid = mid
        self.vertices: Set[int] = set(vertices)
        self.tracked: Set[int] = set(self.vertices)
        self.graph_edges: Dict[Tuple[int, int], float] = {}
        self.mst: Dict[Tuple[int, int], ETEdge] = {}
        self.witness: Dict[int, Optional[ETEdge]] = {}
        self.tour_of: Dict[int, Optional[int]] = {}
        self.tour_size: Dict[int, int] = {}
        self.machine = machine
        # Acceleration indexes over self.mst (pure caches; rebuilt on
        # restore, kept in sync by the mutators below).
        self._mst_by_vertex: Dict[int, Set[Tuple[int, int]]] = {}
        self._mst_by_tour: Dict[int, Set[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # graph-edge bookkeeping (local storage only; no communication)
    # ------------------------------------------------------------------
    def hosts_vertex(self, x: int) -> bool:
        return x in self.vertices

    def hosts_edge(self, u: int, v: int) -> bool:
        return normalize(u, v) in self.graph_edges

    def store_graph_edge(self, u: int, v: int, weight: float) -> None:
        key = normalize(u, v)
        if key in self.graph_edges:
            raise ProtocolError(f"machine {self.mid}: edge {key} already stored")
        self.graph_edges[key] = weight
        for x in key:
            if x in self.vertices:
                other = key[0] if key[1] == x else key[1]
                self.track(other)
        self._update_gauges()

    def drop_graph_edge(self, u: int, v: int) -> None:
        key = normalize(u, v)
        self.graph_edges.pop(key, None)
        # Tracked neighbours are kept even if the last edge to them goes;
        # pruning them is a space optimisation the paper does not need.
        self._update_gauges()

    def track(self, x: int) -> None:
        if x not in self.tracked:
            self.tracked.add(x)
            self.witness.setdefault(x, None)
            self.tour_of.setdefault(x, None)
            self._update_gauges()

    # ------------------------------------------------------------------
    # MST-edge bookkeeping
    # ------------------------------------------------------------------
    def add_mst_edge(self, ete: ETEdge) -> None:
        key = normalize(ete.u, ete.v)
        if key in self.mst:
            raise ProtocolError(f"machine {self.mid}: MST edge {key} already present")
        self.mst[key] = ete
        self._mst_by_vertex.setdefault(ete.u, set()).add(key)
        self._mst_by_vertex.setdefault(ete.v, set()).add(key)
        self._mst_by_tour.setdefault(ete.tour, set()).add(key)
        self._update_gauges()

    def pop_mst_edge(self, u: int, v: int) -> Optional[ETEdge]:
        key = normalize(u, v)
        ete = self.mst.pop(key, None)
        if ete is not None:
            self._mst_by_vertex.get(ete.u, set()).discard(key)
            self._mst_by_vertex.get(ete.v, set()).discard(key)
            self._mst_by_tour.get(ete.tour, set()).discard(key)
        self._update_gauges()
        return ete

    def retour_mst_edge(self, key: Tuple[int, int], old_tour: int, new_tour: int) -> None:
        """Move an edge between tour buckets after a label transform."""
        if old_tour == new_tour:
            return
        self._mst_by_tour.get(old_tour, set()).discard(key)
        self._mst_by_tour.setdefault(new_tour, set()).add(key)

    def mst_keys_in_tour(self, tid: int) -> List[Tuple[int, int]]:
        return list(self._mst_by_tour.get(tid, ()))

    def replace_tour_groups(
        self,
        stale: Iterable[int],
        groups: Dict[int, Set[Tuple[int, int]]],
    ) -> None:
        """Swap the tour-index buckets of the affected tours (columnar scatter).

        The caller guarantees ``groups`` regroups, by current ``tour``
        field, exactly the MST edges whose pre-batch tour was in
        ``stale`` — i.e. after dropping the stale buckets and merging
        ``groups``, the index equals what :meth:`rebuild_indexes` would
        recompute from scratch.
        """
        for tid in stale:
            self._mst_by_tour.pop(tid, None)
        self._mst_by_tour.update(groups)

    def rebuild_indexes(self) -> None:
        """Recompute the acceleration indexes from self.mst (restore path)."""
        self._mst_by_vertex = {}
        self._mst_by_tour = {}
        for key, ete in self.mst.items():
            self._mst_by_vertex.setdefault(ete.u, set()).add(key)
            self._mst_by_vertex.setdefault(ete.v, set()).add(key)
            self._mst_by_tour.setdefault(ete.tour, set()).add(key)

    def incident_mst(self, x: int) -> List[ETEdge]:
        return [self.mst[k] for k in self._mst_by_vertex.get(x, ())]

    def outgoing_value(self, x: int) -> Optional[int]:
        """Minimum label departing ``x`` among the locally stored MST edges.

        Correct whenever this machine hosts ``x`` (it then has *all* of
        x's MST edges).
        """
        best: Optional[int] = None
        for e in self.incident_mst(x):
            for label in (e.t_uv, e.t_vu):
                if e.tail_at(label) == x and (best is None or label < best):
                    best = label
        return best

    def parent_interval(self, x: int) -> Optional[Tuple[int, int]]:
        """(p_in, p_out) of x's parent edge, or None if x is a root/isolated.

        Only valid on the machine hosting ``x``.
        """
        inc = self.incident_mst(x)
        if not inc:
            return None
        p = min(inc, key=lambda e: e.e_min)
        if p.head_at(p.e_min) != x:
            return None  # x is the root of its tour
        return (p.e_min, p.e_max)

    def pick_witness(self, x: int) -> Optional[ETEdge]:
        """Deterministic witness choice: the incident MST edge of min key."""
        inc = self.incident_mst(x)
        if not inc:
            return None
        e = min(inc, key=lambda e: e.key)
        return ETEdge(e.u, e.v, e.weight, e.t_uv, e.t_vu, e.tour)

    # ------------------------------------------------------------------
    # space accounting
    # ------------------------------------------------------------------
    def _update_gauges(self) -> None:
        if self.machine is None:
            return
        self.machine.set_gauge("graph_edges", WORDS_EDGE * len(self.graph_edges))
        self.machine.set_gauge("mst_edges", WORDS_ET_EDGE * len(self.mst))
        self.machine.set_gauge("witness", WORDS_ET_EDGE * len(self.witness))
        self.machine.set_gauge(
            "tours", WORDS_ID * (len(self.tour_of) + 2 * len(self.tour_size))
        )

    def refresh_gauges(self) -> None:
        self._update_gauges()

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"MachineState(mid={self.mid}, |V|={len(self.vertices)}, "
            f"|E|={len(self.graph_edges)}, |MST|={len(self.mst)})"
        )
