"""Keeping up with the stream — the paper's title question, simulated.

"The fundamental question we want to ask in this paper is whether we can
update the graph fast enough to keep up with the stream." (§1)

:class:`StreamDriver` closes the loop: an update source produces
``rate`` updates per communication round while the cluster repeatedly
drains its backlog with the batch-dynamic algorithm.  Each applied batch
costs its *measured* rounds, during which the stream keeps producing.
Theorems 6.1 and 7.1 predict a sharp throughput ceiling of Θ(k) updates
per O(1) rounds: below the ceiling the backlog stays bounded, above it
the backlog grows linearly with time — the phase transition
``bench_keeping_up.py`` plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.api import DynamicMST
from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import WeightedGraph, normalize
from repro.graphs.streams import Update


class OnlineChurn:
    """An endless consistent churn source over an evolving graph.

    Consistency is against the *virtual* graph state that includes every
    update already emitted (whether or not the cluster has applied it
    yet), so queued updates are always applicable in emission order, and
    no edge pair is emitted twice while its first update is still
    pending.
    """

    def __init__(self, graph: WeightedGraph, rng: RngLike = None,
                 p_add: float = 0.5) -> None:
        self.virtual = graph.copy()
        self.rng = as_rng(rng)
        self.p_add = p_add
        self.pending_pairs: Set[Tuple[int, int]] = set()
        self._verts = sorted(graph.vertices())

    def emit(self, count: int) -> List[Update]:
        out: List[Update] = []
        n = len(self._verts)
        for _ in range(count):
            for _try in range(64 * max(n, 4)):
                do_add = self.rng.random() < self.p_add or self.virtual.m == 0
                if do_add:
                    u = self._verts[int(self.rng.integers(0, n))]
                    v = self._verts[int(self.rng.integers(0, n))]
                    if u == v:
                        continue
                    pair = normalize(u, v)
                    if pair in self.pending_pairs or self.virtual.has_edge(*pair):
                        continue
                    upd = Update.add(*pair, float(self.rng.random()))
                else:
                    edges = [e for e in self.virtual.edges()
                             if e.endpoints not in self.pending_pairs]
                    if not edges:
                        continue
                    e = edges[int(self.rng.integers(0, len(edges)))]
                    upd = Update.delete(e.u, e.v)
                    pair = upd.endpoints
                self.pending_pairs.add(pair)
                if upd.kind == "add":
                    self.virtual.add_edge(upd.u, upd.v, upd.weight)
                else:
                    self.virtual.remove_edge(upd.u, upd.v)
                out.append(upd)
                break
        return out

    def applied(self, batch: List[Update]) -> None:
        """The cluster applied these; their pairs may be reused."""
        for upd in batch:
            self.pending_pairs.discard(upd.endpoints)


@dataclass
class BacklogTrace:
    """Time series of one driver run."""

    rate: float
    times: List[int] = field(default_factory=list)  # cumulative rounds
    backlogs: List[int] = field(default_factory=list)
    applied: int = 0

    @property
    def final_backlog(self) -> int:
        return self.backlogs[-1] if self.backlogs else 0

    @property
    def peak_backlog(self) -> int:
        return max(self.backlogs, default=0)

    def diverged(self) -> bool:
        """Linear-growth signature: the final backlog is at least twice
        the backlog a quarter of the way in (bounded traces plateau, so
        their ratio hovers near 1), and non-trivial in absolute terms."""
        if len(self.backlogs) < 4:
            return False
        quarter = self.backlogs[len(self.backlogs) // 4]
        return self.final_backlog > max(2 * quarter, 20)


class StreamDriver:
    """Drive a DynamicMST against a rate-limited update stream."""

    def __init__(
        self,
        dm: DynamicMST,
        source: OnlineChurn,
        rate: float,
        max_batch: Optional[int] = None,
    ) -> None:
        self.dm = dm
        self.source = source
        self.rate = rate
        self.max_batch = max_batch
        self._credit = 0.0

    def run(self, total_rounds: int) -> BacklogTrace:
        """Simulate until ``total_rounds`` communication rounds elapse."""
        trace = BacklogTrace(rate=self.rate)
        queue: List[Update] = []
        elapsed = 0
        # Warm-up: one round of arrivals so there is work to do.
        self._credit += self.rate
        while elapsed < total_rounds:
            arrivals = int(self._credit)
            self._credit -= arrivals
            queue.extend(self.source.emit(arrivals))
            if not queue:
                # An idle round: the stream trickles in.
                elapsed += 1
                self._credit += self.rate
                trace.times.append(elapsed)
                trace.backlogs.append(0)
                continue
            take = len(queue) if self.max_batch is None else min(
                len(queue), self.max_batch
            )
            batch, queue = queue[:take], queue[take:]
            report = self.dm.apply_batch(batch)
            self.source.applied(batch)
            trace.applied += len(batch)
            cost = max(report.rounds, 1)
            elapsed += cost
            self._credit += self.rate * cost
            trace.times.append(elapsed)
            trace.backlogs.append(len(queue) + int(self._credit))
        return trace
