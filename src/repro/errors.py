"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all repro-specific errors."""


class ModelViolation(ReproError):
    """A model constraint (bandwidth, space, partition) was violated."""


class SpaceExceeded(ModelViolation):
    """A machine exceeded its per-machine space budget."""


class BandwidthExceeded(ModelViolation):
    """A single round tried to push more words over a link than it carries."""


class InconsistentUpdate(ReproError):
    """An update batch is inconsistent with the current graph state."""


class ProtocolError(ReproError):
    """A distributed protocol reached an impossible internal state."""
