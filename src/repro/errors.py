"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all repro-specific errors."""


class ModelViolation(ReproError):
    """A model constraint (bandwidth, space, partition) was violated."""


class SpaceExceeded(ModelViolation):
    """A machine exceeded its per-machine space budget."""


class BandwidthExceeded(ModelViolation):
    """A single round tried to push more words over a link than it carries."""


class StrictModeViolation(ModelViolation):
    """A strict-mode (sanitizer) invariant failed at runtime.

    Raised only when strict mode is on (``Network(strict=True)`` or
    ``REPRO_STRICT=1``): dishonest message word costs, supersteps that
    move words for zero rounds, hidden global-RNG consumption, or a
    machine program touching another machine's state.

    ``kind`` is a stable machine-readable category (see
    :data:`repro.sim.strict.VIOLATION_KINDS`) used by the trace layer
    to emit typed ``violation`` events.
    """

    def __init__(self, message: str, kind: str = "other") -> None:
        super().__init__(message)
        self.kind = kind


class FaultTimeout(ReproError):
    """A lost superstep stayed lost past the bounded retransmission budget.

    Raised by the fault-injection layer (:mod:`repro.faults`) when a
    dropped message is still undelivered after ``max_retries``
    retransmission waves — the simulated analogue of a transport-level
    timeout the recovery protocol cannot paper over.
    """


class InconsistentUpdate(ReproError):
    """An update batch is inconsistent with the current graph state."""


class ProtocolError(ReproError):
    """A distributed protocol reached an impossible internal state."""
