"""Edge-labelled Euler tours over spanning forests (§5.1–5.3).

Each MST edge carries the two timestamps at which the tour traverses it
(one per direction), the tour id and the tour size.  All structural
operations — reroot (Lemma 5.5), split (Lemma 5.6), join (Lemma 5.7) —
are *uniform label transformations*: every participant applies the same
pure function to every label it holds, which is exactly what makes the
distributed protocols O(1) broadcasts.

:mod:`repro.euler.labels` holds the pure transforms; :mod:`repro.euler.tour`
is the centralized :class:`EulerForest` (the oracle the distributed state
is checked against); :mod:`repro.euler.predicates` encodes Lemmas 5.2–5.4;
:mod:`repro.euler.brackets` is the §6.2 bracket-matching component
labelling (Figure 4).
"""

from repro.euler.labels import (
    JoinSpec,
    SplitSpec,
    join_m1_label,
    join_m2_label,
    reroot_label,
    split_label,
)
from repro.euler.tour import ETEdge, EulerForest, check_valid_tour
from repro.euler.predicates import (
    is_outgoing,
    nests_strictly_inside,
    on_root_path,
    side_of_cut,
)
from repro.euler.brackets import BracketComponents

__all__ = [
    "reroot_label",
    "split_label",
    "join_m1_label",
    "join_m2_label",
    "SplitSpec",
    "JoinSpec",
    "ETEdge",
    "EulerForest",
    "check_valid_tour",
    "on_root_path",
    "nests_strictly_inside",
    "side_of_cut",
    "is_outgoing",
    "BracketComponents",
]
