"""Bracket-matching component labelling for batch deletions (§6.2, Fig. 4).

When d tree edges of one tour are deleted, their 2d labels — written as an
open bracket at each c_in and a close bracket at each c_out — properly
nest, and the d+1 components of the broken tree correspond one-to-one to
the nesting regions: labels "contained in the same pair of brackets at the
same depth" are in the same component.

Components are numbered in Euler-tour order: the root's (outermost) region
is 0, and interval i (in increasing c_in order) names component i+1.  The
numbering is a pure function of the broadcast label pairs, so every
machine derives the identical labelling locally.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

from repro.errors import ProtocolError
from repro.euler.tour import ETEdge


class BracketComponents:
    """Component labelling of one tour from the deleted edges' label pairs."""

    def __init__(self, deleted_labels: Sequence[Tuple[int, int]], size: int) -> None:
        self.size = size
        self.intervals: List[Tuple[int, int]] = sorted(
            (min(a, b), max(a, b)) for a, b in deleted_labels
        )
        seen: set[int] = set()
        for c_in, c_out in self.intervals:
            if not 0 <= c_in < c_out < size:
                raise ProtocolError(f"labels ({c_in}, {c_out}) outside tour of size {size}")
            if c_in in seen or c_out in seen:
                raise ProtocolError("deleted edges share a label")
            seen.update((c_in, c_out))
        self._deleted_labels = seen
        self._pair_index = {pair: i for i, pair in enumerate(self.intervals)}
        # Parent of each interval in the nesting forest (-1 = outer region).
        self.parent: List[int] = []
        stack: List[int] = []
        for i, (c_in, c_out) in enumerate(self.intervals):
            while stack and self.intervals[stack[-1]][1] < c_in:
                stack.pop()
            if stack and not (
                self.intervals[stack[-1]][0] < c_in and c_out < self.intervals[stack[-1]][1]
            ):
                raise ProtocolError("deleted intervals cross; labels are corrupt")
            self.parent.append(stack[-1] if stack else -1)
            stack.append(i)
        self._starts = [c_in for c_in, _ in self.intervals]

    # ------------------------------------------------------------------
    @property
    def n_components(self) -> int:
        return len(self.intervals) + 1

    def _innermost(self, w: int) -> int:
        """Index of the innermost interval strictly containing ``w``, or -1."""
        i = bisect_right(self._starts, w) - 1
        while i >= 0 and self.intervals[i][1] <= w:
            i = self.parent[i]
        if i >= 0 and self.intervals[i][0] == w:
            i = self.parent[i]
        return i

    def component_of_label(self, w: int) -> int:
        """Component of a surviving label (must not be a deleted label)."""
        if not 0 <= w < self.size:
            raise ProtocolError(f"label {w} outside tour of size {self.size}")
        if w in self._deleted_labels:
            raise ProtocolError(f"label {w} belongs to a deleted edge")
        return self._innermost(w) + 1

    def component_inside(self, interval_idx: int) -> int:
        """Component of the region enclosed by deleted interval ``interval_idx``."""
        return interval_idx + 1

    def component_outside(self, interval_idx: int) -> int:
        """Component of the region directly surrounding ``interval_idx``."""
        return self.parent[interval_idx] + 1

    def interval_index(self, labels: Tuple[int, int]) -> int:
        pair = (min(labels), max(labels))
        lo = bisect_right(self._starts, pair[0]) - 1
        if lo < 0 or self.intervals[lo] != pair:
            raise ProtocolError(f"{pair} is not a deleted interval")
        return lo

    # ------------------------------------------------------------------
    def component_of_vertex(self, witness: ETEdge, x: int) -> int:
        """Component of vertex ``x`` from any incident tour edge ``witness``.

        If the witness survives, both its labels lie in x's component; if
        the witness is itself a deleted edge, the traversal direction at
        c_in decides the side (the vertex it enters is inside), exactly as
        in §6.2 step 2 / Figure 4's boundary-value rule.
        """
        labels = witness.labels()
        idx = self._pair_index.get((min(labels), max(labels)))
        if idx is None:
            return self.component_of_label(labels[0])
        c_in = self.intervals[idx][0]
        if witness.head_at(c_in) == x:
            return self.component_inside(idx)
        return self.component_outside(idx)

    def components_in_tour_order(self) -> List[int]:
        """All component ids, outermost first then by c_in — i.e. 0..d."""
        return list(range(self.n_components))
