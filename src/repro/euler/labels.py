"""Pure label arithmetic for Euler-tour maintenance (Lemmas 5.5–5.7).

A tour over a tree with t vertices has L = 2(t-1) directed steps labelled
0..L-1; label 0 departs from the root.  Every structural change is a pure
function applied uniformly to all labels of the affected tour(s):

* reroot to u: subtract an outgoing value d of u, mod L (Lemma 5.5);
* split at tree edge with labels (e_min, e_max): root side keeps/shifts,
  inside becomes its own 0-based tour (Lemma 5.6);
* join two tours through (u, v) with outgoing values a (of u in M1) and
  b (of v in M2): M2 is spliced into M1 at time a (Lemma 5.7).

The paper's piecewise formula in Lemma 5.6 has an off-by-one for the
detached component (it maps inside labels to 1..L'-1 ∪ {L'}); we subtract
``e_min + 1`` so labels are canonical 0-based, making the vertex first
entered through the removed edge the new root of the detached tour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


def reroot_label(w: int, d: int, size: int) -> int:
    """Shift label ``w`` when rerooting: the traversal at ``d`` becomes 0."""
    if size <= 0:
        raise ValueError("cannot reroot an edgeless tour")
    return (w - d) % size


@dataclass(frozen=True)
class SplitSpec:
    """Everything a machine needs to apply a split (one broadcast's worth).

    ``e_min``/``e_max`` are the removed edge's labels, ``size`` the old
    tour size, ``old_tour`` its id, ``inside_tour`` the fresh id assigned
    to the detached component (the root side keeps ``old_tour``).
    """

    e_min: int
    e_max: int
    size: int
    old_tour: int
    inside_tour: int

    @property
    def removed_steps(self) -> int:
        return self.e_max - self.e_min + 1

    @property
    def root_side_size(self) -> int:
        return self.size - self.removed_steps

    @property
    def inside_size(self) -> int:
        return self.e_max - self.e_min - 1


def split_label(w: int, spec: SplitSpec) -> Tuple[int, int]:
    """Map a label of the old tour to (new_tour_id, new_label).

    Labels equal to e_min or e_max belong to the removed edge and must not
    be passed in.
    """
    if w == spec.e_min or w == spec.e_max:
        raise ValueError("the removed edge's own labels have no image")
    if w < spec.e_min:
        return (spec.old_tour, w)
    if w < spec.e_max:
        return (spec.inside_tour, w - (spec.e_min + 1))
    return (spec.old_tour, w - spec.removed_steps)


@dataclass(frozen=True)
class JoinSpec:
    """Everything a machine needs to apply a join (one broadcast's worth).

    M1 (containing u) absorbs M2 (containing v) through the new edge
    (u, v).  ``a`` is an outgoing value of u in M1 (0 if M1 is a singleton
    tour), ``b`` an outgoing value of v in M2 (0 if M2 is a singleton).
    The merged tour keeps M1's id.
    """

    a: int
    b: int
    size1: int
    size2: int
    tour1: int
    tour2: int

    @property
    def new_size(self) -> int:
        return self.size1 + self.size2 + 2

    @property
    def new_edge_labels(self) -> Tuple[int, int]:
        """Labels of the joining edge: enters M2 at a, returns at a+size2+1."""
        return (self.a, self.a + self.size2 + 1)


def join_m1_label(w: int, spec: JoinSpec) -> int:
    """New label of an M1 label under the join."""
    return w if w < spec.a else w + spec.size2 + 2


def join_m2_label(w: int, spec: JoinSpec) -> int:
    """New label of an M2 label under the join."""
    if spec.size2 <= 0:
        raise ValueError("singleton M2 has no labels")
    return spec.a + 1 + ((w - spec.b) % spec.size2)
