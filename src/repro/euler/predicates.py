"""Structural predicates on Euler-tour labels (Lemmas 5.2–5.4).

These are the O(1)-space tests that let a machine answer "is my edge on
the path from the root to s?" and "which side of the cut is this vertex
on?" from labels alone — the foundation of every protocol in §5 and §6.

Note on §5.4.2: the paper's step-2 text swaps the two labels ("with root"
vs "away from root") relative to its own Lemma 5.2; we implement the
Lemma 5.2 semantics (strict nesting inside the cut edge's interval means
*separated from* the root) and the direction-based tie rules for the case
where the witness edge is the cut edge itself.
"""

from __future__ import annotations

from typing import Tuple

from repro.euler.tour import ETEdge

#: Side labels for :func:`side_of_cut`.
WITH_ROOT = "with_root"
AWAY_FROM_ROOT = "away_from_root"


def nests_strictly_inside(e_labels: Tuple[int, int], c_labels: Tuple[int, int]) -> bool:
    """Lemma 5.2: edge e is cut off from the root by cut edge c iff
    c_in < e_in and e_out < c_out."""
    e_in, e_out = e_labels
    c_in, c_out = c_labels
    return c_in < e_in and e_out < c_out


def on_root_path(e_labels: Tuple[int, int], p_labels: Tuple[int, int]) -> bool:
    """Lemma 5.4: edge e is on the path root → s iff e_in <= p_in and
    e_out >= p_out, where p is the parent edge of s."""
    e_in, e_out = e_labels
    p_in, p_out = p_labels
    return e_in <= p_in and e_out >= p_out


def is_outgoing(ete: ETEdge, x: int, label: int) -> bool:
    """True iff the traversal of ``ete`` at ``label`` departs from ``x``."""
    return ete.tail_at(label) == x


def side_of_cut(witness: ETEdge, x: int, c_labels: Tuple[int, int]) -> str:
    """Classify endpoint ``x`` of ``witness`` relative to the cut edge c.

    ``witness`` is any tour edge incident to ``x`` (possibly the cut edge
    itself); returns WITH_ROOT or AWAY_FROM_ROOT per §5.4.2:

    * strict nesting => away from root (Lemma 5.2);
    * witness == cut edge: decided by traversal direction — the endpoint
      the c_in traversal *enters* is the top of the cut subtree (away);
      the endpoint it departs is on the root side.
    """
    c_in, c_out = c_labels
    e_in, e_out = witness.labels()
    if e_in == c_in or e_out == c_out:
        # The witness is the cut edge itself.
        if witness.head_at(c_in) == x:
            return AWAY_FROM_ROOT
        return WITH_ROOT
    if nests_strictly_inside((e_in, e_out), (c_in, c_out)):
        return AWAY_FROM_ROOT
    return WITH_ROOT
