"""ASCII rendering of Euler tours and bracket structures (debug/docs).

Turns the label arithmetic into something a human can read:

    >>> from repro.euler import EulerForest
    >>> from repro.graphs import Edge
    >>> ef = EulerForest.build(range(3), [Edge(0,1,.1), Edge(1,2,.2)])
    >>> print(render_tour(ef, ef.tour_of[0]))   # doctest: +SKIP
    tour 0 (size 4, root 0): 0 ->(0) 1 ->(1) 2 ->(2) 1 ->(3) 0

Used by the figure-regeneration bench and handy in a debugger.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.euler.brackets import BracketComponents
from repro.euler.tour import EulerForest


def render_tour(ef: EulerForest, tid: int) -> str:
    """One-line walk of the tour: vertex ->(label) vertex ->(label) ..."""
    size = ef.tour_size[tid]
    if size == 0:
        verts = ef.vertices_of_tour(tid)
        v = next(iter(verts)) if verts else "?"
        return f"tour {tid} (size 0): [{v}]"
    step: Dict[int, Tuple[int, int]] = {}
    for e in ef.tour_edges(tid):
        step[e.t_uv] = (e.u, e.v)
        step[e.t_vu] = (e.v, e.u)
    parts: List[str] = [str(step[0][0])]
    for t in range(size):
        parts.append(f"->({t}) {step[t][1]}")
    return f"tour {tid} (size {size}, root {ef.root(tid)}): " + " ".join(parts)


def render_intervals(ef: EulerForest, tid: int) -> str:
    """Per-edge label intervals, sorted by e_in (the Lemma 5.2 view)."""
    lines = [f"tour {tid} intervals:"]
    for e in sorted(ef.tour_edges(tid), key=lambda e: e.e_min):
        depth = sum(
            1
            for f in ef.tour_edges(tid)
            if f.e_min < e.e_min and e.e_max < f.e_max
        )
        lines.append(
            "  " * (depth + 1) + f"({e.u},{e.v}) w={e.weight:g} [{e.e_min},{e.e_max}]"
        )
    return "\n".join(lines)


def render_brackets(pairs: Sequence[Tuple[int, int]], size: int) -> str:
    """The Figure 4 picture: one char per label — '(' ')' for deleted
    edges' labels, the component digit elsewhere."""
    bc = BracketComponents(pairs, size)
    opens = {min(a, b) for (a, b) in pairs}
    closes = {max(a, b) for (a, b) in pairs}
    chars = []
    for w in range(size):
        if w in opens:
            chars.append("(")
        elif w in closes:
            chars.append(")")
        else:
            chars.append(str(bc.component_of_label(w) % 10))
    ruler = "".join(str(i % 10) for i in range(size))
    return f"labels: {ruler}\nstruct: {''.join(chars)}"
