"""Centralized Euler-tour forest — the oracle for the distributed state.

:class:`EulerForest` maintains, for a spanning forest, the per-edge tour
labels exactly as the distributed machines do (§5.2), but in one place and
with explicit per-tour vertex sets, so tests can verify every invariant:

* labels of a tour of size L are a permutation of 0..L-1 once split into
  directed traversals;
* consecutive traversals chain head-to-tail (it *is* a closed walk);
* every edge appears exactly twice, once per direction.

All mutations go through the same pure transforms of
:mod:`repro.euler.labels` that the machines apply, so a bug in the
arithmetic breaks the oracle's own validity check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.euler.labels import (
    JoinSpec,
    SplitSpec,
    join_m1_label,
    join_m2_label,
    reroot_label,
    split_label,
)
from repro.graphs.graph import Edge, normalize
from repro.perf.config import VECTOR_MIN_ROWS


def _pack_labels(edges: Sequence["ETEdge"]) -> Tuple[np.ndarray, np.ndarray]:
    n = len(edges)
    return (
        np.fromiter((e.t_uv for e in edges), np.int64, n),
        np.fromiter((e.t_vu for e in edges), np.int64, n),
    )


@dataclass(slots=True)
class ETEdge:
    """An MST edge annotated with its Euler-tour traversal labels.

    ``t_uv`` is the time of the u→v traversal, ``t_vu`` of v→u (u < v).
    ``tour`` is the tour id; the tour size lives in the owning structure
    (distributedly it is replicated next to each edge).  ``slots=True``
    because every machine holds an ``ETEdge`` copy per local MST edge
    plus one per witness — the dominant object population at scale.
    """

    u: int
    v: int
    weight: float
    t_uv: int
    t_vu: int
    tour: int

    @property
    def e_min(self) -> int:
        return min(self.t_uv, self.t_vu)

    @property
    def e_max(self) -> int:
        return max(self.t_uv, self.t_vu)

    @property
    def key(self) -> Tuple[float, int, int]:
        return (self.weight, self.u, self.v)

    def head_at(self, label: int) -> int:
        """The vertex the traversal at ``label`` points toward."""
        if label == self.t_uv:
            return self.v
        if label == self.t_vu:
            return self.u
        raise ValueError(f"label {label} does not belong to edge ({self.u},{self.v})")

    def tail_at(self, label: int) -> int:
        return self.u if self.head_at(label) == self.v else self.v

    def as_edge(self) -> Edge:
        return Edge(self.u, self.v, self.weight)

    def labels(self) -> Tuple[int, int]:
        return (self.e_min, self.e_max)

    def snapshot(self) -> Tuple[int, int, float, int, int, int]:
        """Immutable wire form: (u, v, weight, t_uv, t_vu, tour)."""
        return (self.u, self.v, self.weight, self.t_uv, self.t_vu, self.tour)

    @staticmethod
    def from_snapshot(snap: Sequence) -> "ETEdge":
        return ETEdge(*snap)


def check_valid_tour(etedges: Iterable[ETEdge], size: int) -> bool:
    """First-principles validity: the labels describe a closed Euler walk."""
    step: Dict[int, Tuple[int, int]] = {}
    for e in etedges:
        for label, tail, head in ((e.t_uv, e.u, e.v), (e.t_vu, e.v, e.u)):
            if label in step:
                return False
            step[label] = (tail, head)
    if sorted(step) != list(range(size)):
        return False
    if size == 0:
        return True
    for i in range(size):
        _, head = step[i]
        tail_next, _ = step[(i + 1) % size]
        if head != tail_next:
            return False
    return True


class EulerForest:
    """Euler-tour structure over a dynamic spanning forest (centralized)."""

    def __init__(self) -> None:
        self.edges: Dict[Tuple[int, int], ETEdge] = {}
        self.tour_of: Dict[int, int] = {}  # vertex -> tour id
        self.tour_size: Dict[int, int] = {}  # tour id -> directed steps
        self._tour_vertices: Dict[int, Set[int]] = {}
        self._next_tour = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, vertices: Iterable[int], forest_edges: Iterable[Edge]) -> "EulerForest":
        """Build tours by DFS from each component's minimum vertex."""
        ef = cls()
        adj: Dict[int, List[Edge]] = {}
        verts = set(vertices)
        for e in forest_edges:
            verts.add(e.u)
            verts.add(e.v)
            adj.setdefault(e.u, []).append(e)
            adj.setdefault(e.v, []).append(e)
        seen: Set[int] = set()
        for root in sorted(verts):
            if root in seen:
                continue
            tid = ef._fresh_tour()
            ef._tour_vertices[tid] = set()
            # Iterative DFS assigning traversal times.
            time = 0
            stack: List[Tuple[int, Optional[Edge], int]] = [(root, None, 0)]
            seen.add(root)
            ef.tour_of[root] = tid
            ef._tour_vertices[tid].add(root)
            # Explicit DFS with child iterators to label both directions.
            iters = {root: iter(sorted(adj.get(root, []), key=lambda e: e.key()))}
            path: List[int] = [root]
            via: Dict[int, Edge] = {}
            while path:
                cur = path[-1]
                advanced = False
                for e in iters[cur]:
                    nxt = e.other(cur)
                    if nxt in seen:
                        continue
                    seen.add(nxt)
                    ef.tour_of[nxt] = tid
                    ef._tour_vertices[tid].add(nxt)
                    u, v = e.u, e.v
                    ete = ETEdge(u, v, e.weight, -1, -1, tid)
                    if cur == u:
                        ete.t_uv = time
                    else:
                        ete.t_vu = time
                    time += 1
                    ef.edges[(u, v)] = ete
                    via[nxt] = e
                    iters[nxt] = iter(sorted(adj.get(nxt, []), key=lambda e: e.key()))
                    path.append(nxt)
                    advanced = True
                    break
                if not advanced:
                    path.pop()
                    if path:
                        e = via[cur]
                        ete = ef.edges[(e.u, e.v)]
                        if cur == ete.u:
                            ete.t_uv = time
                        else:
                            ete.t_vu = time
                        time += 1
            ef.tour_size[tid] = time
        return ef

    def _fresh_tour(self) -> int:
        tid = self._next_tour
        self._next_tour += 1
        return tid

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def tour_edges(self, tid: int) -> List[ETEdge]:
        return [e for e in self.edges.values() if e.tour == tid]

    def incident(self, x: int) -> List[ETEdge]:
        # Note: O(#edges); the oracle favours clarity over speed.
        return [e for e in self.edges.values() if x in (e.u, e.v)]

    def outgoing_value(self, x: int) -> Optional[int]:
        """The minimum label at which the tour departs from ``x`` (None if isolated)."""
        best: Optional[int] = None
        for e in self.incident(x):
            for label in (e.t_uv, e.t_vu):
                if e.tail_at(label) == x and (best is None or label < best):
                    best = label
        return best

    def parent_edge(self, x: int) -> ETEdge:
        """Lemma 5.3: the incident edge with the minimum label (x not root)."""
        inc = self.incident(x)
        if not inc:
            raise ProtocolError(f"vertex {x} is isolated; no parent edge")
        p = min(inc, key=lambda e: e.e_min)
        if p.head_at(p.e_min) != x:
            raise ProtocolError(f"vertex {x} is the root of its tour; no parent edge")
        return p

    def root(self, tid: int) -> int:
        """The vertex from which the label-0 traversal departs."""
        for e in self.tour_edges(tid):
            if e.e_min == 0:
                return e.tail_at(0)
        # Singleton tour: its sole vertex.
        verts = self._tour_vertices.get(tid, set())
        if len(verts) == 1:
            return next(iter(verts))
        raise ProtocolError(f"tour {tid} has no label 0")

    def vertices_of_tour(self, tid: int) -> Set[int]:
        return set(self._tour_vertices.get(tid, set()))

    def same_tour(self, u: int, v: int) -> bool:
        return self.tour_of[u] == self.tour_of[v]

    def has_edge(self, u: int, v: int) -> bool:
        return normalize(u, v) in self.edges

    def forest_edges(self) -> List[Edge]:
        return [e.as_edge() for e in self.edges.values()]

    def entering_time(self, x: int) -> Optional[int]:
        """Time the tour first enters ``x`` (None for roots/singletons)."""
        inc = self.incident(x)
        if not inc:
            return None
        p = min(inc, key=lambda e: e.e_min)
        return p.e_min if p.head_at(p.e_min) == x else None

    # ------------------------------------------------------------------
    # mutations (Lemmas 5.5 / 5.6 / 5.7)
    # ------------------------------------------------------------------
    def add_vertex(self, x: int) -> int:
        """Register an isolated vertex as its own (size-0) tour."""
        if x in self.tour_of:
            return self.tour_of[x]
        tid = self._fresh_tour()
        self.tour_of[x] = tid
        self.tour_size[tid] = 0
        self._tour_vertices[tid] = {x}
        return tid

    def reroot(self, x: int) -> None:
        """Make ``x`` the root of its tour (Lemma 5.5)."""
        tid = self.tour_of[x]
        size = self.tour_size[tid]
        if size == 0:
            return
        d = self.outgoing_value(x)
        assert d is not None
        edges = self.tour_edges(tid)
        if len(edges) >= VECTOR_MIN_ROWS:
            from repro.euler.vectorized import reroot_labels

            t1, t2 = _pack_labels(edges)
            new1 = reroot_labels(t1, d, size).tolist()
            new2 = reroot_labels(t2, d, size).tolist()
            for i, e in enumerate(edges):
                e.t_uv = new1[i]
                e.t_vu = new2[i]
        else:
            for e in edges:
                e.t_uv = reroot_label(e.t_uv, d, size)
                e.t_vu = reroot_label(e.t_vu, d, size)

    def cut(self, u: int, v: int) -> SplitSpec:
        """Remove forest edge (u, v) and split its tour (Lemma 5.6)."""
        key = normalize(u, v)
        if key not in self.edges:
            raise KeyError(f"forest edge {key} not present")
        cut_edge = self.edges.pop(key)
        tid = cut_edge.tour
        spec = SplitSpec(
            e_min=cut_edge.e_min,
            e_max=cut_edge.e_max,
            size=self.tour_size[tid],
            old_tour=tid,
            inside_tour=self._fresh_tour(),
        )
        # Classify vertices before relabelling: inside iff entering time in
        # [e_min, e_max).
        inside_vertices: Set[int] = set()
        for x in self._tour_vertices[tid]:
            t_in = None
            inc = [e for e in self.incident(x)] + [cut_edge]
            inc = [e for e in inc if x in (e.u, e.v) and e.tour == tid]
            if inc:
                p = min(inc, key=lambda e: e.e_min)
                if p.head_at(p.e_min) == x:
                    t_in = p.e_min
            if t_in is not None and spec.e_min <= t_in < spec.e_max:
                inside_vertices.add(x)
        edges = self.tour_edges(tid)
        if len(edges) >= VECTOR_MIN_ROWS:
            from repro.euler.vectorized import split_labels

            t1, t2 = _pack_labels(edges)
            tours, new1 = split_labels(t1, spec)
            _, new2 = split_labels(t2, spec)
            tours_l, new1_l, new2_l = tours.tolist(), new1.tolist(), new2.tolist()
            for i, e in enumerate(edges):
                e.t_uv = new1_l[i]
                e.t_vu = new2_l[i]
                e.tour = tours_l[i]
        else:
            for e in edges:
                new_tid, _ = split_label(e.t_uv, spec)
                e.t_uv = split_label(e.t_uv, spec)[1]
                e.t_vu = split_label(e.t_vu, spec)[1]
                e.tour = new_tid
        self.tour_size[spec.old_tour] = spec.root_side_size
        self.tour_size[spec.inside_tour] = spec.inside_size
        self._tour_vertices[spec.inside_tour] = inside_vertices
        self._tour_vertices[spec.old_tour] -= inside_vertices
        for x in inside_vertices:
            self.tour_of[x] = spec.inside_tour
        return spec

    def link(self, u: int, v: int, weight: float) -> JoinSpec:
        """Add forest edge (u, v) joining two distinct tours (Lemma 5.7)."""
        u, v = normalize(u, v)
        t1, t2 = self.tour_of[u], self.tour_of[v]
        if t1 == t2:
            raise ValueError(f"({u}, {v}) would close a cycle in tour {t1}")
        a = self.outgoing_value(u)
        b = self.outgoing_value(v)
        spec = JoinSpec(
            a=a if a is not None else 0,
            b=b if b is not None else 0,
            size1=self.tour_size[t1],
            size2=self.tour_size[t2],
            tour1=t1,
            tour2=t2,
        )
        edges1 = self.tour_edges(t1)
        edges2 = self.tour_edges(t2)
        if len(edges1) + len(edges2) >= VECTOR_MIN_ROWS:
            from repro.euler.vectorized import join_m1_labels, join_m2_labels

            if edges1:
                a1, a2 = _pack_labels(edges1)
                new1 = join_m1_labels(a1, spec).tolist()
                new2 = join_m1_labels(a2, spec).tolist()
                for i, e in enumerate(edges1):
                    e.t_uv = new1[i]
                    e.t_vu = new2[i]
            if edges2:
                b1, b2 = _pack_labels(edges2)
                new1 = join_m2_labels(b1, spec).tolist()
                new2 = join_m2_labels(b2, spec).tolist()
                for i, e in enumerate(edges2):
                    e.t_uv = new1[i]
                    e.t_vu = new2[i]
                    e.tour = t1
        else:
            for e in edges1:
                e.t_uv = join_m1_label(e.t_uv, spec)
                e.t_vu = join_m1_label(e.t_vu, spec)
            for e in edges2:
                e.t_uv = join_m2_label(e.t_uv, spec)
                e.t_vu = join_m2_label(e.t_vu, spec)
                e.tour = t1
        lab_in, lab_out = spec.new_edge_labels
        # The in-traversal at ``a`` departs u and enters v.
        ete = ETEdge(u, v, weight, lab_in, lab_out, t1)
        self.edges[(u, v)] = ete
        self.tour_size[t1] = spec.new_size
        self._tour_vertices[t1] |= self._tour_vertices.pop(t2)
        for x in self._tour_vertices[t1]:
            self.tour_of[x] = t1
        self.tour_size.pop(t2, None)
        return spec

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ProtocolError if any tour invariant is broken."""
        by_tour: Dict[int, List[ETEdge]] = {}
        for e in self.edges.values():
            by_tour.setdefault(e.tour, []).append(e)
        for tid, size in self.tour_size.items():
            edges = by_tour.get(tid, [])
            if not check_valid_tour(edges, size):
                raise ProtocolError(f"tour {tid} labels are not a valid Euler walk")
            verts = self._tour_vertices.get(tid, set())
            if size != 2 * max(len(verts) - 1, 0):
                raise ProtocolError(
                    f"tour {tid}: size {size} inconsistent with {len(verts)} vertices"
                )
            touched = {x for e in edges for x in (e.u, e.v)}
            if edges and touched != verts:
                raise ProtocolError(f"tour {tid}: edge endpoints disagree with vertex set")
        extra = set(by_tour) - set(self.tour_size)
        if extra:
            raise ProtocolError(f"edges reference unknown tours {extra}")
