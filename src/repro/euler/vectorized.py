"""NumPy-vectorized Euler label kernels.

The per-machine transforms of Lemmas 5.5–5.7 are embarrassingly
data-parallel: one pure function applied to every label a machine holds.
The scalar versions in :mod:`repro.euler.labels` stay the reference (and
are what the protocol code uses at the default scales); these array
kernels are the scale-up path for machines holding 10⁵+ labels, verified
element-for-element against the scalar functions by property tests and
timed by ``benchmarks/bench_vectorized_labels.py``.

Each public kernel is a thin dispatcher: validation, then — when the
``parallel`` execution backend is active *and* the array crosses
``PARALLEL_MIN_ROWS`` — the shared-memory worker-pool twin from
:mod:`repro.perf.parallel`; otherwise the inline ``_*_impl`` body.  The
private impls hold the pure math and are what the worker processes
import, so both sides of every twin run literally the same code.

All kernels take/return ``int64`` arrays and never modify inputs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.euler.labels import JoinSpec, SplitSpec
from repro.perf import config as _config
from repro.perf.config import parallel_path_enabled


def _reroot_impl(labels: np.ndarray, d: int, size: int) -> np.ndarray:
    return (labels - d) % size


def _split_impl(labels: np.ndarray, spec: SplitSpec) -> Tuple[np.ndarray, np.ndarray]:
    inside = (labels > spec.e_min) & (labels < spec.e_max)
    after = labels > spec.e_max
    new_labels = np.where(
        inside,
        labels - (spec.e_min + 1),
        np.where(after, labels - spec.removed_steps, labels),
    )
    tours = np.where(inside, spec.inside_tour, spec.old_tour)
    return tours, new_labels


def _join_m1_impl(labels: np.ndarray, spec: JoinSpec) -> np.ndarray:
    return np.where(labels < spec.a, labels, labels + spec.size2 + 2)


def _join_m2_impl(labels: np.ndarray, spec: JoinSpec) -> np.ndarray:
    return spec.a + 1 + ((labels - spec.b) % spec.size2)


def reroot_labels(labels: np.ndarray, d: int, size: int) -> np.ndarray:
    """Vectorized Lemma 5.5: (labels - d) mod size."""
    if size <= 0:
        raise ValueError("cannot reroot an edgeless tour")
    if labels.size >= _config.PARALLEL_MIN_ROWS and parallel_path_enabled():
        from repro.perf.parallel import reroot_labels_parallel

        return reroot_labels_parallel(labels, d, size)
    return _reroot_impl(labels, d, size)


def split_labels(labels: np.ndarray, spec: SplitSpec) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized Lemma 5.6.

    Returns (tours, new_labels): ``tours[i]`` is ``spec.old_tour`` or
    ``spec.inside_tour``.  Labels equal to the removed edge's own labels
    raise (they have no image).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if np.any((labels == spec.e_min) | (labels == spec.e_max)):
        raise ValueError("the removed edge's own labels have no image")
    if labels.size >= _config.PARALLEL_MIN_ROWS and parallel_path_enabled():
        from repro.perf.parallel import split_labels_parallel

        return split_labels_parallel(labels, spec)
    return _split_impl(labels, spec)


def join_m1_labels(labels: np.ndarray, spec: JoinSpec) -> np.ndarray:
    """Vectorized Lemma 5.7, M1 side."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size >= _config.PARALLEL_MIN_ROWS and parallel_path_enabled():
        from repro.perf.parallel import join_m1_labels_parallel

        return join_m1_labels_parallel(labels, spec)
    return _join_m1_impl(labels, spec)


def join_m2_labels(labels: np.ndarray, spec: JoinSpec) -> np.ndarray:
    """Vectorized Lemma 5.7, M2 side."""
    if spec.size2 <= 0:
        raise ValueError("singleton M2 has no labels")
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size >= _config.PARALLEL_MIN_ROWS and parallel_path_enabled():
        from repro.perf.parallel import join_m2_labels_parallel

        return join_m2_labels_parallel(labels, spec)
    return _join_m2_impl(labels, spec)


def innermost_intervals(
    starts: np.ndarray, ends: np.ndarray, parents: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Vectorized ``BracketComponents._innermost`` over a label array.

    ``starts``/``ends``/``parents`` describe the sorted, properly nesting
    deleted intervals of one tour (§6.2, Figure 4); the result holds, per
    label, the index of the innermost interval strictly containing it, or
    ``-1`` for the outer region.  Labels must be valid survivors (inside
    the tour, not deleted) — the callers validate before dispatching here.
    """
    idx = np.searchsorted(starts, labels, side="right") - 1
    # Walk parents while the candidate interval closes at or before the
    # label.  Nesting depth bounds the iteration count (≤ #intervals).
    for _ in range(len(starts)):
        active = idx >= 0
        if not bool(active.any()):
            break
        step = np.zeros_like(active)
        step[active] = ends[idx[active]] <= labels[active]
        if not bool(step.any()):
            break
        idx[step] = parents[idx[step]]
    # A label equal to an interval's start belongs to the region outside it.
    at_start = idx >= 0
    at_start[at_start] = starts[idx[at_start]] == labels[at_start]
    idx[at_start] = parents[idx[at_start]]
    return idx


def apply_split_inplace(
    t_uv: np.ndarray, t_vu: np.ndarray, tours: np.ndarray, spec: SplitSpec
) -> None:
    """Apply a split to a machine's packed edge arrays (tour-filtered).

    ``t_uv``/``t_vu``/``tours`` are parallel arrays over the machine's
    MST edges; only rows with ``tours == spec.old_tour`` change.  Both
    labels of an edge always land on the same side, so the row's tour is
    derived from ``t_uv`` alone.
    """
    mask = tours == spec.old_tour
    if not np.any(mask):
        return
    new_t1_tours, new_t1 = split_labels(t_uv[mask], spec)
    _, new_t2 = split_labels(t_vu[mask], spec)
    t_uv[mask] = new_t1
    t_vu[mask] = new_t2
    tours[mask] = new_t1_tours


def apply_join_inplace(
    t_uv: np.ndarray, t_vu: np.ndarray, tours: np.ndarray, spec: JoinSpec
) -> None:
    """Apply a join to a machine's packed edge arrays (tour-filtered)."""
    m1 = tours == spec.tour1
    if np.any(m1):
        t_uv[m1] = join_m1_labels(t_uv[m1], spec)
        t_vu[m1] = join_m1_labels(t_vu[m1], spec)
    m2 = tours == spec.tour2
    if np.any(m2):
        t_uv[m2] = join_m2_labels(t_uv[m2], spec)
        t_vu[m2] = join_m2_labels(t_vu[m2], spec)
        tours[m2] = spec.tour1
