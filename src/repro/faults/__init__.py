"""Deterministic fault injection + checkpoint/recovery for the simulator.

The layer has three pieces, one per module:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`CrashEvent`: a
  seeded, serializable schedule of everything that will go wrong;
* :mod:`repro.faults.injector` — :class:`FaultInjector`: the network's
  fault hook, applying drop/duplicate/reorder/crash semantics per
  superstep and charging retransmission waves;
* :mod:`repro.faults.recovery` / :mod:`repro.faults.session` —
  :class:`CheckpointManager` and :class:`ChaosSession`: coordinated
  checkpoints, crash detection, rollback and logged-batch replay.

Contract: with an *empty* plan the whole layer is provably free (byte-
identical ledgers and traces); with any seeded plan the maintained
forest still matches the sequential oracle after every batch, and every
recovery round is charged on the ledger.  ``docs/fault_model.md`` has
the full model.
"""

from repro.faults.injector import FAULT_KINDS, FaultInjector
from repro.faults.plan import PLAN_SCHEMA, CrashEvent, FaultPlan
from repro.faults.recovery import OVERHEAD_PHASES, CheckpointManager, overhead_rounds
from repro.faults.runner import run_chaos
from repro.faults.session import ChaosSession

__all__ = [
    "PLAN_SCHEMA",
    "FAULT_KINDS",
    "OVERHEAD_PHASES",
    "CrashEvent",
    "FaultPlan",
    "FaultInjector",
    "CheckpointManager",
    "ChaosSession",
    "overhead_rounds",
    "run_chaos",
]
