"""The transport-level fault injector: the network's :class:`FaultHook`.

One :class:`FaultInjector` sits between protocol code and the wire.  Per
superstep it draws drop/duplicate/reorder decisions from its own seeded
generator (never the global RNG — strict mode's entropy guard stays
quiet), black-holes traffic touching crashed machines, and schedules
bounded retransmission waves for dropped messages.  Every decision is a
function of (plan seed, superstep order), so a chaos run replays
byte-for-byte.

Semantics, in the language of the synchronous model:

* **drop** — the message misses its round; the transport retransmits it
  in a follow-up wave charged under the ``fault-retry`` ledger phase.
  After ``max_retries`` waves a still-lost message raises
  :class:`~repro.errors.FaultTimeout` (bounded retry-with-timeout).
* **duplicate** — a second copy occupies the link (it inflates the
  charged load and may cost extra rounds); receivers deduplicate, so
  inboxes are unchanged.
* **reorder** — messages arrive within the round in a different order;
  the synchronous barrier plus receiver reassembly absorbs it, so it is
  counted and traced but leaves delivery untouched.
* **crash** — a fail-stop machine loses its volatile state and space
  ledger (:meth:`repro.sim.machine.Machine.crash_reset`).  Traffic *to*
  it black-holes (sent, charged, never delivered).  Traffic *from* it is
  impossible; under strict mode an attempt raises a typed
  ``machine-crash`` :class:`~repro.errors.StrictModeViolation`, and
  otherwise it is silently suppressed (never reaching the wire) until
  the driver recovers the machine (:mod:`repro.faults.session`).

The delivered multiset is emitted in original send order, so whenever no
machine is down the inboxes protocols see are *identical* to a fault-free
run — transport faults change only the bill, which is exactly what makes
recovery-round overhead measurable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import FaultTimeout, StrictModeViolation
from repro.faults.plan import CrashEvent, FaultPlan
from repro.sim.message import Message
from repro.sim.network import FaultOutcome, Network, RetryWave

#: Counter keys the injector maintains (and the ``fault`` event reports).
FAULT_KINDS = ("drop", "duplicate", "reorder", "blackhole", "suppressed")


class FaultInjector:
    """Implements the :class:`repro.sim.network.FaultHook` protocol."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        #: Machines currently down (fail-stop, awaiting restart).
        self.crashed: Set[int] = set()
        #: Cumulative per-kind fault counts plus crash/retry totals.
        self.counters: Dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self.counters["crashes"] = 0
        self.counters["retry_waves"] = 0
        #: Mid-batch crash events armed for the batch in flight.
        self._armed: List[CrashEvent] = []
        self._steps_in_batch = 0
        #: Driver callback fired at crash time (wipes the machine's
        #: protocol state; see ChaosSession).
        self.on_crash: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # FaultHook protocol
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Cheap per-superstep gate: False ⇒ the network path is untouched."""
        return (
            self.plan.transport_active
            or bool(self.crashed)
            or bool(self._armed)
        )

    def intercept(self, messages: List[Message], net: Network) -> FaultOutcome:
        """Decide one superstep's fate; called by ``Network.superstep``."""
        step = self._steps_in_batch
        self._steps_in_batch += 1
        for ev in [e for e in self._armed if e.superstep is not None
                   and e.superstep <= step]:
            self._armed.remove(ev)
            self.crash_now(net, ev.machine)

        counts: Dict[str, int] = {}

        def bump(kind: str, by: int = 1) -> None:
            counts[kind] = counts.get(kind, 0) + by

        wire: List[Message] = []
        deliverable: List[int] = []  # indices into `messages`
        for i, m in enumerate(messages):
            if m.src in self.crashed:
                # A dead machine cannot speak.  Strict mode treats the
                # attempt as a typed model violation (the driver should
                # have recovered before running protocol code); the
                # permissive mode suppresses it — the message never
                # reaches the wire and the batch's corruption is the
                # recovery protocol's problem.
                if net.strict:
                    exc = StrictModeViolation(
                        f"crashed machine {m.src} sent a message to {m.dst} "
                        "— recover the machine before it speaks again",
                        kind="machine-crash",
                    )
                    net._count_violation(exc)
                    raise exc
                bump("suppressed")
                continue
            wire.append(m)
            if m.dst in self.crashed:
                bump("blackhole")  # sent and charged, never delivered
                continue
            deliverable.append(i)

        p_drop, p_dup, p_reorder = self.plan.drop, self.plan.dup, self.plan.reorder
        delivered: List[int] = []
        pending: List[int] = []
        if self.plan.transport_active:
            for i in deliverable:
                if p_dup and self.rng.random() < p_dup:
                    wire.append(messages[i])
                    bump("duplicate")
                if p_drop and self.rng.random() < p_drop:
                    pending.append(i)
                    bump("drop")
                else:
                    delivered.append(i)
            if p_reorder and delivered and self.rng.random() < p_reorder:
                # Within-round reordering is absorbed by the barrier:
                # receivers reassemble by (source, send order).  Counted
                # and traced so the path is exercised and observable.
                bump("reorder")
        else:
            delivered = deliverable

        retries: List[RetryWave] = []
        while pending:
            if len(retries) >= self.plan.max_retries:
                raise FaultTimeout(
                    f"{len(pending)} message(s) still undelivered after "
                    f"{self.plan.max_retries} retransmission wave(s)"
                )
            pair_words: Dict[Tuple[int, int], int] = {}
            n_words = 0
            for i in pending:
                m = messages[i]
                pair_words[(m.src, m.dst)] = (
                    pair_words.get((m.src, m.dst), 0) + m.words
                )
                n_words += m.words
            retries.append(RetryWave(pair_words, len(pending), n_words))
            still: List[int] = []
            for i in pending:
                if self.rng.random() < p_drop:
                    still.append(i)
                    bump("drop")
                else:
                    delivered.append(i)
            pending = still
        if retries:
            self.counters["retry_waves"] += len(retries)

        for kind, by in sorted(counts.items()):
            self.counters[kind] = self.counters.get(kind, 0) + by
        recorder = net.ledger.recorder
        if recorder is not None and counts:
            recorder.emit("fault", kinds=dict(sorted(counts.items())))

        deliver = [messages[i] for i in sorted(delivered)]
        return FaultOutcome(wire=wire, deliver=deliver, retries=retries)

    # ------------------------------------------------------------------
    # crash/restart lifecycle (driven by the chaos session)
    # ------------------------------------------------------------------
    def arm_batch(self, mid_batch_crashes: List[CrashEvent]) -> None:
        """Arm a batch's mid-batch crash events; resets the step counter.

        Events left unfired by a short batch are disarmed — a crash
        scheduled past the batch's last superstep never happens.
        """
        self._armed = list(mid_batch_crashes)
        self._steps_in_batch = 0

    def crash_now(self, net: Network, machine: int) -> None:
        """Fail-stop ``machine`` immediately (idempotent while down)."""
        if machine in self.crashed:
            return
        if not 0 <= machine < net.k:
            raise ValueError(f"machine id {machine} outside [0, {net.k})")
        self.crashed.add(machine)
        self.counters["crashes"] += 1
        net.machines[machine].crash_reset()
        if self.on_crash is not None:
            self.on_crash(machine)
        recorder = net.ledger.recorder
        if recorder is not None:
            recorder.emit("machine_crash", machine=machine)

    def restart(self, net: Network, machine: int) -> None:
        """Bring a crashed machine back (state restore is the caller's job)."""
        if machine not in self.crashed:
            return
        self.crashed.discard(machine)
        recorder = net.ledger.recorder
        if recorder is not None:
            recorder.emit("machine_restart", machine=machine)
