"""Deterministic fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a *complete, seeded* description of every fault a
chaos run may inject: transport-level message faults (drop, duplicate,
within-round reorder) as probabilities drawn from one seeded generator,
and machine crashes as an explicit schedule of :class:`CrashEvent`
entries.  Two runs of the same plan over the same workload inject the
exact same faults — chaos here is an adversary you can replay, diff and
bisect, not noise.

Plans serialize to a flat JSON spec (``to_spec`` / ``from_spec``) so the
``repro chaos`` CLI can load them from a file, and crash schedules have
a compact ``batch:machine[:superstep]`` string form for command lines.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Spec format tag; readers refuse specs with a different tag.
PLAN_SCHEMA = "repro-fault-plan/1"


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled fail-stop crash (with restart at the next barrier).

    ``superstep=None`` crashes the machine at the batch barrier, *before*
    batch ``batch`` runs (a clean crash: recovery happens before the
    batch touches the wire).  An integer ``superstep`` crashes it
    mid-batch, once that many supersteps of the batch have started — the
    dirty case, where the in-flight batch is lost and must be rolled
    back and redone.
    """

    batch: int
    machine: int
    superstep: Optional[int] = None

    def __post_init__(self) -> None:
        if self.batch < 0:
            raise ValueError("crash batch index must be >= 0")
        if self.machine < 0:
            raise ValueError("crash machine id must be >= 0")
        if self.superstep is not None and self.superstep < 0:
            raise ValueError("crash superstep offset must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable schedule of everything that will go wrong.

    ``drop``/``dup``/``reorder`` are per-message probabilities in
    ``[0, 1)`` (drop strictly below 1: the bounded-retry transport must
    be *able* to succeed).  ``crashes`` is the explicit crash schedule.
    ``max_retries`` bounds the retransmission waves a single superstep
    may need before the transport gives up with
    :class:`~repro.errors.FaultTimeout`.
    """

    seed: int = 0
    drop: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0
    crashes: Tuple[CrashEvent, ...] = field(default_factory=tuple)
    max_retries: int = 12

    def __post_init__(self) -> None:
        for name in ("drop", "dup", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} probability must be in [0, 1), got {p}")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        # Tolerate (and normalize) a list in the crashes field.
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def transport_active(self) -> bool:
        """Does this plan perturb messages on the wire at all?"""
        return self.drop > 0 or self.dup > 0 or self.reorder > 0

    @property
    def empty(self) -> bool:
        """An empty plan injects nothing — the hook layer must then be
        provably free: identical ledgers, transcripts and inboxes."""
        return not self.transport_active and not self.crashes

    def crashes_for_batch(
        self, batch_index: int
    ) -> Tuple[List[CrashEvent], List[CrashEvent]]:
        """The (barrier, mid-batch) crash events scheduled for a batch."""
        pre = [c for c in self.crashes
               if c.batch == batch_index and c.superstep is None]
        mid = [c for c in self.crashes
               if c.batch == batch_index and c.superstep is not None]
        return pre, mid

    def validate_machines(self, k: int) -> None:
        """Raise if any scheduled crash names a machine outside [0, k)."""
        for c in self.crashes:
            if not 0 <= c.machine < k:
                raise ValueError(
                    f"crash schedules machine {c.machine} outside [0, {k})"
                )

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_spec(self) -> Dict[str, Any]:
        """A JSON-compatible flat spec (round-trips through from_spec)."""
        spec = asdict(self)
        spec["schema"] = PLAN_SCHEMA
        spec["crashes"] = [
            {k: v for k, v in asdict(c).items() if v is not None}
            for c in self.crashes
        ]
        return spec

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FaultPlan":
        """Parse a spec dict (as loaded from a ``repro chaos`` plan file)."""
        schema = spec.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ValueError(
                f"unsupported fault-plan schema {schema!r} "
                f"(this reader speaks {PLAN_SCHEMA!r})"
            )
        known = {"seed", "drop", "dup", "reorder", "crashes", "max_retries"}
        unknown = sorted(set(spec) - known - {"schema"})
        if unknown:
            raise ValueError(f"unknown fault-plan fields: {unknown}")
        crashes = tuple(
            CrashEvent(
                batch=int(c["batch"]),
                machine=int(c["machine"]),
                superstep=None if c.get("superstep") is None else int(c["superstep"]),
            )
            for c in spec.get("crashes", ())
        )
        return cls(
            seed=int(spec.get("seed", 0)),
            drop=float(spec.get("drop", 0.0)),
            dup=float(spec.get("dup", 0.0)),
            reorder=float(spec.get("reorder", 0.0)),
            crashes=crashes,
            max_retries=int(spec.get("max_retries", 12)),
        )

    @staticmethod
    def parse_crashes(text: str) -> Tuple[CrashEvent, ...]:
        """Parse ``"batch:machine[:superstep],..."`` (the CLI short form)."""
        events: List[CrashEvent] = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            parts = item.split(":")
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"bad crash spec {item!r} (want batch:machine[:superstep])"
                )
            events.append(
                CrashEvent(
                    batch=int(parts[0]),
                    machine=int(parts[1]),
                    superstep=int(parts[2]) if len(parts) == 3 else None,
                )
            )
        return tuple(events)
