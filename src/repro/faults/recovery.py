"""Checkpoint/rollback recovery for :class:`DynamicMST` under crashes.

The recovery protocol is coordinated checkpointing with log-based
replay, the classic rollback-recovery discipline adapted to the
synchronous k-machine model:

* **checkpoint** — at a batch barrier, every machine writes its Euler
  state to stable storage.  Coordinating the cut costs one
  synchronization round, charged under the ``checkpoint`` ledger phase;
  the write itself is local I/O and moves nothing over the wire.
  Snapshots are *compact*: the per-machine records of
  :mod:`repro.core.snapshot` (tours, MST replicas, witnesses, graph
  shards) — O(local state) words, no derived indexes.
* **log** — update batches applied since the last checkpoint are kept by
  the driver (they are the system's input, not cluster state).
* **rollback + replay** — on a crash, every machine reloads the last
  checkpoint from stable storage (local read, no wire cost), the
  crashed machine restarts with a zeroed space ledger, and the logged
  batches are re-executed through the ordinary update protocols.  The
  replay's rounds are real protocol rounds and land on the live ledger
  under the ``recovery`` phase — recovery overhead is measured in the
  same currency as Theorem 6.6's update bounds, so round-overhead
  claims stay checkable under faults.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.api import DynamicMST
from repro.core.snapshot import restore_into, to_snapshot
from repro.errors import ReproError
from repro.graphs.streams import Update

#: Ledger phases charged by the fault/recovery machinery.  Their summed
#: rounds are the "recovery overhead" the bench harness reports.
OVERHEAD_PHASES = ("checkpoint", "recovery", "fault-retry")


def overhead_rounds(dm: DynamicMST) -> int:
    """Rounds charged to fault/recovery phases on ``dm``'s ledger.

    Ledger phases nest: a charge is attributed to *every* name on the
    phase stack, so a retransmission wave fired during replay lands on
    both ``recovery`` and ``fault-retry``.  This sum is therefore an
    inclusive upper envelope (exact whenever no retry fires inside a
    replay); callers wanting the per-phase split should read
    ``dm.net.ledger.phases`` directly.
    """
    phases = dm.net.ledger.phases
    total = 0
    for name in OVERHEAD_PHASES:
        stats = phases.get(name)
        if stats is not None:
            total += stats.rounds
    return total


class CheckpointManager:
    """Coordinated snapshots plus the since-checkpoint update log."""

    def __init__(self, dm: DynamicMST, every: Optional[int] = None) -> None:
        if every is not None and every < 1:
            raise ValueError("checkpoint interval must be >= 1 (or None)")
        self.dm = dm
        self.every = every
        self.log: List[List[Update]] = []
        self._snap: Optional[Dict[str, Any]] = None
        self.checkpoints = 0

    @property
    def has_checkpoint(self) -> bool:
        return self._snap is not None

    def checkpoint(self, batch_index: int) -> None:
        """Take a coordinated snapshot at a batch barrier.

        Charges one synchronization round (the coordinated cut) under the
        ``checkpoint`` phase; the state write is local stable storage.
        """
        net = self.dm.net
        with net.ledger.phase("checkpoint"):
            net.charge_rounds(1)
        self._snap = to_snapshot(self.dm)
        self.log.clear()
        self.checkpoints += 1
        recorder = net.ledger.recorder
        if recorder is not None:
            recorder.emit(
                "checkpoint",
                batch=batch_index,
                machines=self.dm.k,
                log_cleared=True,
            )

    def record(self, batch: Sequence[Update]) -> None:
        """Append one applied batch to the since-checkpoint log."""
        self.log.append(list(batch))

    def due(self, applied_batches: int) -> bool:
        """Is a periodic checkpoint due after this many applied batches?"""
        return self.every is not None and applied_batches % self.every == 0

    def rollback(self) -> List[List[Update]]:
        """Restore the last checkpoint in place; return batches to replay.

        The log is *kept*: the replayed batches are still "since the
        checkpoint" until the next checkpoint clears them, so a second
        crash during or after replay rolls back to the same cut and
        replays the same log — recovery is idempotent.
        """
        if self._snap is None:
            raise ReproError("no checkpoint to roll back to")
        restore_into(self.dm, self._snap)
        return [list(b) for b in self.log]
