"""Drive a named scenario through a fault plan, checked per batch.

Shared by ``repro chaos`` and the benchmark harness's ``--faults``
trajectory: one function that builds the scenario's workload, runs it
under a :class:`~repro.faults.session.ChaosSession`, and cross-checks
the maintained forest against the sequential Kruskal oracle after every
batch — the acceptance criterion of the fault model ("under any seeded
fault plan the forest matches the oracle after every batch").
"""

from __future__ import annotations

from typing import IO, Any, Dict, List, Optional, Union

from repro.faults.plan import FaultPlan
from repro.faults.session import ChaosSession


def run_chaos(
    scenario: Any,
    plan: FaultPlan,
    checkpoint_every: Optional[int] = 2,
    engine: str = "sample_gather",
    sink: Optional[Union[str, IO[str]]] = None,
    backend: Optional[str] = None,
    telemetry: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run ``scenario``'s churn workload under ``plan``; return a summary.

    ``scenario`` is a :class:`repro.trace.scenarios.Scenario` (duck-typed:
    ``n``/``m``/``k``/``batch``/``n_batches``/``seed``/``init``).  When
    ``sink`` is given, a trace recorder rides the whole run, so fault,
    checkpoint and recovery events land in the JSONL stream.
    ``backend`` pins an execution backend by name (falls back to the
    scenario's ``backend`` field, then the ambient default).  Fault
    decisions always run in the parent process — the plane path routes
    per-message while a hook is enabled — so injection stays
    seeded-deterministic under every backend.
    ``telemetry`` is an extra :class:`~repro.sim.metrics.TraceSink`
    (typically a :class:`repro.obs.BusSink`) teed alongside the file
    recorder; teeing never changes file bytes or ledger digests.

    The summary's ``ok`` is True iff the maintained forest weight and
    edge multiset matched the oracle after *every* batch and the final
    full consistency check passed.
    """
    import numpy as np

    from repro.core import DynamicMST
    from repro.graphs import churn_stream, random_weighted_graph
    from repro.graphs.mst import kruskal_msf, msf_key_multiset, msf_weight
    from repro.trace.recorder import TraceRecorder

    rng = np.random.default_rng(scenario.seed)
    graph = random_weighted_graph(scenario.n, scenario.m, rng)
    stream = list(
        churn_stream(graph.copy(), scenario.batch, scenario.n_batches, rng=rng)
    )
    plan.validate_machines(scenario.k)

    rec: Optional[TraceRecorder] = None
    if sink is not None:
        rec = TraceRecorder(
            sink,
            meta={
                "scenario": scenario.name,
                "n": scenario.n,
                "m": scenario.m,
                "k": scenario.k,
                "seed": scenario.seed,
                "fault_plan": plan.to_spec(),
            },
        )
    if rec is not None and telemetry is not None:
        from repro.obs.sink import TeeSink

        trace_sink: Optional[Any] = TeeSink(rec, telemetry)
    else:
        trace_sink = rec if rec is not None else telemetry
    if backend is None:
        backend = getattr(scenario, "backend", None)
    dm = DynamicMST.build(
        graph, scenario.k, rng=rng, init=scenario.init, engine=engine,
        trace=trace_sink, backend=backend,
    )
    mirror = graph.copy()
    batches: List[Dict[str, Any]] = []
    mismatches = 0
    try:
        with ChaosSession(dm, plan, checkpoint_every=checkpoint_every) as chaos:
            for batch in stream:
                report = chaos.apply(batch)
                for upd in batch:
                    if upd.kind == "add":
                        mirror.add_edge(upd.u, upd.v, upd.weight)
                    else:
                        mirror.remove_edge(upd.u, upd.v)
                oracle = kruskal_msf(mirror)
                want = msf_weight(oracle)
                got = dm.total_weight()
                ok = (
                    abs(want - got) < 1e-9
                    and msf_key_multiset(oracle) == msf_key_multiset(dm.msf_edges())
                )
                mismatches += 0 if ok else 1
                batches.append(
                    {"size": report.size, "rounds": report.rounds,
                     "weight": round(got, 9), "oracle_weight": round(want, 9),
                     "ok": ok}
                )
            dm.check()
            summary: Dict[str, Any] = {
                "scenario": scenario.name,
                "plan": plan.to_spec(),
                "ok": mismatches == 0,
                "mismatches": mismatches,
                "rounds": dm.net.ledger.rounds,
                "messages": dm.net.ledger.messages,
                "words": dm.net.ledger.words,
                "digest": dm.net.ledger.digest(),
                "msf_weight": round(dm.total_weight(), 9),
                "overhead_rounds": chaos.overhead_rounds,
                "faults": dict(chaos.injector.counters),
                "recoveries": chaos.counters["recoveries"],
                "replayed_batches": chaos.counters["replayed_batches"],
                "checkpoints": chaos.ckpt.checkpoints,
                "batches": batches,
            }
    finally:
        if trace_sink is not None:
            dm.detach_trace()
        if rec is not None:
            rec.close()
    return summary
