"""ChaosSession: drive a :class:`DynamicMST` through a fault plan.

The session is the *driver-side* recovery coordinator.  It owns the
:class:`~repro.faults.injector.FaultInjector` (wired into the network as
its fault hook) and a :class:`~repro.faults.recovery.CheckpointManager`,
and runs each update batch through the crash/recover state machine:

1. fire the plan's barrier crashes for this batch; if anything is down,
   recover *before* the batch touches the wire (the clean case);
2. arm the plan's mid-batch crashes and attempt the batch.  A mid-batch
   crash corrupts the attempt — under strict mode the dead machine's
   first send raises a typed ``machine-crash`` violation immediately; in
   permissive mode the attempt may finish on a corrupt state or die with
   an arbitrary protocol error.  Either way the session detects the
   crash afterwards, recovers, and redoes the batch once;
3. log the applied batch and take a periodic checkpoint when due.

Recovery = one detection/resync barrier round (``recovery`` phase) +
rollback to the last coordinated checkpoint + restart of the dead
machines + replay of the logged batches through the ordinary update
protocols.  Replay rounds land on the live ledger, so the fault run's
bill honestly includes its recovery cost.  The maintained forest after
every :meth:`apply` equals the fault-free forest (the protocols are
exact, and replay re-derives the same state), which is what the
differential chaos suite checks against the sequential oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.core.api import BatchReport, DynamicMST
from repro.core.state import MachineState
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recovery import CheckpointManager, overhead_rounds
from repro.graphs.streams import Update


class ChaosSession:
    """Apply update batches under a seeded fault plan, with recovery."""

    def __init__(
        self,
        dm: DynamicMST,
        plan: FaultPlan,
        checkpoint_every: Optional[int] = None,
        mode: str = "auto",
    ) -> None:
        plan.validate_machines(dm.k)
        self.dm = dm
        self.plan = plan
        self.mode = mode
        self.injector = FaultInjector(plan)
        self.injector.on_crash = self._wipe_state
        dm.attach_faults(self.injector)
        self.ckpt = CheckpointManager(dm, every=checkpoint_every)
        self.batch_index = 0
        self.counters: Dict[str, int] = {"recoveries": 0, "replayed_batches": 0}
        if plan.crashes or checkpoint_every is not None:
            # The initial checkpoint is the recovery anchor: a batch-0
            # crash must have somewhere to roll back to.
            self.ckpt.checkpoint(self.batch_index)

    # ------------------------------------------------------------------
    def __enter__(self) -> "ChaosSession":
        return self

    def __exit__(
        self, exc_type: Optional[Type[BaseException]], exc: object, tb: object
    ) -> None:
        self.close()

    def close(self) -> None:
        """Detach the fault hook; the structure keeps working fault-free."""
        self.dm.detach_faults()

    # ------------------------------------------------------------------
    def apply(self, batch: List[Update]) -> BatchReport:
        """Apply one batch under the plan, recovering from any crash."""
        pre, mid = self.plan.crashes_for_batch(self.batch_index)
        for ev in pre:
            self.injector.crash_now(self.dm.net, ev.machine)
        if self.injector.crashed:
            self._recover()
        self.injector.arm_batch(mid)
        try:
            report: Optional[BatchReport] = self.dm.apply(batch, mode=self.mode)
        except Exception:
            if not self.injector.crashed:
                raise  # a real bug, not crash fallout — don't mask it
            # Crash fallout: the attempt died on a strict machine-crash
            # violation or a downstream protocol error.  The state is
            # corrupt either way; rollback makes the exception moot.
            report = None
        if self.injector.crashed:
            self._recover()
            report = self.dm.apply(batch, mode=self.mode)
        assert report is not None
        self.ckpt.record(batch)
        self.batch_index += 1
        if self.ckpt.has_checkpoint and self.ckpt.due(self.batch_index):
            self.ckpt.checkpoint(self.batch_index)
        return report

    # ------------------------------------------------------------------
    @property
    def overhead_rounds(self) -> int:
        """Rounds charged to checkpoint/recovery/retransmission phases."""
        return overhead_rounds(self.dm)

    # ------------------------------------------------------------------
    def _wipe_state(self, machine: int) -> None:
        """Crash callback: the machine's protocol state is volatile."""
        net = self.dm.net
        self.dm.states[machine] = MachineState(
            machine, [], machine=net.machines[machine]
        )

    def _recover(self) -> None:
        """Rollback + restart + replay; every round lands on the ledger."""
        net = self.dm.net
        dead = sorted(self.injector.crashed)
        # Unfired mid-batch crash events must not leak into the replay's
        # superstep count (the aborted attempt is gone with its batch).
        self.injector.arm_batch([])
        recorder = net.ledger.recorder
        if recorder is not None:
            recorder.emit("recovery_start", machines=dead)
        before = net.ledger.snapshot()
        with net.ledger.phase("recovery"):
            # Failure detection + resynchronization barrier.
            net.charge_rounds(1)
            replay = self.ckpt.rollback()
            for m in dead:
                self.injector.restart(net, m)
            for logged in replay:
                self.dm.apply(logged, mode=self.mode)
        delta = net.ledger.since(before)
        self.counters["recoveries"] += 1
        self.counters["replayed_batches"] += len(replay)
        if recorder is not None:
            recorder.emit(
                "recovery_end",
                machines=dead,
                rounds=delta.rounds,
                replayed=len(replay),
            )
