"""Graph substrate: weighted graphs, DSU, reference MSTs, generators, streams.

This package is the sequential foundation everything else is checked
against.  The distributed algorithms in :mod:`repro.core` never import the
reference MST routines at runtime except through explicitly-labelled
*local* computation steps (a machine computing on its own edges); the
routines here are otherwise used as test oracles.
"""

from repro.graphs.graph import Edge, WeightedGraph, edge_key, normalize
from repro.graphs.dsu import DisjointSet
from repro.graphs.mst import (
    boruvka_msf,
    forest_digest,
    kruskal_msf,
    local_msf,
    msf_weight,
    prim_msf,
)
from repro.graphs.validation import (
    is_forest,
    is_spanning_forest,
    verify_msf_cycle_property,
    verify_msf_exact,
)
from repro.graphs.generators import (
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    gnp_connected_graph,
    grid_graph,
    path_graph,
    powerlaw_graph,
    random_forest,
    random_tree,
    random_weighted_graph,
    star_graph,
)
from repro.graphs.streams import (
    ArrivalStream,
    TimedUpdate,
    Update,
    UpdateStream,
    adversarial_arrival_stream,
    adversarial_clique_stream,
    churn_stream,
    flash_crowd_arrival_stream,
    flash_crowd_stream,
    growing_stream,
    shrinking_stream,
    sliding_window_arrival_stream,
    sliding_window_stream,
    timed_arrivals,
    uniform_arrival_stream,
)

__all__ = [
    "Edge",
    "WeightedGraph",
    "edge_key",
    "normalize",
    "DisjointSet",
    "kruskal_msf",
    "prim_msf",
    "boruvka_msf",
    "local_msf",
    "msf_weight",
    "is_forest",
    "is_spanning_forest",
    "verify_msf_cycle_property",
    "verify_msf_exact",
    "random_weighted_graph",
    "gnp_connected_graph",
    "grid_graph",
    "powerlaw_graph",
    "random_tree",
    "random_forest",
    "path_graph",
    "star_graph",
    "cycle_graph",
    "complete_graph",
    "caterpillar_graph",
    "forest_digest",
    "Update",
    "UpdateStream",
    "TimedUpdate",
    "ArrivalStream",
    "churn_stream",
    "sliding_window_stream",
    "growing_stream",
    "shrinking_stream",
    "adversarial_clique_stream",
    "flash_crowd_stream",
    "timed_arrivals",
    "uniform_arrival_stream",
    "sliding_window_arrival_stream",
    "flash_crowd_arrival_stream",
    "adversarial_arrival_stream",
]
