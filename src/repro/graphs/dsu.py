"""Disjoint-set union (union-find) with path compression and union by size.

Used by the reference MST engines, by machine-local cycle deletion in the
batch-deletion reduction (§6.2 step 3), and by the validators.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set


class DisjointSet:
    """Union-find over arbitrary hashable elements.

    Elements are created lazily on first use; :meth:`find` on an unseen
    element makes it a singleton.
    """

    __slots__ = ("_parent", "_size", "_n_components")

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._n_components = 0
        for x in elements:
            self.add(x)

    def add(self, x: Hashable) -> None:
        if x not in self._parent:
            self._parent[x] = x
            self._size[x] = 1
            self._n_components += 1

    def find(self, x: Hashable) -> Hashable:
        self.add(x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, x: Hashable, y: Hashable) -> bool:
        """Merge the sets of ``x`` and ``y``; return True if they were distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self._n_components -= 1
        return True

    def connected(self, x: Hashable, y: Hashable) -> bool:
        return self.find(x) == self.find(y)

    def component_size(self, x: Hashable) -> int:
        return self._size[self.find(x)]

    @property
    def n_components(self) -> int:
        return self._n_components

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def components(self) -> List[Set[Hashable]]:
        """Materialize the components as a list of sets (test/debug helper)."""
        groups: Dict[Hashable, Set[Hashable]] = {}
        for x in self._parent:
            groups.setdefault(self.find(x), set()).add(x)
        return list(groups.values())

    def roots(self) -> Iterator[Hashable]:
        for x in self._parent:
            if self._parent[x] == x:
                yield x
