"""Seeded graph generators used by tests, examples and benchmarks.

All generators take a :class:`numpy.random.Generator` (or an int seed) and
are fully deterministic given the seed.  Weights are drawn uniformly from
(0, 1); uniqueness of the MSF is guaranteed by the global edge tie-break,
so duplicate weights are harmless.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

from repro.graphs.graph import WeightedGraph, normalize

RngLike = Union[int, np.random.Generator, None]


def as_rng(rng: RngLike) -> np.random.Generator:
    """Coerce an int seed / None / Generator into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _weights(rng: np.random.Generator, count: int) -> np.ndarray:
    return rng.random(count)


def random_tree(n: int, rng: RngLike = None) -> WeightedGraph:
    """Uniform random labelled tree on {0..n-1} via a random attachment order."""
    rng = as_rng(rng)
    g = WeightedGraph(range(n))
    if n <= 1:
        return g
    order = rng.permutation(n)
    w = _weights(rng, n - 1)
    for i in range(1, n):
        parent = order[rng.integers(0, i)]
        g.add_edge(int(order[i]), int(parent), float(w[i - 1]))
    return g


def random_forest(n: int, n_trees: int, rng: RngLike = None) -> WeightedGraph:
    """Forest of ``n_trees`` trees partitioning {0..n-1}."""
    if not 1 <= n_trees <= max(n, 1):
        raise ValueError("need 1 <= n_trees <= n")
    rng = as_rng(rng)
    g = WeightedGraph(range(n))
    if n == 0:
        return g
    # Random partition of vertices into n_trees non-empty groups.
    perm = list(map(int, rng.permutation(n)))
    cuts = sorted(rng.choice(np.arange(1, n), size=n_trees - 1, replace=False)) if n_trees > 1 else []
    groups: List[List[int]] = []
    prev = 0
    for c in list(cuts) + [n]:
        groups.append(perm[prev:int(c)])
        prev = int(c)
    for grp in groups:
        for i in range(1, len(grp)):
            parent = grp[int(rng.integers(0, i))]
            g.add_edge(grp[i], parent, float(rng.random()))
    return g


def random_weighted_graph(
    n: int,
    m: int,
    rng: RngLike = None,
    connected: bool = True,
) -> WeightedGraph:
    """Random graph with exactly ``m`` edges (a spanning tree first if connected)."""
    rng = as_rng(rng)
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ValueError(f"m={m} exceeds max {max_m} for n={n}")
    if connected and m < n - 1:
        raise ValueError(f"connected graph on n={n} needs m >= {n - 1}")
    g = random_tree(n, rng) if connected else WeightedGraph(range(n))
    need = m - g.m
    while need > 0:
        # Vectorized rejection sampling of candidate pairs.
        batch = max(16, 2 * need)
        us = rng.integers(0, n, size=batch)
        vs = rng.integers(0, n, size=batch)
        ws = _weights(rng, batch)
        for u, v, w in zip(us, vs, ws):
            if u == v:
                continue
            u, v = normalize(int(u), int(v))
            if g.has_edge(u, v):
                continue
            g.add_edge(u, v, float(w))
            need -= 1
            if need == 0:
                break
    return g


def gnp_connected_graph(n: int, p: float, rng: RngLike = None) -> WeightedGraph:
    """G(n, p) plus a random spanning tree so the result is connected."""
    rng = as_rng(rng)
    g = random_tree(n, rng)
    if n >= 2 and p > 0:
        # Sample the upper triangle in one vectorized pass.
        iu, ju = np.triu_indices(n, k=1)
        mask = rng.random(iu.shape[0]) < p
        ws = _weights(rng, int(mask.sum()))
        wi = 0
        for u, v in zip(iu[mask], ju[mask]):
            if not g.has_edge(int(u), int(v)):
                g.add_edge(int(u), int(v), float(ws[wi]))
            wi += 1
    return g


def grid_graph(rows: int, cols: int, rng: RngLike = None) -> WeightedGraph:
    """rows x cols grid with random weights; vertex (r, c) -> r * cols + c."""
    rng = as_rng(rng)
    g = WeightedGraph(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1, float(rng.random()))
            if r + 1 < rows:
                g.add_edge(v, v + cols, float(rng.random()))
    return g


def powerlaw_graph(n: int, attach: int = 2, rng: RngLike = None) -> WeightedGraph:
    """Barabási–Albert preferential attachment with ``attach`` edges per vertex.

    Models the skewed-degree social/web graphs motivating the cluster
    setting; high-degree hubs stress the Δ term in the space bound.
    """
    if n < attach + 1:
        raise ValueError("need n >= attach + 1")
    rng = as_rng(rng)
    g = WeightedGraph(range(n))
    targets: List[int] = list(range(attach + 1))
    # Seed clique on the first attach+1 vertices.
    for i in range(attach + 1):
        for j in range(i + 1, attach + 1):
            g.add_edge(i, j, float(rng.random()))
    repeated: List[int] = []
    for i in range(attach + 1):
        repeated.extend([i] * attach)
    for v in range(attach + 1, n):
        chosen: set[int] = set()
        while len(chosen) < attach:
            chosen.add(int(repeated[int(rng.integers(0, len(repeated)))]))
        for t in chosen:
            g.add_edge(v, t, float(rng.random()))
            repeated.append(t)
        repeated.extend([v] * attach)
    return g


def path_graph(n: int, weights: Optional[Iterable[float]] = None, rng: RngLike = None) -> WeightedGraph:
    rng = as_rng(rng)
    g = WeightedGraph(range(n))
    ws = list(weights) if weights is not None else list(_weights(rng, max(n - 1, 0)))
    for i in range(n - 1):
        g.add_edge(i, i + 1, float(ws[i]))
    return g


def cycle_graph(n: int, rng: RngLike = None) -> WeightedGraph:
    rng = as_rng(rng)
    g = path_graph(n, rng=rng)
    if n >= 3:
        g.add_edge(n - 1, 0, float(rng.random()))
    return g


def star_graph(n: int, center: int = 0, rng: RngLike = None) -> WeightedGraph:
    """Star on n vertices — the max-Δ stress case for vertex partitioning."""
    rng = as_rng(rng)
    g = WeightedGraph(range(n))
    for v in range(n):
        if v != center:
            g.add_edge(center, v, float(rng.random()))
    return g


def complete_graph(n: int, rng: RngLike = None) -> WeightedGraph:
    rng = as_rng(rng)
    g = WeightedGraph(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, float(rng.random()))
    return g


def caterpillar_graph(spine: int, legs_per_vertex: int, rng: RngLike = None) -> WeightedGraph:
    """Path of ``spine`` vertices, each with pendant legs — deep/wide tree mix."""
    rng = as_rng(rng)
    n = spine * (1 + legs_per_vertex)
    g = WeightedGraph(range(n))
    for i in range(spine - 1):
        g.add_edge(i, i + 1, float(rng.random()))
    nxt = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            g.add_edge(i, nxt, float(rng.random()))
            nxt += 1
    return g
