"""Weighted undirected graphs with a total order on edges.

The paper assumes the MST is unique; as is standard, we make it unique by
breaking weight ties with the lexicographic endpoint order.  Every module
in this repository — the sequential oracles, the k-machine algorithms, the
MPC layer and the congested-clique engines — compares edges with
:func:`edge_key`, so they all agree on a single minimum spanning forest.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, NamedTuple, Tuple


def normalize(u: int, v: int) -> Tuple[int, int]:
    """Return the canonical (min, max) ordering of an undirected edge."""
    if u == v:
        raise ValueError(f"self-loop ({u}, {v}) is not allowed")
    return (u, v) if u < v else (v, u)


class Edge(NamedTuple):
    """An undirected weighted edge with canonical endpoint order (u < v)."""

    u: int
    v: int
    weight: float

    @staticmethod
    def of(u: int, v: int, weight: float) -> "Edge":
        a, b = normalize(u, v)
        return Edge(a, b, weight)

    @property
    def endpoints(self) -> Tuple[int, int]:
        return (self.u, self.v)

    def key(self) -> Tuple[float, int, int]:
        """Total-order key: (weight, u, v).  Shared by every MST engine."""
        return (self.weight, self.u, self.v)

    def other(self, x: int) -> int:
        """Return the endpoint that is not ``x``."""
        if x == self.u:
            return self.v
        if x == self.v:
            return self.u
        raise ValueError(f"vertex {x} is not an endpoint of {self}")


def edge_key(edge: Edge) -> Tuple[float, int, int]:
    """Module-level alias of :meth:`Edge.key` for use as a sort key."""
    return (edge.weight, edge.u, edge.v)


class WeightedGraph:
    """A mutable weighted undirected graph without parallel edges.

    Vertices are integers.  The vertex set is explicit: isolated vertices
    are allowed and preserved (the dynamic algorithms need the vertex set
    to be stable while edges churn).
    """

    __slots__ = ("_adj",)

    def __init__(self, vertices: Iterable[int] = ()) -> None:
        self._adj: Dict[int, Dict[int, float]] = {}
        for v in vertices:
            self._adj.setdefault(v, {})

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge | Tuple[int, int, float]], vertices: Iterable[int] = ()
    ) -> "WeightedGraph":
        g = cls(vertices)
        for e in edges:
            u, v, w = e
            g.add_edge(u, v, w)
        return g

    def copy(self) -> "WeightedGraph":
        g = WeightedGraph()
        g._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        return g

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        self._adj.setdefault(v, {})

    def add_edge(self, u: int, v: int, weight: float) -> None:
        u, v = normalize(u, v)
        if v in self._adj.get(u, ()):
            raise ValueError(f"edge ({u}, {v}) already present")
        self._adj.setdefault(u, {})[v] = weight
        self._adj.setdefault(v, {})[u] = weight

    def remove_edge(self, u: int, v: int) -> Edge:
        u, v = normalize(u, v)
        try:
            w = self._adj[u].pop(v)
        except KeyError:
            raise KeyError(f"edge ({u}, {v}) not present") from None
        del self._adj[v][u]
        return Edge(u, v, w)

    def remove_vertex(self, v: int) -> None:
        for nbr in list(self._adj.get(v, ())):
            del self._adj[nbr][v]
        self._adj.pop(v, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_vertex(self, v: int) -> bool:
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        u, v = normalize(u, v)
        return v in self._adj.get(u, ())

    def weight(self, u: int, v: int) -> float:
        u, v = normalize(u, v)
        try:
            return self._adj[u][v]
        except KeyError:
            raise KeyError(f"edge ({u}, {v}) not present") from None

    def edge(self, u: int, v: int) -> Edge:
        return Edge(*normalize(u, v), self.weight(u, v))

    def neighbors(self, v: int) -> Iterator[int]:
        return iter(self._adj.get(v, ()))

    def degree(self, v: int) -> int:
        return len(self._adj.get(v, ()))

    def max_degree(self) -> int:
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    @property
    def n(self) -> int:
        return len(self._adj)

    @property
    def m(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u < v:
                    yield Edge(u, v, w)

    def incident_edges(self, v: int) -> Iterator[Edge]:
        for nbr, w in self._adj.get(v, {}).items():
            yield Edge(*normalize(v, nbr), w)

    def total_weight(self) -> float:
        return sum(e.weight for e in self.edges())

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, int):
            return item in self._adj
        if isinstance(item, tuple) and len(item) == 2:
            return self.has_edge(*item)
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.n}, m={self.m})"
