"""Graph and stream I/O: plain-text edge lists and JSON streams.

Formats:

* **edge list** (``.edges``) — one ``u v weight`` triple per line;
  ``#`` comments and blank lines ignored; isolated vertices may be
  declared with a single-token ``v`` line.
* **update stream** (``.json``) — ``{"initial": {...}, "batches":
  [[{"op": "add", "u":, "v":, "w":}, ...], ...]}``.

Both roundtrip exactly (weights via ``repr``-precision floats).
"""

from __future__ import annotations

import json
from typing import List

from repro.errors import ReproError
from repro.graphs.graph import WeightedGraph
from repro.graphs.streams import Update, UpdateStream


def write_edge_list(graph: WeightedGraph, path: str) -> None:
    with open(path, "w") as f:
        f.write("# repro edge list: u v weight (isolated vertices: single token)\n")
        touched = set()
        for e in sorted(graph.edges(), key=lambda e: (e.u, e.v)):
            f.write(f"{e.u} {e.v} {e.weight!r}\n")
            touched.update(e.endpoints)
        for v in sorted(set(graph.vertices()) - touched):
            f.write(f"{v}\n")


def read_edge_list(path: str) -> WeightedGraph:
    g = WeightedGraph()
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            try:
                if len(parts) == 1:
                    g.add_vertex(int(parts[0]))
                elif len(parts) == 3:
                    g.add_edge(int(parts[0]), int(parts[1]), float(parts[2]))
                else:
                    raise ValueError("expected 1 or 3 tokens")
            except ValueError as exc:
                raise ReproError(f"{path}:{lineno}: bad line {raw!r}: {exc}") from exc
    return g


def _graph_to_dict(graph: WeightedGraph) -> dict:
    return {
        "vertices": sorted(graph.vertices()),
        "edges": [[e.u, e.v, e.weight] for e in sorted(graph.edges(), key=lambda e: (e.u, e.v))],
    }


def _graph_from_dict(d: dict) -> WeightedGraph:
    g = WeightedGraph(d.get("vertices", []))
    for (u, v, w) in d.get("edges", []):
        g.add_edge(u, v, w)
    return g


def write_stream(stream: UpdateStream, path: str) -> None:
    doc = {
        "initial": _graph_to_dict(stream.initial),
        "batches": [
            [
                {"op": u.kind, "u": u.u, "v": u.v,
                 **({"w": u.weight} if u.kind == "add" else {})}
                for u in batch
            ]
            for batch in stream.batches
        ],
    }
    with open(path, "w") as f:
        json.dump(doc, f)


def read_stream(path: str) -> UpdateStream:
    with open(path) as f:
        doc = json.load(f)
    batches: List[List[Update]] = []
    for batch in doc.get("batches", []):
        out = []
        for rec in batch:
            if rec["op"] == "add":
                out.append(Update.add(rec["u"], rec["v"], rec["w"]))
            elif rec["op"] == "delete":
                out.append(Update.delete(rec["u"], rec["v"]))
            else:
                raise ReproError(f"unknown op {rec['op']!r} in {path}")
        batches.append(out)
    return UpdateStream(_graph_from_dict(doc["initial"]), batches)
