"""Reference minimum-spanning-forest engines.

All three classical algorithms are implemented; they must produce the
*identical* edge set because :func:`repro.graphs.graph.edge_key` makes the
MSF unique.  The test suite cross-checks them against each other and
against the distributed implementations.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Set, Tuple

from repro.graphs.dsu import DisjointSet
from repro.graphs.graph import Edge, WeightedGraph, edge_key


def kruskal_msf(graph: WeightedGraph) -> Set[Edge]:
    """Kruskal's algorithm; the canonical oracle for the whole repository."""
    dsu = DisjointSet(graph.vertices())
    msf: Set[Edge] = set()
    for e in sorted(graph.edges(), key=edge_key):
        if dsu.union(e.u, e.v):
            msf.add(e)
    return msf


def local_msf(edges: Iterable[Edge], keep_order: bool = False) -> List[Edge]:
    """MSF of a bare edge list (machine-local cycle deletion, §6.2 step 3).

    This is what a machine runs on its own candidate edges to prune to at
    most (#touched vertices - 1) survivors.  Returns edges sorted by key.
    """
    dsu = DisjointSet()
    out: List[Edge] = []
    for e in sorted(edges, key=edge_key):
        if dsu.union(e.u, e.v):
            out.append(e)
    if not keep_order:
        return out
    return out


def prim_msf(graph: WeightedGraph) -> Set[Edge]:
    """Prim's algorithm run from every yet-unvisited vertex (forest-aware)."""
    visited: Set[int] = set()
    msf: Set[Edge] = set()
    for start in graph.vertices():
        if start in visited:
            continue
        visited.add(start)
        heap: List[Tuple[Tuple[float, int, int], Edge]] = []
        for e in graph.incident_edges(start):
            heapq.heappush(heap, (e.key(), e))
        while heap:
            _, e = heapq.heappop(heap)
            nxt = e.v if e.u in visited else e.u
            if nxt in visited:
                continue
            visited.add(nxt)
            msf.add(e)
            for f in graph.incident_edges(nxt):
                if f.other(nxt) not in visited:
                    heapq.heappush(heap, (f.key(), f))
    return msf


def boruvka_msf(graph: WeightedGraph) -> Set[Edge]:
    """Borůvka's algorithm (the template simulated distributedly in §5.5)."""
    dsu = DisjointSet(graph.vertices())
    msf: Set[Edge] = set()
    edges = sorted(graph.edges(), key=edge_key)
    while True:
        best: Dict[object, Edge] = {}
        for e in edges:
            ru, rv = dsu.find(e.u), dsu.find(e.v)
            if ru == rv:
                continue
            for r in (ru, rv):
                cur = best.get(r)
                if cur is None or e.key() < cur.key():
                    best[r] = e
        if not best:
            break
        for e in best.values():
            if dsu.union(e.u, e.v):
                msf.add(e)
    return msf


def msf_weight(edges: Iterable[Edge]) -> float:
    """Total weight of an edge collection."""
    return sum(e.weight for e in edges)


def msf_key_multiset(edges: Iterable[Edge]) -> List[Tuple[float, int, int]]:
    """Sorted key list — a canonical fingerprint for comparing forests."""
    return sorted(e.key() for e in edges)


def forest_digest(edges: Iterable[Edge]) -> str:
    """A canonical sha256 of a forest's sorted edge keys.

    Two runs that end on the same forest — whatever their batching,
    coalescing, or execution backend — produce the same digest; the
    streaming parity harness compares these, the way the ledger layer
    compares :meth:`~repro.sim.metrics.Ledger.digest`.
    """
    import hashlib

    h = hashlib.sha256()
    for w, u, v in msf_key_multiset(edges):
        h.update(f"{u},{v},{w!r};".encode())
    return h.hexdigest()
