"""Update-stream generators for the batch-dynamic workloads.

A stream is a sequence of *batches*; each batch is a list of
:class:`Update` objects (edge insertions and deletions).  Generators keep a
shadow copy of the evolving graph so that every batch is *consistent*: an
inserted edge is absent beforehand, a deleted edge is present, and no edge
appears twice within one batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import Edge, WeightedGraph, normalize


@dataclass(frozen=True)
class Update:
    """A single edge update.  ``kind`` is "add" or "delete".

    For additions ``weight`` is the new edge's weight; for deletions it is
    ignored (and normally None).
    """

    kind: str
    u: int
    v: int
    weight: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("add", "delete"):
            raise ValueError(f"unknown update kind {self.kind!r}")
        a, b = normalize(self.u, self.v)
        object.__setattr__(self, "u", a)
        object.__setattr__(self, "v", b)
        if self.kind == "add" and self.weight is None:
            raise ValueError("additions require a weight")

    @property
    def endpoints(self) -> Tuple[int, int]:
        return (self.u, self.v)

    @staticmethod
    def add(u: int, v: int, weight: float) -> "Update":
        return Update("add", u, v, weight)

    @staticmethod
    def delete(u: int, v: int) -> "Update":
        return Update("delete", u, v)


def apply_updates(graph: WeightedGraph, batch: Sequence[Update]) -> None:
    """Apply a batch to a graph in place (the shadow/oracle semantics)."""
    for upd in batch:
        if upd.kind == "add":
            graph.add_edge(upd.u, upd.v, upd.weight)
        else:
            graph.remove_edge(upd.u, upd.v)


class UpdateStream:
    """A materialized stream: an initial graph plus a list of batches."""

    def __init__(self, initial: WeightedGraph, batches: Sequence[Sequence[Update]]):
        self.initial = initial
        self.batches: List[List[Update]] = [list(b) for b in batches]

    def __iter__(self) -> Iterator[List[Update]]:
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    def final_graph(self) -> WeightedGraph:
        g = self.initial.copy()
        for batch in self.batches:
            apply_updates(g, batch)
        return g

    def replay(self) -> Iterator[Tuple[List[Update], WeightedGraph]]:
        """Yield (batch, graph-after-batch) pairs; the graph is live (copy it)."""
        g = self.initial.copy()
        for batch in self.batches:
            apply_updates(g, batch)
            yield batch, g


def _sample_absent_edge(
    g: WeightedGraph, n: int, rng: np.random.Generator, batch_pairs: set
) -> Optional[Tuple[int, int]]:
    for _ in range(64 * max(n, 4)):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        u, v = normalize(u, v)
        if (u, v) in batch_pairs or g.has_edge(u, v):
            continue
        return (u, v)
    return None


def _sample_present_edge(
    g: WeightedGraph, rng: np.random.Generator, batch_pairs: set, keep_connected: bool
) -> Optional[Edge]:
    edges = [e for e in g.edges() if (e.u, e.v) not in batch_pairs]
    if not edges:
        return None
    order = rng.permutation(len(edges))
    for idx in order:
        return edges[int(idx)]
    return None


def churn_stream(
    initial: WeightedGraph,
    batch_size: int,
    n_batches: int,
    p_add: float = 0.5,
    rng: RngLike = None,
) -> UpdateStream:
    """Mixed insert/delete churn with expected add-fraction ``p_add``."""
    rng = as_rng(rng)
    n = initial.n
    shadow = initial.copy()
    batches: List[List[Update]] = []
    for _ in range(n_batches):
        batch: List[Update] = []
        pairs: set = set()
        for _ in range(batch_size):
            do_add = rng.random() < p_add
            if not do_add and shadow.m == 0:
                do_add = True
            if do_add:
                pair = _sample_absent_edge(shadow, n, rng, pairs)
                if pair is None:
                    continue
                batch.append(Update.add(*pair, float(rng.random())))
            else:
                e = _sample_present_edge(shadow, rng, pairs, keep_connected=False)
                if e is None:
                    continue
                batch.append(Update.delete(e.u, e.v))
            pairs.add(batch[-1].endpoints)
        apply_updates(shadow, batch)
        batches.append(batch)
    return UpdateStream(initial, batches)


def growing_stream(
    initial: WeightedGraph, batch_size: int, n_batches: int, rng: RngLike = None
) -> UpdateStream:
    """Pure-insertion stream (exercises §6.1 exclusively)."""
    return churn_stream(initial, batch_size, n_batches, p_add=1.0, rng=rng)


def shrinking_stream(
    initial: WeightedGraph, batch_size: int, n_batches: int, rng: RngLike = None
) -> UpdateStream:
    """Pure-deletion stream (exercises §6.2 exclusively)."""
    return churn_stream(initial, batch_size, n_batches, p_add=0.0, rng=rng)


def sliding_window_stream(
    n: int,
    window: int,
    batch_size: int,
    n_batches: int,
    rng: RngLike = None,
) -> UpdateStream:
    """Edges arrive continuously and expire after ``window`` batches.

    Models the data-stream setting of the introduction: each batch inserts
    ``batch_size`` fresh edges and deletes the batch that fell out of the
    window.  Batch sizes are therefore up to 2 * batch_size.
    """
    rng = as_rng(rng)
    initial = WeightedGraph(range(n))
    shadow = initial.copy()
    live: List[List[Tuple[int, int]]] = []  # per-batch inserted pairs
    batches: List[List[Update]] = []
    for step in range(n_batches):
        batch: List[Update] = []
        pairs: set = set()
        if len(live) == window:
            for (u, v) in live.pop(0):
                if shadow.has_edge(u, v) and (u, v) not in pairs:
                    batch.append(Update.delete(u, v))
                    pairs.add((u, v))
        inserted: List[Tuple[int, int]] = []
        for _ in range(batch_size):
            pair = _sample_absent_edge(shadow, n, rng, pairs)
            if pair is None:
                continue
            batch.append(Update.add(*pair, float(rng.random())))
            pairs.add(pair)
            inserted.append(pair)
        live.append(inserted)
        apply_updates(shadow, batch)
        batches.append(batch)
    return UpdateStream(initial, batches)


def adversarial_clique_stream(
    initial: WeightedGraph,
    clique_vertices: Sequence[int],
    rng: RngLike = None,
    weight_scale: float = 1e-9,
) -> UpdateStream:
    """One add-then-delete pair of batches over a vertex clique (Theorem 7.1).

    Inserts a random G_b(X, Y)-style instance among ``clique_vertices``
    with globally-minimal weights, then deletes it.  Used by the
    lower-bound adversary; see :mod:`repro.lowerbound.adversary` for the
    full 3k-batch construction.
    """
    rng = as_rng(rng)
    verts = list(clique_vertices)
    if len(verts) < 3:
        raise ValueError("need at least 3 clique vertices")
    u, w = verts[0], verts[1]
    vs = verts[2:]
    add_batch: List[Update] = [Update.add(u, w, float(weight_scale * rng.random()))]
    for v in vs:
        x = int(rng.integers(0, 3))  # 0: u only, 1: w only, 2: both
        if x in (0, 2):
            add_batch.append(Update.add(u, v, float(weight_scale * rng.random())))
        if x in (1, 2):
            add_batch.append(Update.add(w, v, float(weight_scale * rng.random())))
    del_batch = [Update.delete(upd.u, upd.v) for upd in add_batch]
    return UpdateStream(initial, [add_batch, del_batch])
