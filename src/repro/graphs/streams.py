"""Update-stream generators for the batch-dynamic workloads.

A stream is a sequence of *batches*; each batch is a list of
:class:`Update` objects (edge insertions and deletions).  Generators keep a
shadow copy of the evolving graph so that every batch is *consistent*: an
inserted edge is absent beforehand, a deleted edge is present, and no edge
appears twice within one batch.

The streaming front-end (:mod:`repro.stream`) consumes the finer-grained
*arrival-timestamped* form instead: an :class:`ArrivalStream` is a
sequence of :class:`TimedUpdate` records — one update per arrival, tagged
with the integer tick it arrives at — over an initial graph.  Arrival
streams are consistent *in emission order* (each update is valid against
the graph with every earlier update applied); how they are batched is the
scheduler's decision, not the generator's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import Edge, WeightedGraph, normalize


@dataclass(frozen=True)
class Update:
    """A single edge update.  ``kind`` is "add" or "delete".

    For additions ``weight`` is the new edge's weight; for deletions it is
    ignored (and normally None).
    """

    kind: str
    u: int
    v: int
    weight: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("add", "delete"):
            raise ValueError(f"unknown update kind {self.kind!r}")
        a, b = normalize(self.u, self.v)
        object.__setattr__(self, "u", a)
        object.__setattr__(self, "v", b)
        if self.kind == "add" and self.weight is None:
            raise ValueError("additions require a weight")

    @property
    def endpoints(self) -> Tuple[int, int]:
        return (self.u, self.v)

    @staticmethod
    def add(u: int, v: int, weight: float) -> "Update":
        return Update("add", u, v, weight)

    @staticmethod
    def delete(u: int, v: int) -> "Update":
        return Update("delete", u, v)


def apply_updates(graph: WeightedGraph, batch: Sequence[Update]) -> None:
    """Apply a batch to a graph in place (the shadow/oracle semantics)."""
    for upd in batch:
        if upd.kind == "add":
            graph.add_edge(upd.u, upd.v, upd.weight)
        else:
            graph.remove_edge(upd.u, upd.v)


class UpdateStream:
    """A materialized stream: an initial graph plus a list of batches."""

    def __init__(self, initial: WeightedGraph, batches: Sequence[Sequence[Update]]):
        self.initial = initial
        self.batches: List[List[Update]] = [list(b) for b in batches]

    def __iter__(self) -> Iterator[List[Update]]:
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    def final_graph(self) -> WeightedGraph:
        g = self.initial.copy()
        for batch in self.batches:
            apply_updates(g, batch)
        return g

    def replay(self) -> Iterator[Tuple[List[Update], WeightedGraph]]:
        """Yield (batch, graph-after-batch) pairs; the graph is live (copy it)."""
        g = self.initial.copy()
        for batch in self.batches:
            apply_updates(g, batch)
            yield batch, g


def _sample_absent_edge(
    g: WeightedGraph, n: int, rng: np.random.Generator, batch_pairs: set
) -> Optional[Tuple[int, int]]:
    for _ in range(64 * max(n, 4)):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        u, v = normalize(u, v)
        if (u, v) in batch_pairs or g.has_edge(u, v):
            continue
        return (u, v)
    return None


def _sample_present_edge(
    g: WeightedGraph, rng: np.random.Generator, batch_pairs: set, keep_connected: bool
) -> Optional[Edge]:
    edges = [e for e in g.edges() if (e.u, e.v) not in batch_pairs]
    if not edges:
        return None
    order = rng.permutation(len(edges))
    for idx in order:
        return edges[int(idx)]
    return None


def churn_stream(
    initial: WeightedGraph,
    batch_size: int,
    n_batches: int,
    p_add: float = 0.5,
    rng: RngLike = None,
) -> UpdateStream:
    """Mixed insert/delete churn with expected add-fraction ``p_add``."""
    rng = as_rng(rng)
    n = initial.n
    shadow = initial.copy()
    batches: List[List[Update]] = []
    for _ in range(n_batches):
        batch: List[Update] = []
        pairs: set = set()
        for _ in range(batch_size):
            do_add = rng.random() < p_add
            if not do_add and shadow.m == 0:
                do_add = True
            if do_add:
                pair = _sample_absent_edge(shadow, n, rng, pairs)
                if pair is None:
                    continue
                batch.append(Update.add(*pair, float(rng.random())))
            else:
                e = _sample_present_edge(shadow, rng, pairs, keep_connected=False)
                if e is None:
                    continue
                batch.append(Update.delete(e.u, e.v))
            pairs.add(batch[-1].endpoints)
        apply_updates(shadow, batch)
        batches.append(batch)
    return UpdateStream(initial, batches)


def growing_stream(
    initial: WeightedGraph, batch_size: int, n_batches: int, rng: RngLike = None
) -> UpdateStream:
    """Pure-insertion stream (exercises §6.1 exclusively)."""
    return churn_stream(initial, batch_size, n_batches, p_add=1.0, rng=rng)


def shrinking_stream(
    initial: WeightedGraph, batch_size: int, n_batches: int, rng: RngLike = None
) -> UpdateStream:
    """Pure-deletion stream (exercises §6.2 exclusively)."""
    return churn_stream(initial, batch_size, n_batches, p_add=0.0, rng=rng)


def sliding_window_stream(
    n: int,
    window: int,
    batch_size: int,
    n_batches: int,
    rng: RngLike = None,
) -> UpdateStream:
    """Edges arrive continuously and expire after ``window`` batches.

    Models the data-stream setting of the introduction: each batch inserts
    ``batch_size`` fresh edges and deletes the batch that fell out of the
    window.  Batch sizes are therefore up to 2 * batch_size.
    """
    rng = as_rng(rng)
    initial = WeightedGraph(range(n))
    shadow = initial.copy()
    live: List[List[Tuple[int, int]]] = []  # per-batch inserted pairs
    batches: List[List[Update]] = []
    for step in range(n_batches):
        batch: List[Update] = []
        pairs: set = set()
        if len(live) == window:
            for (u, v) in live.pop(0):
                if shadow.has_edge(u, v) and (u, v) not in pairs:
                    batch.append(Update.delete(u, v))
                    pairs.add((u, v))
        inserted: List[Tuple[int, int]] = []
        for _ in range(batch_size):
            pair = _sample_absent_edge(shadow, n, rng, pairs)
            if pair is None:
                continue
            batch.append(Update.add(*pair, float(rng.random())))
            pairs.add(pair)
            inserted.append(pair)
        live.append(inserted)
        apply_updates(shadow, batch)
        batches.append(batch)
    return UpdateStream(initial, batches)


def adversarial_clique_stream(
    initial: WeightedGraph,
    clique_vertices: Sequence[int],
    rng: RngLike = None,
    weight_scale: float = 1e-9,
) -> UpdateStream:
    """One add-then-delete pair of batches over a vertex clique (Theorem 7.1).

    Inserts a random G_b(X, Y)-style instance among ``clique_vertices``
    with globally-minimal weights, then deletes it.  Used by the
    lower-bound adversary; see :mod:`repro.lowerbound.adversary` for the
    full 3k-batch construction.
    """
    rng = as_rng(rng)
    verts = list(clique_vertices)
    if len(verts) < 3:
        raise ValueError("need at least 3 clique vertices")
    u, w = verts[0], verts[1]
    vs = verts[2:]
    add_batch: List[Update] = [Update.add(u, w, float(weight_scale * rng.random()))]
    for v in vs:
        x = int(rng.integers(0, 3))  # 0: u only, 1: w only, 2: both
        if x in (0, 2):
            add_batch.append(Update.add(u, v, float(weight_scale * rng.random())))
        if x in (1, 2):
            add_batch.append(Update.add(w, v, float(weight_scale * rng.random())))
    del_batch = [Update.delete(upd.u, upd.v) for upd in add_batch]
    return UpdateStream(initial, [add_batch, del_batch])


# ----------------------------------------------------------------------
# arrival-timestamped streams (the repro.stream ingestion substrate)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TimedUpdate:
    """One update tagged with its integer arrival tick."""

    tick: int
    update: Update

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ValueError("arrival ticks start at 0")


class ArrivalStream:
    """An initial graph plus a tick-ordered sequence of single arrivals.

    Consistency is *per emission*: every update is valid against the
    graph with all earlier arrivals applied.  Two arrivals may touch the
    same edge pair (that is the point — the admission coalescer in
    :mod:`repro.stream` normalises such churn before it costs rounds),
    so a contiguous slice of an arrival stream is **not** necessarily a
    valid :meth:`~repro.core.api.DynamicMST.apply_batch` batch.
    """

    def __init__(
        self,
        initial: WeightedGraph,
        arrivals: Sequence[TimedUpdate],
        name: str = "",
    ) -> None:
        last = -1
        for tu in arrivals:
            if tu.tick < last:
                raise ValueError("arrival ticks must be non-decreasing")
            last = tu.tick
        self.initial = initial
        self.arrivals: List[TimedUpdate] = list(arrivals)
        self.name = name

    def __iter__(self) -> Iterator[TimedUpdate]:
        return iter(self.arrivals)

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def horizon(self) -> int:
        """The last arrival tick (-1 for an empty stream)."""
        return self.arrivals[-1].tick if self.arrivals else -1

    def updates(self) -> List[Update]:
        return [tu.update for tu in self.arrivals]

    def final_graph(self) -> WeightedGraph:
        """The graph after every arrival is applied in emission order."""
        g = self.initial.copy()
        for tu in self.arrivals:
            apply_updates(g, [tu.update])
        return g

    def as_batches(self) -> UpdateStream:
        """Group arrivals by tick into a (possibly inconsistent-per-batch)
        :class:`UpdateStream` — for replay through the coalescing front
        end only; per-tick groups may repeat an edge pair."""
        by_tick: Dict[int, List[Update]] = {}
        for tu in self.arrivals:
            by_tick.setdefault(tu.tick, []).append(tu.update)
        return UpdateStream(self.initial, [by_tick[t] for t in sorted(by_tick)])


def timed_arrivals(
    stream: UpdateStream, rate: float, start: int = 0, name: str = ""
) -> ArrivalStream:
    """Flatten a batch stream into arrivals at ``rate`` updates per tick.

    The i-th update (in replay order) arrives at ``start + floor(i /
    rate)`` — a deterministic re-timing, so the arrival stream inherits
    the batch stream's seeded determinism.  Emission order is preserved,
    hence per-emission consistency is too.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    out: List[TimedUpdate] = []
    i = 0
    for batch in stream:
        for upd in batch:
            out.append(TimedUpdate(start + int(i / rate), upd))
            i += 1
    return ArrivalStream(stream.initial, out, name=name)


def uniform_arrival_stream(
    initial: WeightedGraph,
    rate: float,
    n_ticks: int,
    p_add: float = 0.5,
    rng: RngLike = None,
    name: str = "uniform",
) -> ArrivalStream:
    """Steady mixed churn: ``rate`` single-update arrivals per tick."""
    n_updates = max(int(rate * n_ticks), 1)
    batches = churn_stream(initial, 1, n_updates, p_add=p_add, rng=rng)
    return timed_arrivals(batches, rate, name=name)


def sliding_window_arrival_stream(
    n: int,
    window: int,
    rate: int,
    n_ticks: int,
    rng: RngLike = None,
    name: str = "sliding-window",
) -> ArrivalStream:
    """Data-stream churn: ``rate`` fresh edges arrive each tick and expire
    (their deletions arrive) exactly ``window`` ticks later.

    When the cluster falls behind the stream, an edge's expiry reaches
    the admission buffer while its insertion is still queued — the
    coalescer annihilates the pair and neither update costs a round.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    rng = as_rng(rng)
    initial = WeightedGraph(range(n))
    shadow = initial.copy()
    live: Dict[int, List[Tuple[int, int]]] = {}
    arrivals: List[TimedUpdate] = []
    for tick in range(n_ticks):
        # Expiries first: deletions of the batch inserted window ticks ago.
        for (u, v) in live.pop(tick - window, []):
            arrivals.append(TimedUpdate(tick, Update.delete(u, v)))
            shadow.remove_edge(u, v)
        inserted: List[Tuple[int, int]] = []
        pairs: set = set()
        for _ in range(rate):
            pair = _sample_absent_edge(shadow, n, rng, pairs)
            if pair is None:
                continue
            arrivals.append(TimedUpdate(tick, Update.add(*pair, float(rng.random()))))
            shadow.add_edge(*pair, arrivals[-1].update.weight)
            pairs.add(pair)
            inserted.append(pair)
        live[tick] = inserted
    return ArrivalStream(initial, arrivals, name=name)


def flash_crowd_arrival_stream(
    initial: WeightedGraph,
    base_rate: float,
    n_ticks: int,
    burst_every: int = 8,
    burst_size: int = 64,
    hotspot: int = 8,
    rng: RngLike = None,
    name: str = "flash-crowd",
) -> ArrivalStream:
    """Bursty flash-crowd churn: a quiet baseline with periodic stampedes.

    Most ticks carry ``base_rate`` uniform churn arrivals; every
    ``burst_every`` ticks a crowd of ``burst_size`` updates lands in a
    single tick, all aimed at edge pairs among ``hotspot`` vertices.
    Within a burst the same pair flip-flops between inserted and deleted
    — duplicate-heavy traffic the coalescer collapses to its net effect.
    """
    if burst_every <= 0 or burst_size <= 0:
        raise ValueError("burst parameters must be positive")
    rng = as_rng(rng)
    n = initial.n
    verts = sorted(initial.vertices())
    hot = verts[: max(min(hotspot, n), 2)]
    shadow = initial.copy()
    arrivals: List[TimedUpdate] = []

    def emit(tick: int, upd: Update) -> None:
        arrivals.append(TimedUpdate(tick, upd))
        apply_updates(shadow, [upd])

    base_credit = 0.0
    for tick in range(n_ticks):
        base_credit += base_rate
        while base_credit >= 1.0:
            base_credit -= 1.0
            do_add = rng.random() < 0.5 or shadow.m == 0
            if do_add:
                pair = _sample_absent_edge(shadow, n, rng, set())
                if pair is not None:
                    emit(tick, Update.add(*pair, float(rng.random())))
            else:
                e = _sample_present_edge(shadow, rng, set(), keep_connected=False)
                if e is not None:
                    emit(tick, Update.delete(e.u, e.v))
        if tick % burst_every == burst_every - 1:
            for _ in range(burst_size):
                a = hot[int(rng.integers(0, len(hot)))]
                b = hot[int(rng.integers(0, len(hot)))]
                if a == b:
                    continue
                u, v = normalize(a, b)
                if shadow.has_edge(u, v):
                    emit(tick, Update.delete(u, v))
                else:
                    emit(tick, Update.add(u, v, float(rng.random())))
    return ArrivalStream(initial, arrivals, name=name)


def adversarial_arrival_stream(
    initial: WeightedGraph,
    clique_vertices: Sequence[int],
    rate: float,
    waves: int = 3,
    rng: RngLike = None,
    name: str = "adversarial",
) -> ArrivalStream:
    """Repeated Theorem 7.1 waves: a G_b-style clique instance arrives at
    ``rate`` updates per tick, then is torn down again — each wave's
    deletions chase its own insertions through the admission buffer."""
    rng = as_rng(rng)
    arrivals: List[TimedUpdate] = []
    tick = 0
    i = 0
    for _ in range(max(waves, 1)):
        wave = adversarial_clique_stream(initial, clique_vertices, rng=rng)
        start = tick
        for batch in wave:
            for upd in batch:
                arrivals.append(TimedUpdate(start + int(i / rate), upd))
                i += 1
        tick = arrivals[-1].tick + 1 if arrivals else tick
        i = 0
        # Each wave nets out to the initial graph, so the next wave's
        # instance is consistent against it by construction.
    return ArrivalStream(initial, arrivals, name=name)


def flash_crowd_stream(
    initial: WeightedGraph,
    base_rate: float,
    n_ticks: int,
    burst_every: int = 8,
    burst_size: int = 64,
    hotspot: int = 8,
    rng: RngLike = None,
) -> UpdateStream:
    """Batch-shaped view of :func:`flash_crowd_arrival_stream` (per-tick
    groups) — bursty batch sizes for the batch-dynamic harnesses.  Burst
    groups may repeat an edge pair, so replay this through the
    :mod:`repro.stream` front end, not ``apply_batch`` directly."""
    return flash_crowd_arrival_stream(
        initial, base_rate, n_ticks, burst_every=burst_every,
        burst_size=burst_size, hotspot=hotspot, rng=rng,
    ).as_batches()
