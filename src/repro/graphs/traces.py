"""Realistic workload traces: temporal locality, hotspots, cascades.

The uniform churn of :mod:`repro.graphs.streams` is the neutral workload;
real clusters see structured churn.  These generators produce the
patterns the batch-dynamic algorithm should be stress-tested on:

* :func:`hotspot_stream` — a small set of "hot" vertices receives most of
  the churn (skewed access, à la social-graph celebrities);
* :func:`cascade_stream` — correlated failures: a random region of the
  MST is torn out in one batch and repaired over the next batches
  (datacenter rack/switch failures);
* :func:`flash_crowd_stream` — alternating dense bursts and quiet
  periods (diurnal load);
* :func:`rolling_partition_stream` — a moving cut: edges crossing a
  sweeping vertex boundary churn (VM migration / repartitioning).

All are consistent by construction (validated by the shared stream
invariants in the tests) and deterministic given a seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import WeightedGraph, normalize
from repro.graphs.mst import kruskal_msf
from repro.graphs.streams import Update, UpdateStream, apply_updates


def _absent_pair(
    g: WeightedGraph, candidates_u: Sequence[int], candidates_v: Sequence[int],
    rng: np.random.Generator, used: Set[Tuple[int, int]], tries: int = 256,
) -> Optional[Tuple[int, int]]:
    for _ in range(tries):
        u = int(candidates_u[int(rng.integers(0, len(candidates_u)))])
        v = int(candidates_v[int(rng.integers(0, len(candidates_v)))])
        if u == v:
            continue
        pair = normalize(u, v)
        if pair in used or g.has_edge(*pair):
            continue
        return pair
    return None


def hotspot_stream(
    initial: WeightedGraph,
    batch_size: int,
    n_batches: int,
    n_hot: int = 4,
    hot_fraction: float = 0.8,
    rng: RngLike = None,
) -> UpdateStream:
    """Skewed churn: ``hot_fraction`` of updates touch ``n_hot`` vertices."""
    rng = as_rng(rng)
    verts = sorted(initial.vertices())
    hot = [verts[int(i)] for i in rng.choice(len(verts), size=min(n_hot, len(verts)), replace=False)]
    shadow = initial.copy()
    batches: List[List[Update]] = []
    for _ in range(n_batches):
        batch: List[Update] = []
        used: Set[Tuple[int, int]] = set()
        for _ in range(batch_size):
            anchor = hot if rng.random() < hot_fraction else verts
            if rng.random() < 0.5 and shadow.m > 0:
                # Delete an edge touching the anchor set if possible.
                cands = [
                    e for e in shadow.edges()
                    if (e.u in anchor or e.v in anchor) and e.endpoints not in used
                ]
                if cands:
                    e = cands[int(rng.integers(0, len(cands)))]
                    batch.append(Update.delete(e.u, e.v))
                    used.add(e.endpoints)
                    continue
            pair = _absent_pair(shadow, anchor, verts, rng, used)
            if pair is not None:
                batch.append(Update.add(*pair, float(rng.random())))
                used.add(pair)
        apply_updates(shadow, batch)
        batches.append(batch)
    return UpdateStream(initial, batches)


def cascade_stream(
    initial: WeightedGraph,
    n_cascades: int,
    region_size: int,
    repair_batches: int = 2,
    rng: RngLike = None,
) -> UpdateStream:
    """Correlated failure/repair: tear out an MST region, then repair it.

    Each cascade: one batch deletes all surviving graph edges incident to
    a random connected MST region of ``region_size`` vertices, then
    ``repair_batches`` batches re-add them (with fresh weights).
    """
    rng = as_rng(rng)
    shadow = initial.copy()
    batches: List[List[Update]] = []
    for _ in range(n_cascades):
        msf = kruskal_msf(shadow)
        if not msf:
            break
        # Grow a connected region from a random MST edge.
        adj: dict = {}
        for e in msf:
            adj.setdefault(e.u, []).append(e.v)
            adj.setdefault(e.v, []).append(e.u)
        seeds = sorted(adj)
        region = {seeds[int(rng.integers(0, len(seeds)))]}
        frontier = list(region)
        while frontier and len(region) < region_size:
            x = frontier.pop(0)
            for y in adj.get(x, []):
                if y not in region:
                    region.add(y)
                    frontier.append(y)
        victims = [
            e for e in shadow.edges() if e.u in region and e.v in region
        ]
        fail = [Update.delete(e.u, e.v) for e in victims]
        apply_updates(shadow, fail)
        batches.append(fail)
        # Repairs, spread over repair_batches.
        per = max(1, -(-len(victims) // max(repair_batches, 1)))
        for base in range(0, len(victims), per):
            chunk = victims[base : base + per]
            repair = [
                Update.add(e.u, e.v, float(rng.random())) for e in chunk
            ]
            apply_updates(shadow, repair)
            batches.append(repair)
    return UpdateStream(initial, batches)


def flash_crowd_stream(
    initial: WeightedGraph,
    quiet_size: int,
    burst_size: int,
    n_cycles: int,
    rng: RngLike = None,
) -> UpdateStream:
    """Alternating quiet batches and bursts (diurnal pattern)."""
    rng = as_rng(rng)
    verts = sorted(initial.vertices())
    shadow = initial.copy()
    batches: List[List[Update]] = []
    for cycle in range(n_cycles):
        for size in (quiet_size, burst_size):
            batch: List[Update] = []
            used: Set[Tuple[int, int]] = set()
            for _ in range(size):
                if rng.random() < 0.5 and shadow.m > 0:
                    cands = [e for e in shadow.edges() if e.endpoints not in used]
                    if cands:
                        e = cands[int(rng.integers(0, len(cands)))]
                        batch.append(Update.delete(e.u, e.v))
                        used.add(e.endpoints)
                        continue
                pair = _absent_pair(shadow, verts, verts, rng, used)
                if pair is not None:
                    batch.append(Update.add(*pair, float(rng.random())))
                    used.add(pair)
            apply_updates(shadow, batch)
            batches.append(batch)
    return UpdateStream(initial, batches)


def rolling_partition_stream(
    initial: WeightedGraph,
    window: int,
    n_batches: int,
    rng: RngLike = None,
) -> UpdateStream:
    """A sweeping boundary: batch t churns edges crossing the vertex
    window [t*w, (t+1)*w) versus the rest."""
    rng = as_rng(rng)
    verts = sorted(initial.vertices())
    n = len(verts)
    shadow = initial.copy()
    batches: List[List[Update]] = []
    for t in range(n_batches):
        lo = (t * window) % max(n, 1)
        inside = set(verts[lo : lo + window])
        outside = [v for v in verts if v not in inside]
        if not inside or not outside:
            batches.append([])
            continue
        batch: List[Update] = []
        used: Set[Tuple[int, int]] = set()
        crossing = [
            e for e in shadow.edges()
            if (e.u in inside) != (e.v in inside)
        ]
        rng.shuffle(crossing)
        for e in crossing[: window // 2 + 1]:
            batch.append(Update.delete(e.u, e.v))
            used.add(e.endpoints)
        for _ in range(window // 2 + 1):
            pair = _absent_pair(shadow, sorted(inside), outside, rng, used)
            if pair is not None:
                batch.append(Update.add(*pair, float(rng.random())))
                used.add(pair)
        apply_updates(shadow, batch)
        batches.append(batch)
    return UpdateStream(initial, batches)
