"""Validators: spanning-forest checks and MSF optimality certificates.

Two independent ways to certify a minimum spanning forest:

* :func:`verify_msf_exact` — compare against Kruskal under the unique
  total order (fast, relies on the oracle being right);
* :func:`verify_msf_cycle_property` — first-principles certificate: for
  every non-forest edge, every forest edge on the path between its
  endpoints has a smaller key.  O(m · n) but oracle-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.graphs.dsu import DisjointSet
from repro.graphs.graph import Edge, WeightedGraph
from repro.graphs.mst import kruskal_msf, msf_key_multiset


def is_forest(edges: Iterable[Edge]) -> bool:
    """True iff the edge set is acyclic."""
    dsu = DisjointSet()
    return all(dsu.union(e.u, e.v) for e in edges)


def is_spanning_forest(graph: WeightedGraph, edges: Iterable[Edge]) -> bool:
    """True iff ``edges`` is a forest of graph edges spanning each component."""
    edges = list(edges)
    dsu = DisjointSet(graph.vertices())
    for e in edges:
        if not graph.has_edge(e.u, e.v) or graph.weight(e.u, e.v) != e.weight:
            return False
        if not dsu.union(e.u, e.v):
            return False  # cycle
    # Spanning: every graph edge must connect vertices already connected.
    return all(dsu.connected(e.u, e.v) for e in graph.edges())


def _forest_paths(edges: Iterable[Edge]) -> Dict[int, List[Edge]]:
    adj: Dict[int, List[Edge]] = {}
    for e in edges:
        adj.setdefault(e.u, []).append(e)
        adj.setdefault(e.v, []).append(e)
    return adj


def path_in_forest(edges: Iterable[Edge], s: int, t: int) -> Optional[List[Edge]]:
    """Return the unique path of forest edges from s to t, or None."""
    adj = _forest_paths(edges)
    if s == t:
        return []
    stack = [(s, None)]
    parent: Dict[int, Edge] = {}
    seen = {s}
    while stack:
        v, via = stack.pop()
        if via is not None:
            parent[v] = via
        if v == t:
            path: List[Edge] = []
            cur = t
            while cur != s:
                e = parent[cur]
                path.append(e)
                cur = e.other(cur)
            path.reverse()
            return path
        for e in adj.get(v, ()):
            nxt = e.other(v)
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, e))
    return None


def verify_msf_cycle_property(graph: WeightedGraph, edges: Iterable[Edge]) -> bool:
    """Oracle-free MSF certificate via the cycle property."""
    forest = set(edges)
    if not is_spanning_forest(graph, forest):
        return False
    for e in graph.edges():
        if e in forest:
            continue
        path = path_in_forest(forest, e.u, e.v)
        if path is None:
            return False  # forest not spanning after all
        if any(f.key() > e.key() for f in path):
            return False  # e should have displaced f
    return True


def verify_msf_exact(graph: WeightedGraph, edges: Iterable[Edge]) -> bool:
    """Compare a claimed MSF against the unique Kruskal MSF."""
    return msf_key_multiset(edges) == msf_key_multiset(kruskal_msf(graph))


def connected_components(graph: WeightedGraph) -> List[Set[int]]:
    """Vertex components of the graph (BFS)."""
    dsu = DisjointSet(graph.vertices())
    for e in graph.edges():
        dsu.union(e.u, e.v)
    return dsu.components()
