"""The Theorem 7.1 lower bound: instance family, adversary, bit-flow meter.

The argument: the Klauck-et-al. graph family G_b(X, Y) forces Ω(b) bits
into the machine hosting u before a spanning tree can be output.  The
adversary builds a 3k-batch sequence whose middle 2k batches repeatedly
insert (with globally minimal weights) and delete random G_b instances on
a carved-out clique of k^(1+δ/2) vertices, so each insert/delete pair
re-poses the hard instance — total time ω(k) for 3k batches of size
k^(1+δ).

:mod:`repro.lowerbound.information` measures both sides: the rounds the
algorithm actually spends, and the words crossing into u's machine
(``Network.ingress_words``), against the entropy bound H(Y|X) = 2b/3
(verified in closed form and by Monte Carlo).
"""

from repro.lowerbound.gbxy import (
    GbInstance,
    conditional_entropy_exact,
    conditional_entropy_monte_carlo,
    random_gb_instance,
)
from repro.lowerbound.adversary import AdversarySequence, build_adversary_sequence
from repro.lowerbound.information import BitFlowMeter, run_lower_bound_experiment

__all__ = [
    "GbInstance",
    "random_gb_instance",
    "conditional_entropy_exact",
    "conditional_entropy_monte_carlo",
    "AdversarySequence",
    "build_adversary_sequence",
    "BitFlowMeter",
    "run_lower_bound_experiment",
]
