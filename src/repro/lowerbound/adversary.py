"""The Theorem 7.1 adversarial update sequence.

Construction (paper, §7): pick K = ceil(k^(1+δ/2)) vertices.  The first
phase deletes every edge inside that set, leaving an "empty clique".  The
next phase repeats, k times: insert a random G_b(X, Y) instance over the
set *with globally minimal weights* (so it must enter the MST) and then
delete it again.  Each insert re-poses the Ω(b / log n)-round hard
instance, so the 3k batches of size ≤ k^(1+δ) need ω(k) rounds in total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import WeightedGraph
from repro.graphs.streams import Update, UpdateStream
from repro.lowerbound.gbxy import GbInstance, random_gb_instance


@dataclass
class AdversarySequence:
    """The materialized 3k-phase sequence plus its bookkeeping."""

    stream: UpdateStream
    clique_vertices: List[int]
    u: int
    w: int
    b: int
    instances: List[GbInstance] = field(default_factory=list)
    #: indices of batches that insert a G_b instance (the "hard" batches)
    hard_batches: List[int] = field(default_factory=list)


def build_adversary_sequence(
    initial: WeightedGraph,
    k: int,
    delta: float,
    pairs: int | None = None,
    rng: RngLike = None,
    weight_scale: float = 1e-9,
) -> AdversarySequence:
    """Build the Theorem 7.1 sequence against ``initial``.

    ``pairs`` defaults to k (the paper's 2k insert/delete batches).  The
    initial graph must contain enough vertices; edges inside the chosen
    set are deleted by the opening batches (spread over ≤ k batches to
    respect the k^(1+δ) batch-size budget).
    """
    rng = as_rng(rng)
    n = initial.n
    K = int(np.ceil(k ** (1.0 + delta / 2.0)))
    if K < 3:
        K = 3
    if K > n:
        raise ValueError(f"need at least K={K} vertices, graph has {n}")
    batch_budget = max(int(np.ceil(k ** (1.0 + delta))), K + 1)
    verts = sorted(int(x) for x in as_rng(rng).choice(sorted(initial.vertices()), size=K, replace=False))
    u, w = verts[0], verts[1]
    b = K - 2

    batches: List[List[Update]] = []
    # Phase 1: empty the clique interior.
    inside = [
        e for e in initial.edges()
        if e.u in set(verts) and e.v in set(verts)
    ]
    for base in range(0, len(inside), batch_budget):
        batches.append(
            [Update.delete(e.u, e.v) for e in inside[base : base + batch_budget]]
        )
    while len(batches) < k:
        batches.append([])  # the paper allots k batches to the carve-out

    # Phase 2: k insert/delete pairs of random hard instances.
    seq = AdversarySequence(
        stream=UpdateStream(initial, []),
        clique_vertices=verts, u=u, w=w, b=b,
    )
    n_pairs = pairs if pairs is not None else k
    for _ in range(n_pairs):
        inst = random_gb_instance(b, rng, u=u, w=w, v_start=0)
        inst = GbInstance(inst.x_bits, inst.y_bits, u, w, tuple(verts[2:]))
        seq.instances.append(inst)
        add_batch: List[Update] = []
        for (a, c) in inst.edges():
            add_batch.append(Update.add(a, c, float(weight_scale * rng.random())))
        seq.hard_batches.append(len(batches))
        batches.append(add_batch)
        batches.append([Update.delete(upd.u, upd.v) for upd in add_batch])

    seq.stream = UpdateStream(initial, batches)
    return seq
