"""The Klauck-et-al. hard instance family G_b(X, Y) (§7, Appendix A.3).

G_b(X, Y) has vertices v_1..v_b, u, w; an edge (u, w); an edge (u, v_i)
iff X_i = 1 and (w, v_i) iff Y_i = 1; connectivity guarantees
X_i ∨ Y_i = 1, so (X_i, Y_i) ∈ {(0,1), (1,0), (1,1)} — 3^b instances.

The information argument rests on H(Y | X) = 2b/3; we provide the exact
closed form (via the paper's sum) and a Monte-Carlo estimator the tests
compare against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import List, Sequence, Tuple

from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import WeightedGraph


@dataclass(frozen=True)
class GbInstance:
    """One member of G_b(X, Y) over caller-supplied vertex ids."""

    x_bits: Tuple[int, ...]
    y_bits: Tuple[int, ...]
    u: int
    w: int
    v: Tuple[int, ...]  # v_1..v_b

    @property
    def b(self) -> int:
        return len(self.x_bits)

    def edges(self) -> List[Tuple[int, int]]:
        out = [(self.u, self.w)]
        for i, (x, y) in enumerate(zip(self.x_bits, self.y_bits)):
            if x:
                out.append((self.u, self.v[i]))
            if y:
                out.append((self.w, self.v[i]))
        return out

    def as_graph(self, weights: Sequence[float]) -> WeightedGraph:
        es = self.edges()
        if len(weights) != len(es):
            raise ValueError("need one weight per edge")
        g = WeightedGraph([self.u, self.w, *self.v])
        for (a, c), wt in zip(es, weights):
            g.add_edge(a, c, wt)
        return g


def random_gb_instance(
    b: int, rng: RngLike = None, u: int = 0, w: int = 1, v_start: int = 2
) -> GbInstance:
    """Uniform member of the 3^b family (per-coordinate uniform over the
    three connected patterns)."""
    rng = as_rng(rng)
    xs, ys = [], []
    for _ in range(b):
        pat = int(rng.integers(0, 3))  # 0:(1,0) 1:(0,1) 2:(1,1)
        xs.append(0 if pat == 1 else 1)
        ys.append(0 if pat == 0 else 1)
    return GbInstance(tuple(xs), tuple(ys), u, w, tuple(range(v_start, v_start + b)))


def conditional_entropy_exact(b: int) -> float:
    """H(Y | X) for the uniform distribution over the 3^b instances.

    The paper's sum: 3^{-b} Σ_l C(b, l) 2^l · l = 2b/3 bits — given X,
    each coordinate with X_i = 1 leaves Y_i uniform over {0, 1}.
    """
    total = 0.0
    for l in range(b + 1):
        total += comb(b, l) * (2.0**l) * l
    return total / (3.0**b)


def conditional_entropy_monte_carlo(b: int, samples: int, rng: RngLike = None) -> float:
    """Estimate H(Y | X) by sampling X and summing per-coordinate entropy.

    Exact per draw given X (H(Y|X=x) = #{i : x_i = 1} bits), so this is a
    plain mean estimator whose error shrinks like 1/sqrt(samples).
    """
    rng = as_rng(rng)
    acc = 0.0
    for _ in range(samples):
        inst = random_gb_instance(b, rng)
        acc += sum(inst.x_bits)  # each X_i = 1 coordinate hides one bit
    return acc / samples
