"""Measurement harness for the lower-bound experiment.

Runs the batch-dynamic algorithm against an :class:`AdversarySequence`
and records, per batch, the rounds spent and the words flowing into the
machine hosting ``u`` — the quantity the entropy argument lower-bounds by
Ω(b) bits = Ω(b / log n) words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.api import DynamicMST
from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import WeightedGraph
from repro.lowerbound.adversary import AdversarySequence, build_adversary_sequence


@dataclass
class BitFlowMeter:
    """Per-batch measurements of one adversary run."""

    k: int
    delta: float
    b: int
    rounds_per_batch: List[int] = field(default_factory=list)
    u_ingress_per_batch: List[int] = field(default_factory=list)
    hard_batches: List[int] = field(default_factory=list)

    @property
    def total_rounds(self) -> int:
        return sum(self.rounds_per_batch)

    @property
    def hard_rounds(self) -> List[int]:
        return [self.rounds_per_batch[i] for i in self.hard_batches]

    @property
    def hard_u_ingress(self) -> List[int]:
        return [self.u_ingress_per_batch[i] for i in self.hard_batches]

    def summary(self) -> str:
        hr = self.hard_rounds
        hi = self.hard_u_ingress
        return (
            f"k={self.k} delta={self.delta} b={self.b}: "
            f"total_rounds={self.total_rounds}, "
            f"hard-batch rounds mean={np.mean(hr):.1f}, "
            f"u-ingress words mean={np.mean(hi):.1f} (bound Ω(b)={self.b})"
        )


def run_lower_bound_experiment(
    initial: WeightedGraph,
    k: int,
    delta: float,
    rng: RngLike = None,
    pairs: Optional[int] = None,
    engine: str = "sample_gather",
) -> BitFlowMeter:
    """Execute the adversary against the real algorithm and meter it."""
    rng = as_rng(rng)
    seq = build_adversary_sequence(initial, k, delta, pairs=pairs, rng=rng)
    dm = DynamicMST.build(initial, k, rng=rng, init="free", engine=engine)
    u_machine = dm.vp.home(seq.u)
    meter = BitFlowMeter(k=k, delta=delta, b=seq.b, hard_batches=list(seq.hard_batches))
    for batch in seq.stream:
        if not batch:
            meter.rounds_per_batch.append(0)
            meter.u_ingress_per_batch.append(0)
            continue
        before_rounds = dm.net.ledger.rounds
        before_ingress = dm.net.ingress_words[u_machine]
        dm.apply_batch(batch)
        meter.rounds_per_batch.append(dm.net.ledger.rounds - before_rounds)
        meter.u_ingress_per_batch.append(
            dm.net.ingress_words[u_machine] - before_ingress
        )
    return meter
