"""MPC-model dynamic MST (§8, Theorem 8.1).

The k-machine protocols carry over: every §5/§6 protocol speaks to the
network through generic primitives, so running them over
:class:`repro.sim.network.MPCNetwork` (per-machine O(S) words/round)
yields the MPC costs directly.  What §8 changes:

* storage follows the lexicographic *edge partition* with per-vertex
  leader machines (:func:`repro.sim.partition.lexicographic_edge_partition`);
  protocol steps that need "the machine hosting v" use v's leader;
* initialisation cannot afford O(n/S) rounds; instead Borůvka phases
  merge *stars* selected by a Cole–Vishkin 3-colouring of the oriented
  min-outgoing-edge forest, giving O(log n) measured rounds
  (:mod:`repro.mpc.init_mpc`);
* a batch may carry up to S updates (bandwidth scales with S, not k).
"""

from repro.mpc.cole_vishkin import cole_vishkin_3coloring, verify_coloring
from repro.mpc.api import MPCDynamicMST
from repro.mpc.init_mpc import mpc_init

__all__ = [
    "MPCDynamicMST",
    "mpc_init",
    "cole_vishkin_3coloring",
    "verify_coloring",
]
