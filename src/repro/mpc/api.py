"""The MPC facade: :class:`MPCDynamicMST` (Theorem 8.1).

Same protocols as :class:`~repro.core.api.DynamicMST`, but:

* the network is :class:`~repro.sim.network.MPCNetwork` (each machine
  sends/receives at most S words per round), so every measured round
  count reflects the MPC cost rule;
* storage follows the lexicographic edge partition; the "machine hosting
  v" of the protocols becomes v's *leader machine* (§8);
* initialisation is :func:`repro.mpc.init_mpc.mpc_init` — O(log n)
  measured rounds instead of O(n/S);
* a batch may carry up to S updates.

Per §8's data-structure adjustment, the witness cache conceptually moves
onto each edge copy; we keep the leader-resident representation and
account the duplicated-edge storage in the machine gauges — the round
counts are unaffected because witness reads are always machine-local in
both layouts.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.api import DynamicMST
from repro.core.init_build import free_init
from repro.errors import InconsistentUpdate
from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import WeightedGraph
from repro.mpc.init_mpc import mpc_init
from repro.sim.network import MPCNetwork
from repro.sim.partition import (
    VertexPartition,
    lexicographic_edge_partition,
)


class MPCDynamicMST(DynamicMST):
    """Batch-dynamic exact MST in the MPC model."""

    @classmethod
    def build(
        cls,
        graph: WeightedGraph,
        k: int,
        rng: RngLike = None,
        engine: str = "sample_gather",
        init: str = "mpc",
        space: Optional[int] = None,
        **_ignored,
    ) -> "MPCDynamicMST":
        """Partition ``graph`` over k MPC machines with space S each.

        ``space`` defaults to ceil(4m/k) + Θ(k) so that kS = Θ(m) with
        room for the doubled (directed) edge copies and scratch state.
        """
        rng = as_rng(rng)
        if space is None:
            space = max(-(-4 * max(graph.m, 1) // k), 4 * k, 16)
        net = MPCNetwork(k, space=space, enforce_budget=False)
        ep = lexicographic_edge_partition(graph, k)
        vp = VertexPartition(k, dict(ep.leader))
        dm = cls(graph, k, vp, net, engine=engine, rng=rng)
        dm.edge_partition = ep
        dm.space = space
        before = net.ledger.snapshot()
        if init == "mpc":
            _msf, dm._next_tour_id = mpc_init(
                net, vp, dm.states, sorted(graph.vertices()), dm._next_tour_id,
                batch_limit=space,
            )
        elif init == "free":
            _msf, dm._next_tour_id = free_init(graph, vp, dm.states, dm._next_tour_id)
        else:
            raise ValueError(f"unknown MPC init mode {init!r}")
        dm.init_rounds = net.ledger.since(before).rounds
        return dm

    @property
    def batch_capacity(self) -> int:
        """Θ(S): an MPC batch may carry up to the per-machine space (§8)."""
        return self.space

    def apply_batch(self, batch):  # type: ignore[override]
        if len(batch) > self.space:
            raise InconsistentUpdate(
                f"MPC batch of {len(batch)} exceeds the per-round budget S={self.space}"
            )
        return super().apply_batch(batch)

    def _trace_meta(self) -> Dict[str, object]:
        """MPC runs are budgeted against Theorem 8.1: capacity is S, not k."""
        meta = super()._trace_meta()
        meta["model"] = "mpc"
        meta["space"] = self.space
        meta.pop("words_per_round", None)
        return meta
