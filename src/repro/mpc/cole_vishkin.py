"""Deterministic 3-colouring of oriented forests (Cole–Vishkin 1986).

Used by the §8 initialisation to pick conflict-free *stars* of components
to merge.  The classic algorithm:

1. start from distinct colours (ids);
2. repeatedly set ``colour(v) = 2 i + bit_i(colour(v))`` where ``i`` is
   the lowest bit position at which v's colour differs from its parent's
   (roots use their own colour with bit 0 flipped as a virtual parent) —
   colour-length drops log-star fast until colours fit in {0..5};
3. three shift-down + recolour passes eliminate colours 5, 4, 3.

Returns the colouring and the number of synchronous iterations, which the
distributed wrapper charges as communication supersteps.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple


def _lowest_diff_bit(a: int, b: int) -> int:
    x = a ^ b
    return (x & -x).bit_length() - 1


def cole_vishkin_3coloring(
    parent: Dict[Hashable, Optional[Hashable]],
) -> Tuple[Dict[Hashable, int], int]:
    """3-colour an oriented forest given child → parent pointers.

    ``parent[v] is None`` marks a root.  Returns (colours, iterations)
    where iterations counts the synchronous colour-exchange steps
    (Cole–Vishkin reductions plus the three shift-down passes).
    """
    nodes = sorted(parent, key=repr)
    index = {v: i for i, v in enumerate(nodes)}
    colour: Dict[Hashable, int] = {v: index[v] for v in nodes}
    iterations = 0

    def parent_colour(v: Hashable) -> int:
        p = parent[v]
        if p is None:
            return colour[v] ^ 1  # virtual parent differing in bit 0
        return colour[p]

    # Phase 1: iterated bit reduction until colours fit in {0..5}.
    while max(colour.values(), default=0) > 5:
        new: Dict[Hashable, int] = {}
        for v in nodes:
            pc = parent_colour(v)
            i = _lowest_diff_bit(colour[v], pc)
            new[v] = 2 * i + ((colour[v] >> i) & 1)
        colour = new
        iterations += 1

    # Phase 2: shift-down + recolour classes 5, 4, 3.
    children: Dict[Hashable, List[Hashable]] = {v: [] for v in nodes}
    roots: List[Hashable] = []
    for v in nodes:
        p = parent[v]
        if p is None:
            roots.append(v)
        else:
            children[p].append(v)
    for kill in (5, 4, 3):
        # Shift down: every vertex takes its parent's colour; roots pick
        # the smallest colour not equal to their current one.
        shifted: Dict[Hashable, int] = {}
        for v in nodes:
            p = parent[v]
            if p is None:
                shifted[v] = 0 if colour[v] != 0 else 1
            else:
                shifted[v] = colour[p]
        colour = shifted
        iterations += 1
        # All children of a vertex now share its old colour, so a vertex
        # of colour `kill` sees at most two neighbour colours.
        for v in nodes:
            if colour[v] == kill:
                used = {colour[parent[v]]} if parent[v] is not None else set()
                kid_cols = {colour[c] for c in children[v]}
                free = min(c for c in (0, 1, 2) if c not in used | kid_cols)
                colour[v] = free
        iterations += 1
    return colour, iterations


def verify_coloring(
    parent: Dict[Hashable, Optional[Hashable]], colour: Dict[Hashable, int]
) -> bool:
    """Proper 3-colouring check along every forest edge."""
    if any(c not in (0, 1, 2) for c in colour.values()):
        return False
    for v, p in parent.items():
        if p is not None and colour[v] == colour[p]:
            return False
    return True
