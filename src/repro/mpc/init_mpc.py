"""MPC initialisation in O(log n) rounds (§8): Borůvka with CV stars.

Each phase:

1. every current component finds its minimum outgoing edge (one batched
   min-query per component, O(1) rounds under the MPC cost rule);
2. the chosen edges, oriented along their min-outgoing direction (mutual
   pairs broken toward the smaller component id), form a forest F over
   components;
3. F is 3-coloured with Cole–Vishkin; the colour exchanges are real
   supersteps between the component leaders' machines, so the O(log* n)
   cost is measured, not assumed;
4. components of the most frequent colour merge through their chosen
   edge — since F-neighbours have different colours, the merged edge set
   is a union of stars — applied S at a time via Lemma 5.9.

The most-frequent colour covers ≥ 1/3 of the mergeable components, so
O(log n) phases finish.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.comm.aggregate import batched_queries
from repro.core.scripts import run_structural_batch
from repro.core.state import MachineState
from repro.graphs.dsu import DisjointSet
from repro.graphs.graph import Edge
from repro.mpc.cole_vishkin import cole_vishkin_3coloring
from repro.perf.config import fast_path_enabled
from repro.sim.message import WORDS_EDGE, WORDS_ID, Message
from repro.sim.network import Network
from repro.sim.partition import VertexPartition


def _charge_cv_exchanges(
    net: Network,
    vp: VertexPartition,
    parent: Dict[int, Optional[int]],
    iterations: int,
) -> None:
    """Charge the colour exchanges: per iteration, every child's leader
    machine receives its parent component's colour (1 word)."""
    msgs = []
    for child, par in parent.items():
        if par is None:
            continue
        src, dst = vp.home(par), vp.home(child)
        if src != dst:
            msgs.append(Message(src, dst, ("cv", par, child), WORDS_ID))
    for _ in range(max(iterations, 1)):
        net.superstep(list(msgs))


def mpc_init(
    net: Network,
    vp: VertexPartition,
    states: Sequence[MachineState],
    vertices: Sequence[int],
    next_tour_id: int,
    batch_limit: Optional[int] = None,
) -> Tuple[Set[Edge], int]:
    """Star-merge Borůvka; returns (MSF edges, advanced tour counter)."""
    if fast_path_enabled():
        from repro.perf.init_columnar import mpc_init_columnar

        return mpc_init_columnar(
            net, vp, states, vertices, next_tour_id, batch_limit
        )
    recorder = net.ledger.recorder
    if recorder is not None:
        recorder.on_engine("mpc_init", "scalar")
    k = net.k
    if batch_limit is None:
        batch_limit = getattr(net, "space", k)
    dsu = DisjointSet(vertices)
    msf: Set[Edge] = set()
    with net.ledger.phase("mpc_init"):
        while True:
            roots = sorted({dsu.find(v) for v in vertices})
            if len(roots) <= 1:
                break
            # Step 1: per-component min outgoing edge.
            per_query: Dict[int, List[Optional[Tuple]]] = {r: [None] * k for r in roots}
            for st in states:
                best: Dict[int, Tuple] = {}
                for (u, v), w in st.graph_edges.items():
                    ru, rv = dsu.find(u), dsu.find(v)
                    if ru == rv:
                        continue
                    cand = ((w, u, v), u, v)
                    for r in (ru, rv):
                        if r in per_query and (r not in best or cand < best[r]):
                            best[r] = cand
                for r, cand in best.items():
                    per_query[r][st.mid] = cand
            answers = batched_queries(net, per_query, min, words=WORDS_EDGE)

            # Step 2: orient the component forest F.
            chosen: Dict[int, Tuple[int, int, float, int]] = {}
            for r in roots:
                ans = answers.get(r)
                if ans is None:
                    continue
                (w, u, v), eu, ev = ans[0], ans[1], ans[2]
                other = dsu.find(ev) if dsu.find(eu) == r else dsu.find(eu)
                chosen[r] = (eu, ev, w, other)
            if not chosen:
                break
            # Mutual pairs (a ↔ b, a < b) make a the root of their tree;
            # the classic argument rules out longer pointer cycles.
            parent: Dict[int, Optional[int]] = {}
            for r, (_eu, _ev, _w, other) in chosen.items():
                mutual = other in chosen and chosen[other][3] == r
                parent[r] = None if (mutual and r < other) else other

            # Step 3: Cole–Vishkin 3-colouring, charged per iteration.
            colour, iters = cole_vishkin_3coloring(parent)
            # Leader of component r = home machine of vertex r.
            _charge_cv_exchanges(net, vp, parent, iters)

            # Step 4: the most frequent colour merges through its edge.
            counts = Counter(colour[r] for r in chosen if parent[r] is not None)
            best_colour = min(
                (c for c in counts), key=lambda c: (-counts[c], c)
            )
            links: List[Tuple[int, int, float]] = []
            for r in sorted(chosen):
                if colour[r] != best_colour or parent[r] is None:
                    continue
                eu, ev, w, other = chosen[r]
                if dsu.union(r, other):
                    links.append((eu, ev, w))
                    msf.add(Edge.of(eu, ev, w))
            links.sort()
            for base in range(0, len(links), max(batch_limit, 1)):
                chunk = links[base : base + batch_limit]
                next_tour_id = run_structural_batch(
                    net, vp, states, cuts=[], links=chunk, next_tour_id=next_tour_id
                )
    return msf, next_tour_id
