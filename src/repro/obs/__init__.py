"""repro.obs — live telemetry: bus, metrics registry, dashboard server.

The observability layer sits *beside* the simulator, never inside it:

* :mod:`~repro.obs.bus` — :class:`TelemetryBus`, a bounded in-process
  ring; slow subscribers drop (and count) events, never stall a run;
* :mod:`~repro.obs.sink` — :class:`BusSink`, the
  :class:`~repro.sim.metrics.TraceSink` that publishes schema-shaped
  events onto a bus, and :class:`TeeSink` to fan one ledger out to a
  file recorder *and* the bus;
* :mod:`~repro.obs.registry` — :class:`MetricsRegistry`, folding bus
  events into counters/gauges/histograms (throughput, skew, batch
  latency, theorem-budget headroom, chaos and worker-pool counters);
* :mod:`~repro.obs.prom` — the shared Prometheus text formatter;
* :mod:`~repro.obs.server` — :class:`ObsServer`, stdlib HTTP endpoints
  (``/metrics``, ``/healthz``, ``/snapshot``, ``/`` dashboard);
* :mod:`~repro.obs.live` — :class:`ObsSession` bundling the above, and
  :func:`watch_scenario`, the driver behind ``repro watch``.

Detached telemetry is free by construction: with no bus attached the
charge path pays the same single ``ledger.recorder`` attribute read it
always did, and attaching one never changes ledger digests or trace
file bytes (the equivalence tests pin this under ``REPRO_STRICT=1``).
"""

from repro.obs.bus import DEFAULT_CAPACITY, Subscription, TelemetryBus
from repro.obs.live import ObsSession, watch_scenario
from repro.obs.prom import (
    MetricFamily,
    Sample,
    escape_label_value,
    histogram_family,
    render_families,
)
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.server import PROM_CONTENT_TYPE, ObsServer
from repro.obs.sink import BusSink, TeeSink

__all__ = [
    "DEFAULT_CAPACITY",
    "TelemetryBus",
    "Subscription",
    "BusSink",
    "TeeSink",
    "Histogram",
    "MetricsRegistry",
    "MetricFamily",
    "Sample",
    "escape_label_value",
    "histogram_family",
    "render_families",
    "ObsServer",
    "PROM_CONTENT_TYPE",
    "ObsSession",
    "watch_scenario",
]
