"""The telemetry bus: bounded in-process pub/sub over a ring buffer.

:class:`TelemetryBus` is the fan-out point of the live observability
layer.  A single producer (the simulator thread, via
:class:`~repro.obs.sink.BusSink`) publishes event dicts; any number of
subscribers (a :class:`~repro.obs.registry.MetricsRegistry`, the HTTP
server's scrape handlers, tests) poll them at their own pace.

The design constraint is the same one the trace recorder lives under:
**telemetry must never stall the simulator.**  So the bus is

* *bounded* — a preallocated ring of ``capacity`` slots; publishing is
  one slot write + one counter increment, no allocation, no locks, no
  waiting;
* *lossy per subscriber* — a subscriber that falls more than
  ``capacity`` events behind loses the overwritten events and its
  :attr:`Subscription.dropped` counter says exactly how many.  The
  producer never blocks, never sheds its own events, and never sees the
  subscribers at all;
* *lock-free* — correctness rides on the CPython memory model: the slot
  store happens-before the cursor increment, both are atomic under the
  GIL, and readers re-check the cursor after reading a slot to discard
  torn (lapped) reads.

Events are plain dicts shaped exactly like trace-file events (``type``,
``seq``, payload fields) plus the ambient ``wall_ns`` stamp, so every
consumer of :mod:`repro.trace.events` schemas can read bus traffic
unchanged.  Publishers must treat a published dict as frozen.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Default ring capacity — a few complete smoke scenarios' worth of
#: events; scrape-rate consumers lag by far less.
DEFAULT_CAPACITY = 8192


class Subscription:
    """One subscriber's read position on a :class:`TelemetryBus`.

    Created by :meth:`TelemetryBus.subscribe`.  :meth:`poll` returns
    every event published since the previous poll that is still in the
    ring; events the subscriber was too slow to see are counted in
    :attr:`dropped` (and in the bus-wide total) instead of blocking the
    producer.
    """

    def __init__(self, bus: "TelemetryBus", name: str, start: int) -> None:
        self.bus = bus
        self.name = name
        #: Cursor of the next event to read (monotone, bus-wide).
        self.position = start
        #: Events overwritten before this subscriber read them.
        self.dropped = 0
        self.closed = False

    def pending(self) -> int:
        """Events published and not yet polled (including any now lost)."""
        return self.bus.published - self.position

    def poll(self, max_events: Optional[int] = None) -> List[Dict[str, Any]]:
        """Drain available events, oldest first; never blocks.

        ``max_events`` caps one drain (the rest stay for the next poll);
        the cap applies after accounting for anything already lost.
        """
        if self.closed:
            return []
        bus = self.bus
        cursor = bus.published
        start = self.position
        lost = cursor - start - bus.capacity
        if lost > 0:
            # The producer lapped us: the oldest `lost` events are gone.
            self.dropped += lost
            start += lost
        if max_events is not None and cursor - start > max_events:
            cursor = start + max_events
        out: List[Dict[str, Any]] = []
        ring = bus._ring
        capacity = bus.capacity
        for i in range(start, cursor):
            event = ring[i % capacity]
            if bus.published - i > capacity:
                # Lapped mid-read; the slot no longer holds event i.
                self.dropped += 1
                continue
            if event is not None:
                out.append(event)
        self.position = cursor
        return out

    def close(self) -> None:
        self.closed = True
        self.bus._detach(self)


class TelemetryBus:
    """Bounded, drop-counting, in-process event fan-out (single producer)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("bus capacity must be positive")
        self.capacity = capacity
        self._ring: List[Optional[Dict[str, Any]]] = [None] * capacity
        #: Total events ever published (monotone; ring index modulo capacity).
        self.published = 0
        self._subscriptions: List[Subscription] = []

    # -- producer side -------------------------------------------------
    def publish(self, event: Dict[str, Any]) -> None:
        """Store one event; O(1), lock-free, never blocks or raises.

        The slot write lands before the cursor increment (program order
        under the GIL), so a reader that observes the new cursor value
        observes the event too.
        """
        self._ring[self.published % self.capacity] = event
        self.published += 1

    # -- consumer side -------------------------------------------------
    def subscribe(self, name: str = "subscriber") -> Subscription:
        """Attach a new subscriber positioned at the current cursor."""
        sub = Subscription(self, name, start=self.published)
        self._subscriptions.append(sub)
        return sub

    def _detach(self, sub: Subscription) -> None:
        try:
            self._subscriptions.remove(sub)
        except ValueError:
            pass

    @property
    def subscribers(self) -> int:
        return len(self._subscriptions)

    def dropped_total(self) -> int:
        """Events lost across all live subscribers (slow-consumer tally)."""
        return sum(sub.dropped for sub in self._subscriptions)

    def __repr__(self) -> str:
        return (
            f"TelemetryBus(capacity={self.capacity}, "
            f"published={self.published}, subscribers={self.subscribers})"
        )
