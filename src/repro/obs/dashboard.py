"""The single-file HTML dashboard served at ``/`` by the obs server.

Pure static markup + a small polling loop against ``/snapshot`` — no
build step, no external assets, no package-data plumbing: the page is a
module-level string so it ships inside the wheel and renders from any
browser pointed at ``repro watch``.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro — live MST telemetry</title>
<style>
  :root { color-scheme: dark; }
  body { background:#0d1117; color:#c9d1d9; font:14px/1.45 ui-monospace,
         SFMono-Regular, Menlo, Consolas, monospace; margin:1.5rem; }
  h1 { font-size:1.15rem; color:#e6edf3; margin:0 0 .25rem; }
  .sub { color:#8b949e; margin-bottom:1rem; }
  .grid { display:grid; grid-template-columns:repeat(auto-fit,minmax(210px,1fr));
          gap:.75rem; margin-bottom:1rem; }
  .card { background:#161b22; border:1px solid #30363d; border-radius:8px;
          padding:.7rem .9rem; }
  .card .label { color:#8b949e; font-size:.75rem; text-transform:uppercase;
                 letter-spacing:.06em; }
  .card .value { font-size:1.5rem; color:#e6edf3; margin-top:.15rem; }
  .card .hint { color:#8b949e; font-size:.75rem; margin-top:.1rem; }
  .ok { color:#3fb950; } .warn { color:#d29922; } .bad { color:#f85149; }
  table { border-collapse:collapse; width:100%; margin-bottom:1rem; }
  th, td { text-align:right; padding:.25rem .6rem; border-bottom:1px solid #21262d; }
  th { color:#8b949e; font-weight:normal; }
  td:first-child, th:first-child { text-align:left; }
  h2 { font-size:.85rem; color:#8b949e; text-transform:uppercase;
       letter-spacing:.06em; margin:1.25rem 0 .5rem; }
  .bars { display:flex; align-items:flex-end; gap:2px; height:48px; }
  .bars div { background:#1f6feb; flex:1 1 0; min-width:3px; }
  #status { float:right; }
</style>
</head>
<body>
<h1>repro — live MST telemetry <span id="status" class="warn">connecting…</span></h1>
<div class="sub" id="runline">waiting for a run…</div>

<div class="grid">
  <div class="card"><div class="label">rounds</div>
    <div class="value" id="rounds">0</div>
    <div class="hint"><span id="rps">0</span> rounds/sec</div></div>
  <div class="card"><div class="label">words moved</div>
    <div class="value" id="words">0</div>
    <div class="hint"><span id="messages">0</span> messages</div></div>
  <div class="card"><div class="label">batches</div>
    <div class="value" id="batches">0</div>
    <div class="hint"><span id="supersteps">0</span> supersteps</div></div>
  <div class="card"><div class="label">budget headroom</div>
    <div class="value" id="headroom">—</div>
    <div class="hint" id="budgetline">rounds under the theorem envelope</div></div>
  <div class="card"><div class="label">load skew (send / recv)</div>
    <div class="value" id="skew">—</div>
    <div class="hint">max/mean per-machine words</div></div>
  <div class="card"><div class="label">pool</div>
    <div class="value" id="poolworkers">0</div>
    <div class="hint"><span id="pooldispatches">0</span> dispatches ·
      <span id="poolfallbacks">0</span> fallbacks ·
      <span id="slab">0</span> shm</div></div>
  <div class="card"><div class="label">chaos</div>
    <div class="value" id="chaosfaults">0</div>
    <div class="hint"><span id="crashes">0</span> crashes ·
      <span id="recoveries">0</span> recoveries ·
      <span id="strict">0</span> strict violations</div></div>
  <div class="card"><div class="label">stream queue</div>
    <div class="value" id="streamqueue">—</div>
    <div class="hint"><span id="streampolicy">no policy</span> ·
      target <span id="streamtarget">—</span> ·
      oldest <span id="streamage">0</span> ticks</div></div>
  <div class="card"><div class="label">stream coalescing</div>
    <div class="value" id="streamshipped">—</div>
    <div class="hint"><span id="streamadmitted">0</span> admitted ·
      <span id="streamabsorbed">0</span> absorbed ·
      p99 <span id="streamp99">—</span> ticks</div></div>
  <div class="card"><div class="label">serve daemon</div>
    <div class="value" id="servesessions">—</div>
    <div class="hint"><span id="servestate">down</span> ·
      v<span id="serveversion">0</span> ·
      <span id="servepublishes">0</span> publishes ·
      <span id="serveerrors">0</span> errors</div></div>
  <div class="card"><div class="label">telemetry bus</div>
    <div class="value" id="busevents">0</div>
    <div class="hint"><span id="busdropped">0</span> dropped</div></div>
</div>

<h2>per-machine send words</h2>
<div class="bars" id="machinebars"></div>

<h2>recent batches</h2>
<table>
  <thead><tr><th>mode</th><th>size</th><th>rounds</th><th>words</th>
    <th>wall&nbsp;s</th><th>headroom</th></tr></thead>
  <tbody id="batchrows"><tr><td colspan="6">no batches yet</td></tr></tbody>
</table>

<script>
"use strict";
const fmt = n => n == null ? "—" : Number(n).toLocaleString("en-US");
const el = id => document.getElementById(id);
async function tick() {
  let snap;
  try {
    const res = await fetch("/snapshot", {cache: "no-store"});
    snap = await res.json();
    el("status").textContent = "live";
    el("status").className = "ok";
  } catch (err) {
    el("status").textContent = "disconnected";
    el("status").className = "bad";
    return;
  }
  const run = snap.run || {};
  if (run.model) {
    el("runline").textContent =
      `model ${run.model} · k=${run.k} · n=${run.n ?? "?"} · m=${run.m ?? "?"}`
      + ` · engine ${run.engine ?? "?"}`
      + (snap.budget.describe ? ` · ${snap.budget.describe}` : "");
  }
  el("rounds").textContent = fmt(snap.totals.rounds);
  el("rps").textContent = fmt(snap.rates.rounds_per_second);
  el("words").textContent = fmt(snap.totals.words);
  el("messages").textContent = fmt(snap.totals.messages);
  el("batches").textContent = fmt(snap.totals.batches);
  el("supersteps").textContent = fmt(snap.totals.supersteps);
  const head = snap.budget.last_headroom;
  el("headroom").textContent = fmt(head);
  el("headroom").className = "value " +
    (head == null ? "" : head < 0 ? "bad" : head < 64 ? "warn" : "ok");
  el("budgetline").textContent =
    `${fmt(snap.budget.violations)} over-budget · worst ${fmt(snap.budget.min_headroom)}`;
  el("skew").textContent =
    `${snap.machines.send_skew} / ${snap.machines.recv_skew}`;
  el("poolworkers").textContent = fmt(snap.pool.workers);
  el("pooldispatches").textContent =
    fmt(Object.values(snap.pool.dispatches).reduce((a, b) => a + b, 0));
  el("poolfallbacks").textContent =
    fmt(Object.values(snap.pool.fallbacks).reduce((a, b) => a + b, 0));
  el("slab").textContent = fmt(snap.pool.slab_bytes) + " B";
  el("chaosfaults").textContent =
    fmt(Object.values(snap.chaos.faults).reduce((a, b) => a + b, 0));
  el("crashes").textContent = fmt(snap.chaos.crashes);
  el("recoveries").textContent = fmt(snap.chaos.recoveries);
  el("strict").textContent = fmt(snap.chaos.strict_violations);
  const stream = snap.stream || {};
  el("streamqueue").textContent = fmt(stream.queue_depth);
  el("streampolicy").textContent = stream.policy || "no policy";
  el("streamtarget").textContent = fmt(stream.target);
  el("streamage").textContent = fmt(stream.oldest_age_ticks);
  el("streamshipped").textContent = fmt(stream.shipped);
  el("streamadmitted").textContent = fmt(stream.admitted);
  el("streamabsorbed").textContent = fmt(stream.absorbed);
  el("streamp99").textContent = fmt(stream.p99_ticks);
  const serve = snap.serve || {};
  el("servesessions").textContent = fmt(serve.sessions);
  el("servestate").textContent = serve.running ? "up" : "down";
  el("servestate").className = serve.running ? "ok" : "";
  el("serveversion").textContent = fmt(serve.forest_version);
  el("servepublishes").textContent = fmt(serve.publishes);
  el("serveerrors").textContent =
    fmt(Object.values(serve.errors || {}).reduce((a, b) => a + b, 0));
  el("busevents").textContent = fmt(snap.bus.events);
  el("busdropped").textContent = fmt(snap.bus.dropped);
  const bars = el("machinebars");
  const send = snap.machines.send_words || [];
  const peak = Math.max(1, ...send);
  bars.innerHTML = send.map(w =>
    `<div style="height:${Math.max(2, Math.round(46 * w / peak))}px"
          title="${fmt(w)} words"></div>`).join("");
  const rows = (snap.batches || []).slice(-12).reverse().map(b =>
    `<tr><td>${b.mode}</td><td>${fmt(b.size)}</td><td>${fmt(b.rounds)}</td>
     <td>${fmt(b.words)}</td><td>${b.seconds ?? "—"}</td>
     <td class="${b.headroom != null && b.headroom < 0 ? "bad" : "ok"}">
       ${fmt(b.headroom)}</td></tr>`);
  el("batchrows").innerHTML =
    rows.join("") || '<tr><td colspan="6">no batches yet</td></tr>';
}
tick();
setInterval(tick, 1000);
</script>
</body>
</html>
"""
