"""Live observability sessions: bus + registry + server as one unit.

:class:`ObsSession` bundles the three tentpole pieces —
:class:`~repro.obs.bus.TelemetryBus`,
:class:`~repro.obs.registry.MetricsRegistry`,
:class:`~repro.obs.server.ObsServer` — behind one context manager, and
installs the kernel-pool telemetry sink for its lifetime (restoring
whatever was there before).  The CLI surfaces build on it:

* ``repro watch <scenario>`` — :func:`watch_scenario`, which loops a
  named scenario under an attached :class:`~repro.obs.sink.BusSink` so
  the dashboard has something to show;
* ``--serve-metrics`` on ``repro trace`` / ``repro chaos`` / the bench
  harness — the session's :meth:`~ObsSession.sink` is teed alongside
  the normal file recorder.

Everything here is strictly additive: the simulator's charge path is
untouched, the file recorder writes the same bytes with or without a
session, and closing the session detaches cleanly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.obs.bus import TelemetryBus
from repro.obs.registry import MetricsRegistry
from repro.obs.server import ObsServer
from repro.obs.sink import BusSink


class ObsSession:
    """One live telemetry stack: bus, registry, HTTP server, pool sink.

    ``serve=False`` skips the HTTP server (bus + registry only, e.g. for
    tests or in-process consumers).  ``port=0`` binds a free port; read
    the real one from :attr:`url`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: Optional[int] = None,
        envelope: Optional[int] = None,
        serve: bool = True,
    ) -> None:
        self.bus = (
            TelemetryBus(capacity) if capacity is not None else TelemetryBus()
        )
        self.registry = MetricsRegistry(self.bus, envelope=envelope)
        self.server: Optional[ObsServer] = (
            ObsServer(self.registry, host=host, port=port) if serve else None
        )
        self._prev_pool_sink: Optional[Any] = None
        self._pool_sink: Optional[BusSink] = None
        self._started = False

    # ------------------------------------------------------------------
    @property
    def url(self) -> Optional[str]:
        return self.server.url if self.server is not None else None

    def sink(self, meta: Optional[Dict[str, Any]] = None) -> BusSink:
        """A fresh :class:`BusSink` publishing onto this session's bus."""
        return BusSink(self.bus, meta=meta)

    def start(self) -> "ObsSession":
        if self._started:
            return self
        from repro.perf.parallel.pool import set_telemetry_sink

        self._pool_sink = BusSink(self.bus, meta={"source": "kernel-pool"})
        self._prev_pool_sink = set_telemetry_sink(self._pool_sink)
        if self.server is not None:
            self.server.start()
        self._started = True
        return self

    def close(self) -> None:
        if not self._started:
            return
        from repro.perf.parallel.pool import set_telemetry_sink

        set_telemetry_sink(self._prev_pool_sink)
        self._prev_pool_sink = None
        if self._pool_sink is not None:
            self._pool_sink.close()
            self._pool_sink = None
        if self.server is not None:
            self.server.close()
        self.registry.close()
        self._started = False

    def __enter__(self) -> "ObsSession":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


def watch_scenario(
    scenario_name: str,
    host: str = "127.0.0.1",
    port: int = 0,
    loops: int = 0,
    engine: str = "sample_gather",
    init: Optional[str] = None,
    backend: Optional[str] = None,
    envelope: Optional[int] = None,
    on_ready: Optional[Callable[[ObsSession], None]] = None,
    on_loop: Optional[Callable[[int, Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Serve live telemetry while looping ``scenario_name``.

    The one-command demo behind ``repro watch``: starts an
    :class:`ObsSession`, then runs the named scenario with a
    :class:`BusSink` attached, ``loops`` times (``0`` = until
    interrupted — the live-dashboard default).  ``on_ready`` fires once
    the server is up (the CLI prints the URL); ``on_loop`` fires after
    each completed run with its summary.

    Returns a final report: the server URL, loops completed, the last
    run summary, and the registry snapshot at shutdown.
    """
    from repro.trace.scenarios import get_scenario, run_traced

    scenario = get_scenario(scenario_name)
    completed = 0
    last_summary: Optional[Dict[str, Any]] = None
    with ObsSession(host=host, port=port, envelope=envelope) as session:
        if on_ready is not None:
            on_ready(session)
        try:
            while loops == 0 or completed < loops:
                telemetry = session.sink(meta={"scenario": scenario.name})
                try:
                    last_summary = run_traced(
                        scenario, sink=None, engine=engine, init=init,
                        backend=backend, telemetry=telemetry,
                    )
                finally:
                    telemetry.close()
                completed += 1
                if on_loop is not None:
                    on_loop(completed, last_summary)
        except KeyboardInterrupt:
            pass
        snapshot = session.registry.snapshot()
        url = session.url
    return {
        "scenario": scenario.name,
        "url": url,
        "loops": completed,
        "last_run": last_summary,
        "snapshot": snapshot,
    }
