"""Prometheus text exposition, shared by every scrape surface.

One formatter serves both the post-hoc report
(:func:`repro.trace.report.to_prometheus`) and the live ``/metrics``
endpoint (:class:`repro.obs.server.ObsServer`), so the two surfaces can
never drift: same ``# HELP``/``# TYPE`` headers, same label escaping,
same value formatting.

The model is the subset of the exposition format the repo needs:

* :class:`MetricFamily` — one metric name with its type (``counter``,
  ``gauge`` or ``histogram``) and help text;
* :class:`Sample` — one sample line: optional labels plus a value.

Histograms are pre-bucketed by the caller and rendered as the standard
``_bucket``/``_sum``/``_count`` triplet with cumulative ``le`` labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: The exposition types this formatter speaks.
VALID_TYPES = ("counter", "gauge", "histogram", "untyped")


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (\\\\, \\", \\n)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_value(value: Number) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, bool):  # bool is an int; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name{labels} value``."""

    value: Number
    labels: Tuple[Tuple[str, str], ...] = ()

    @staticmethod
    def of(value: Number, **labels: object) -> "Sample":
        return Sample(
            value=value,
            labels=tuple((k, str(v)) for k, v in labels.items()),
        )

    def render(self, name: str) -> str:
        if not self.labels:
            return f"{name} {format_value(self.value)}"
        inner = ",".join(
            f'{k}="{escape_label_value(v)}"' for k, v in self.labels
        )
        return f"{name}{{{inner}}} {format_value(self.value)}"


@dataclass
class MetricFamily:
    """One named metric: type, help text, and its sample lines."""

    name: str
    mtype: str
    help: str
    samples: List[Sample] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.mtype not in VALID_TYPES:
            raise ValueError(
                f"metric type {self.mtype!r} not in {VALID_TYPES}"
            )

    def add(self, value: Number, **labels: object) -> "MetricFamily":
        self.samples.append(Sample.of(value, **labels))
        return self

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.mtype}",
        ]
        if not self.samples:
            # An empty family still scrapes as a present-but-zero series.
            lines.append(f"{self.name} 0")
            return lines
        lines.extend(sample.render(self.name) for sample in self.samples)
        return lines


def histogram_family(
    name: str,
    help_text: str,
    bucket_counts: Dict[float, int],
    total_sum: Number,
    total_count: int,
    labels: Optional[Dict[str, str]] = None,
) -> MetricFamily:
    """Build a histogram family from per-bucket (non-cumulative) counts.

    ``bucket_counts`` maps each upper bound to the observations that
    landed in that bucket; the renderer accumulates them and appends the
    ``+Inf`` bucket, ``_sum`` and ``_count`` per the exposition format.
    """
    base = dict(labels or {})
    fam = MetricFamily(name, "histogram", help_text)
    cumulative = 0
    for bound in sorted(bucket_counts):
        cumulative += bucket_counts[bound]
        bound_text = format_value(bound)
        fam.samples.append(
            Sample.of(cumulative, **base, le=bound_text)
        )
    fam.samples.append(Sample.of(total_count, **base, le="+Inf"))
    # _sum and _count render under suffixed names; mark them in-band and
    # let render_families expand (keeps MetricFamily a single name).
    fam.samples.append(Sample.of(total_sum, __suffix__="_sum", **base))
    fam.samples.append(Sample.of(total_count, __suffix__="_count", **base))
    return fam


def _render_histogram(fam: MetricFamily) -> List[str]:
    lines = [
        f"# HELP {fam.name} {fam.help}",
        f"# TYPE {fam.name} histogram",
    ]
    for sample in fam.samples:
        labels = dict(sample.labels)
        suffix = labels.pop("__suffix__", None)
        if suffix is not None:
            name = fam.name + suffix
            rendered = Sample(
                value=sample.value, labels=tuple(labels.items())
            ).render(name)
        else:
            rendered = Sample(
                value=sample.value, labels=tuple(labels.items())
            ).render(fam.name + "_bucket")
        lines.append(rendered)
    return lines


def render_families(families: Sequence[MetricFamily]) -> str:
    """The full scrape body for a sequence of metric families."""
    lines: List[str] = []
    for fam in families:
        if fam.mtype == "histogram":
            lines.extend(_render_histogram(fam))
        else:
            lines.extend(fam.render())
    return "\n".join(lines) + "\n"
