"""The metrics registry: bus events in, counters/gauges/histograms out.

A :class:`MetricsRegistry` subscribes to a
:class:`~repro.obs.bus.TelemetryBus` and folds the event stream into
the live operational state the ROADMAP dashboard asks for:

* throughput — cumulative rounds/messages/words plus a **rounds/sec**
  gauge over the run's wall-clock window;
* balance — per-machine cumulative send/recv words and their **skew**
  (max/mean), the quantity the Lenzen-routing assumptions keep near 1;
* latency — **batch histograms** in both charged rounds and wall
  seconds;
* headroom — the live **theorem-budget headroom** per batch, from
  :func:`repro.trace.budgets.budget_for_run` (positive: rounds to
  spare under the envelope; negative: over budget);
* chaos — fault/retry/crash/checkpoint/recovery counters;
* the worker pool — per-worker dispatch/barrier-wait time, shm slab
  bytes, inline-fallback counts (the ``pool_*`` events);
* the serve daemon — live sessions, command outcomes by op/status,
  protocol error codes, forest-view publications and evictions (the
  ``serve_*`` events from ``repro serve``);
* the bus itself — events seen and events dropped on the floor because
  this consumer was too slow.

Aggregation happens on :meth:`pump` (called by every ``collect``/
``snapshot``), so the registry needs no thread of its own: the HTTP
scrape is the scheduler.  Nothing here ever touches the simulator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.bus import Subscription, TelemetryBus
from repro.obs.prom import MetricFamily, histogram_family
from repro.trace.budgets import RoundBudget, budget_for_run

#: Bucket bounds for batch cost in charged rounds.
BATCH_ROUND_BUCKETS: Tuple[float, ...] = (
    64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
)
#: Bucket bounds for batch latency in wall seconds.
BATCH_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
#: Bucket bounds for one pool dispatch in wall seconds.
POOL_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
)

#: How many finished batches the JSON snapshot keeps for the dashboard.
RECENT_BATCH_WINDOW = 50


class Histogram:
    """Fixed-bucket histogram (counts per bound, plus sum and count)."""

    def __init__(self, buckets: Sequence[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        self.counts: Dict[float, int] = {b: 0 for b in self.bounds}
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for bound in self.bounds:
            if value <= bound:
                self.counts[bound] += 1
                break

    def family(self, name: str, help_text: str) -> MetricFamily:
        return histogram_family(
            name, help_text, self.counts, round(self.total, 9), self.count
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "buckets": {str(b): self.counts[b] for b in self.bounds},
            "sum": round(self.total, 9),
            "count": self.count,
        }


def _skew(loads: Sequence[int]) -> float:
    positive = [x for x in loads if x > 0]
    if not positive:
        return 1.0
    mean = sum(loads) / len(loads)
    return max(loads) / mean if mean > 0 else 1.0


def _grow_to(vec: List[int], n: int) -> None:
    if len(vec) < n:
        vec.extend([0] * (n - len(vec)))


class MetricsRegistry:
    """Folds telemetry-bus events into scrapeable metric families."""

    def __init__(
        self,
        bus: Optional[TelemetryBus] = None,
        envelope: Optional[int] = None,
    ) -> None:
        self.bus = bus
        self.envelope = envelope
        self._sub: Optional[Subscription] = (
            bus.subscribe("metrics-registry") if bus is not None else None
        )
        # throughput
        self.rounds = 0
        self.messages = 0
        self.words = 0
        self.charges = 0
        self.supersteps = 0
        self.engines: Dict[str, int] = {}
        self.events_seen = 0
        # wall-clock window (from event wall_ns stamps; None until seen)
        self.first_wall_ns: Optional[int] = None
        self.last_wall_ns: Optional[int] = None
        # balance
        self.send_words: List[int] = []
        self.recv_words: List[int] = []
        self.size_hist: Dict[int, int] = {}
        # phases (same attribution rule as the ledger)
        self.phase_rounds: Dict[str, int] = {}
        self.phase_words: Dict[str, int] = {}
        # batches / budget
        self.run_meta: Dict[str, Any] = {}
        self.budget: Optional[RoundBudget] = None
        self.batches = 0
        self.budget_violations = 0
        self.last_headroom: Optional[int] = None
        self.min_headroom: Optional[int] = None
        self.batch_rounds = Histogram(BATCH_ROUND_BUCKETS)
        self.batch_seconds = Histogram(BATCH_SECONDS_BUCKETS)
        self.recent_batches: List[Dict[str, Any]] = []
        self._open_batch_wall_ns: Optional[int] = None
        # chaos
        self.violations = 0
        self.faults: Dict[str, int] = {}
        self.crashes = 0
        self.restarts = 0
        self.checkpoints = 0
        self.recoveries = 0
        self.recovery_rounds = 0
        self.replayed_batches = 0
        # streaming scheduler (repro.stream)
        self.stream_admitted = 0
        self.stream_shipped = 0
        self.stream_absorbed = 0
        self.stream_cuts: Dict[Tuple[str, str], int] = {}
        self.stream_adapts = 0
        self.stream_queue_depth = 0
        self.stream_oldest_age = 0
        self.stream_target: Optional[int] = None
        self.stream_policy: Optional[str] = None
        self.stream_tick = 0
        self.stream_runs = 0
        self.stream_p50_ticks: Optional[float] = None
        self.stream_p99_ticks: Optional[float] = None
        # worker pool
        self.pool_workers = 0
        self.pool_start_method: Optional[str] = None
        self.pool_dispatches: Dict[str, int] = {}
        self.pool_dispatch_seconds = Histogram(POOL_SECONDS_BUCKETS)
        self.pool_rows = 0
        self.pool_worker_wait_ns: List[int] = []
        self.pool_slab_bytes = 0
        self.pool_fallbacks: Dict[str, int] = {}
        # serve daemon (repro.serve)
        self.serve_running = 0
        self.serve_policy: Optional[str] = None
        self.serve_sessions = 0
        self.serve_conns: Dict[str, int] = {}
        self.serve_evictions: Dict[str, int] = {}
        self.serve_cmds: Dict[Tuple[str, str], int] = {}
        self.serve_cmd_errors: Dict[str, int] = {}
        self.serve_publishes = 0
        self.serve_version = 0
        self.serve_edges_added = 0
        self.serve_edges_removed = 0
        self.serve_weight: Optional[float] = None
        self.serve_admitted = 0
        self.serve_rejected = 0
        self.serve_digest: Optional[str] = None
        # lifecycle
        self.runs_started = 0
        self.runs_ended = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def pump(self, max_events: Optional[int] = None) -> int:
        """Drain and fold pending bus events; returns how many."""
        if self._sub is None:
            return 0
        events = self._sub.poll(max_events)
        for event in events:
            self.apply(event)
        return len(events)

    def apply(self, event: Dict[str, Any]) -> None:
        """Fold one event (public so tests can feed events directly)."""
        self.events_seen += 1
        wall = event.get("wall_ns")
        if isinstance(wall, int):
            if self.first_wall_ns is None:
                self.first_wall_ns = wall
            self.last_wall_ns = wall
        etype = event.get("type")
        handler = getattr(self, f"_on_{etype}", None)
        if handler is not None:
            handler(event)

    # -- event handlers (one per type; unknown types are ignored) -------
    def _on_run_start(self, event: Dict[str, Any]) -> None:
        self.runs_started += 1
        self.run_meta = {
            k: v for k, v in event.items()
            if k not in ("type", "seq", "wall_ns")
        }
        self.budget = budget_for_run(self.run_meta, envelope=self.envelope)

    def _on_run_end(self, event: Dict[str, Any]) -> None:
        self.runs_ended += 1

    def _on_superstep(self, event: Dict[str, Any]) -> None:
        self._fold_charge(event)
        self.supersteps += 1
        engine = str(event.get("engine", "?"))
        self.engines[engine] = self.engines.get(engine, 0) + 1
        send = [int(x) for x in event.get("send", ())]
        recv = [int(x) for x in event.get("recv", ())]
        _grow_to(self.send_words, len(send))
        _grow_to(self.recv_words, len(recv))
        for i, w in enumerate(send):
            self.send_words[i] += w
        for i, w in enumerate(recv):
            self.recv_words[i] += w
        for wstr, count in (event.get("sizes") or {}).items():
            w = int(wstr)
            self.size_hist[w] = self.size_hist.get(w, 0) + int(count)

    def _on_charge(self, event: Dict[str, Any]) -> None:
        self._fold_charge(event)

    def _fold_charge(self, event: Dict[str, Any]) -> None:
        rounds = int(event["rounds"])
        words = int(event["words"])
        self.charges += 1
        self.rounds += rounds
        self.messages += int(event["messages"])
        self.words += words
        for name in event.get("phases", ()):
            self.phase_rounds[name] = self.phase_rounds.get(name, 0) + rounds
            self.phase_words[name] = self.phase_words.get(name, 0) + words

    def _on_batch_start(self, event: Dict[str, Any]) -> None:
        wall = event.get("wall_ns")
        self._open_batch_wall_ns = wall if isinstance(wall, int) else None

    def _on_batch_end(self, event: Dict[str, Any]) -> None:
        self.batches += 1
        size = int(event["size"])
        mode = str(event["mode"])
        rounds = int(event["rounds"])
        self.batch_rounds.observe(float(rounds))
        wall = event.get("wall_ns")
        seconds: Optional[float] = None
        if isinstance(wall, int) and self._open_batch_wall_ns is not None:
            seconds = max(0.0, (wall - self._open_batch_wall_ns) / 1e9)
            self.batch_seconds.observe(seconds)
        self._open_batch_wall_ns = None
        headroom: Optional[int] = None
        if self.budget is not None:
            allowed = self.budget.batch_budget(size, mode)
            headroom = allowed - rounds
            self.last_headroom = headroom
            self.min_headroom = (
                headroom if self.min_headroom is None
                else min(self.min_headroom, headroom)
            )
            if headroom < 0:
                self.budget_violations += 1
        self.recent_batches.append(
            {
                "size": size, "mode": mode, "rounds": rounds,
                "words": int(event["words"]),
                "seconds": None if seconds is None else round(seconds, 6),
                "headroom": headroom,
            }
        )
        del self.recent_batches[:-RECENT_BATCH_WINDOW]

    def _on_violation(self, event: Dict[str, Any]) -> None:
        self.violations += 1

    def _on_fault(self, event: Dict[str, Any]) -> None:
        for kind, count in (event.get("kinds") or {}).items():
            self.faults[str(kind)] = self.faults.get(str(kind), 0) + int(count)

    def _on_machine_crash(self, event: Dict[str, Any]) -> None:
        self.crashes += 1

    def _on_machine_restart(self, event: Dict[str, Any]) -> None:
        self.restarts += 1

    def _on_checkpoint(self, event: Dict[str, Any]) -> None:
        self.checkpoints += 1

    def _on_recovery_end(self, event: Dict[str, Any]) -> None:
        self.recoveries += 1
        self.recovery_rounds += int(event["rounds"])
        self.replayed_batches += int(event["replayed"])

    def _on_sched_cut(self, event: Dict[str, Any]) -> None:
        policy = str(event["policy"])
        reason = str(event["reason"])
        self.stream_policy = policy
        self.stream_cuts[(policy, reason)] = (
            self.stream_cuts.get((policy, reason), 0) + 1
        )
        # "raw" counts arrivals the cut covers, "shipped" what survived
        # coalescing; the difference is churn absorbed before it cost a
        # round.  (Totals are also stamped on stream_end; folding the
        # deltas here keeps the gauges live mid-run.)
        self.stream_shipped += int(event["shipped"])
        self.stream_queue_depth = int(event["queue_depth"])
        age = event.get("oldest_age")
        if isinstance(age, int):
            self.stream_oldest_age = age
        target = event.get("target")
        if isinstance(target, int):
            self.stream_target = target
        tick = event.get("tick")
        if isinstance(tick, int):
            self.stream_tick = tick

    def _on_sched_adapt(self, event: Dict[str, Any]) -> None:
        self.stream_adapts += 1
        target = event.get("target")
        if isinstance(target, int):
            self.stream_target = target

    def _on_stream_end(self, event: Dict[str, Any]) -> None:
        self.stream_runs += 1
        self.stream_admitted += int(event["admitted"])
        absorbed = event.get("absorbed")
        if isinstance(absorbed, int):
            self.stream_absorbed += absorbed
        self.stream_queue_depth = 0
        self.stream_oldest_age = 0
        for key in ("p50_ticks", "p99_ticks"):
            value = event.get(key)
            if isinstance(value, (int, float)):
                setattr(self, f"stream_{key}", float(value))

    def _on_pool_start(self, event: Dict[str, Any]) -> None:
        self.pool_workers = int(event["workers"])
        self.pool_start_method = str(event["start_method"])

    def _on_pool_stop(self, event: Dict[str, Any]) -> None:
        self.pool_workers = 0

    def _on_pool_dispatch(self, event: Dict[str, Any]) -> None:
        kind = str(event["kind"])
        self.pool_dispatches[kind] = self.pool_dispatches.get(kind, 0) + 1
        self.pool_rows += int(event["rows"])
        work_ns = event.get("work_ns")
        if isinstance(work_ns, int):
            self.pool_dispatch_seconds.observe(work_ns / 1e9)
        waits = event.get("wait_ns")
        if waits:
            _grow_to(self.pool_worker_wait_ns, len(waits))
            for i, w in enumerate(waits):
                self.pool_worker_wait_ns[i] += int(w)
        slab = event.get("slab_bytes")
        if isinstance(slab, int):
            self.pool_slab_bytes = slab

    def _on_pool_fallback(self, event: Dict[str, Any]) -> None:
        kind = str(event["kind"])
        self.pool_fallbacks[kind] = self.pool_fallbacks.get(kind, 0) + 1

    def _on_serve_start(self, event: Dict[str, Any]) -> None:
        self.serve_running = 1
        self.serve_policy = str(event["policy"])

    def _on_serve_conn(self, event: Dict[str, Any]) -> None:
        action = str(event["action"])
        self.serve_conns[action] = self.serve_conns.get(action, 0) + 1
        sessions = event.get("sessions")
        if isinstance(sessions, int):
            self.serve_sessions = sessions
        if action == "evict":
            reason = str(event.get("reason", "?"))
            self.serve_evictions[reason] = (
                self.serve_evictions.get(reason, 0) + 1
            )

    def _on_serve_cmd(self, event: Dict[str, Any]) -> None:
        key = (str(event["op"]), str(event["status"]))
        self.serve_cmds[key] = self.serve_cmds.get(key, 0) + 1
        code = event.get("code")
        if code is not None:
            self.serve_cmd_errors[str(code)] = (
                self.serve_cmd_errors.get(str(code), 0) + 1
            )

    def _on_serve_publish(self, event: Dict[str, Any]) -> None:
        self.serve_publishes += 1
        self.serve_version = int(event["version"])
        self.serve_edges_added += int(event["added"])
        self.serve_edges_removed += int(event["removed"])
        weight = event.get("weight")
        if isinstance(weight, (int, float)):
            self.serve_weight = float(weight)

    def _on_serve_stop(self, event: Dict[str, Any]) -> None:
        self.serve_running = 0
        self.serve_sessions = 0
        self.serve_admitted += int(event["admitted"])
        self.serve_rejected += int(event["rejected"])
        digest = event.get("digest")
        if digest is not None:
            self.serve_digest = str(digest)

    # ------------------------------------------------------------------
    # derived gauges
    # ------------------------------------------------------------------
    @property
    def send_skew(self) -> float:
        return _skew(self.send_words)

    @property
    def recv_skew(self) -> float:
        return _skew(self.recv_words)

    @property
    def elapsed_seconds(self) -> float:
        if self.first_wall_ns is None or self.last_wall_ns is None:
            return 0.0
        return max(0.0, (self.last_wall_ns - self.first_wall_ns) / 1e9)

    @property
    def rounds_per_second(self) -> float:
        elapsed = self.elapsed_seconds
        return self.rounds / elapsed if elapsed > 0 else 0.0

    def dropped_events(self) -> int:
        return self._sub.dropped if self._sub is not None else 0

    # ------------------------------------------------------------------
    # export surfaces
    # ------------------------------------------------------------------
    def collect(self) -> List[MetricFamily]:
        """Pump the bus, then emit every family (the /metrics body)."""
        self.pump()
        fams: List[MetricFamily] = []

        def counter(name: str, help_text: str) -> MetricFamily:
            fam = MetricFamily(name, "counter", help_text)
            fams.append(fam)
            return fam

        def gauge(name: str, help_text: str) -> MetricFamily:
            fam = MetricFamily(name, "gauge", help_text)
            fams.append(fam)
            return fam

        counter("repro_rounds_total",
                "Synchronous rounds charged on the ledger").add(self.rounds)
        counter("repro_messages_total", "Messages delivered").add(self.messages)
        counter("repro_words_total", "Words moved").add(self.words)
        counter("repro_charges_total", "Ledger charges recorded").add(self.charges)
        fam = counter("repro_supersteps_total",
                      "Communication supersteps by engine")
        for name, count in sorted(self.engines.items()):
            fam.add(count, engine=name)
        gauge("repro_rounds_per_second",
              "Charged rounds per wall second over the run window"
              ).add(round(self.rounds_per_second, 3))

        fam = counter("repro_phase_rounds_total",
                      "Rounds attributed to each ledger phase")
        for name in sorted(self.phase_rounds):
            fam.add(self.phase_rounds[name], phase=name)
        fam = counter("repro_phase_words_total",
                      "Words attributed to each ledger phase")
        for name in sorted(self.phase_words):
            fam.add(self.phase_words[name], phase=name)

        fam = counter("repro_machine_send_words_total",
                      "Cumulative words sent per machine")
        for i, w in enumerate(self.send_words):
            fam.add(w, machine=i)
        fam = counter("repro_machine_recv_words_total",
                      "Cumulative words received per machine")
        for i, w in enumerate(self.recv_words):
            fam.add(w, machine=i)
        gauge("repro_machine_send_skew",
              "Max/mean skew of cumulative per-machine send words"
              ).add(round(self.send_skew, 4))
        gauge("repro_machine_recv_skew",
              "Max/mean skew of cumulative per-machine recv words"
              ).add(round(self.recv_skew, 4))
        fam = counter("repro_message_size_count",
                      "Messages by declared word size")
        for w, c in sorted(self.size_hist.items()):
            fam.add(c, words=w)

        counter("repro_batches_total", "Update batches applied").add(self.batches)
        fams.append(self.batch_rounds.family(
            "repro_batch_rounds",
            "Charged rounds per applied batch"))
        fams.append(self.batch_seconds.family(
            "repro_batch_duration_seconds",
            "Wall-clock latency per applied batch"))
        if self.last_headroom is not None:
            gauge("repro_budget_headroom_rounds",
                  "Theorem-budget headroom of the latest batch "
                  "(envelope minus measured rounds; negative = over budget)"
                  ).add(self.last_headroom)
        if self.min_headroom is not None:
            gauge("repro_budget_headroom_rounds_min",
                  "Worst theorem-budget headroom seen this run"
                  ).add(self.min_headroom)
        counter("repro_batch_budget_violations_total",
                "Batches whose measured rounds exceeded the theorem envelope"
                ).add(self.budget_violations)

        counter("repro_strict_violations_total",
                "Strict-mode violations recorded").add(self.violations)
        fam = counter("repro_faults_total",
                      "Injected transport faults by kind")
        for kind, count in sorted(self.faults.items()):
            fam.add(count, kind=kind)
        counter("repro_machine_crashes_total",
                "Fail-stop machine crashes").add(self.crashes)
        counter("repro_machine_restarts_total",
                "Machine restarts after a crash").add(self.restarts)
        counter("repro_checkpoints_total",
                "Coordinated checkpoints taken").add(self.checkpoints)
        counter("repro_recoveries_total",
                "Rollback-replay recoveries completed").add(self.recoveries)
        counter("repro_recovery_rounds_total",
                "Rounds spent in crash-recovery rollback/replay"
                ).add(self.recovery_rounds)

        counter("repro_stream_admitted_total",
                "Raw arrivals admitted by the streaming front end"
                ).add(self.stream_admitted)
        counter("repro_stream_shipped_total",
                "Updates shipped into the batch machinery after coalescing"
                ).add(self.stream_shipped)
        counter("repro_stream_absorbed_total",
                "Arrivals coalesced away before costing any rounds"
                ).add(self.stream_absorbed)
        fam = counter("repro_stream_cuts_total",
                      "Scheduler cuts by policy and reason")
        for (policy, reason), count in sorted(self.stream_cuts.items()):
            fam.add(count, policy=policy, reason=reason)
        counter("repro_stream_adaptations_total",
                "AIMD moves of the adaptive cut-size target"
                ).add(self.stream_adapts)
        gauge("repro_stream_queue_depth",
              "Pending updates in the admission buffer after the last cut"
              ).add(self.stream_queue_depth)
        gauge("repro_stream_oldest_age_ticks",
              "Age of the oldest queued update at the last cut"
              ).add(self.stream_oldest_age)
        if self.stream_target is not None:
            gauge("repro_stream_cut_target",
                  "The scheduler's current cut-size target"
                  ).add(self.stream_target)
        if self.stream_p99_ticks is not None:
            gauge("repro_stream_staleness_p50_ticks",
                  "Median update staleness of the last finished stream run"
                  ).add(self.stream_p50_ticks or 0.0)
            gauge("repro_stream_staleness_p99_ticks",
                  "p99 update staleness of the last finished stream run"
                  ).add(self.stream_p99_ticks)

        gauge("repro_pool_workers",
              "Live worker processes in the kernel pool").add(self.pool_workers)
        fam = counter("repro_pool_dispatches_total",
                      "Kernel-pool dispatches by kind")
        for kind, count in sorted(self.pool_dispatches.items()):
            fam.add(count, kind=kind)
        counter("repro_pool_rows_total",
                "Rows shipped through the kernel pool").add(self.pool_rows)
        fams.append(self.pool_dispatch_seconds.family(
            "repro_pool_dispatch_duration_seconds",
            "Wall-clock latency of one pool dispatch (load, barrier, read-back)"))
        fam = counter("repro_pool_worker_wait_seconds_total",
                      "Cumulative barrier wait per pool worker")
        for i, ns in enumerate(self.pool_worker_wait_ns):
            fam.add(round(ns / 1e9, 9), worker=i)
        gauge("repro_pool_slab_bytes",
              "Shared-memory slab bytes currently mapped by the pool"
              ).add(self.pool_slab_bytes)
        fam = counter("repro_pool_fallbacks_total",
                      "Kernel dispatches that fell back inline by kind")
        for kind, count in sorted(self.pool_fallbacks.items()):
            fam.add(count, kind=kind)

        gauge("repro_serve_up",
              "Whether an MST serve daemon is live on this bus"
              ).add(self.serve_running)
        gauge("repro_serve_sessions",
              "Currently connected serve sessions").add(self.serve_sessions)
        fam = counter("repro_serve_connections_total",
                      "Serve connection lifecycle events by action")
        for action, count in sorted(self.serve_conns.items()):
            fam.add(count, action=action)
        fam = counter("repro_serve_commands_total",
                      "Serve commands handled, by op and status")
        for (op, status), count in sorted(self.serve_cmds.items()):
            fam.add(count, op=op, status=status)
        fam = counter("repro_serve_errors_total",
                      "Serve command rejections by protocol error code")
        for code, count in sorted(self.serve_cmd_errors.items()):
            fam.add(count, code=code)
        fam = counter("repro_serve_evictions_total",
                      "Sessions force-closed by the daemon, by reason")
        for reason, count in sorted(self.serve_evictions.items()):
            fam.add(count, reason=reason)
        counter("repro_serve_publishes_total",
                "MSF-change publications pushed to subscribers"
                ).add(self.serve_publishes)
        gauge("repro_serve_forest_version",
              "Version of the last published forest view"
              ).add(self.serve_version)
        counter("repro_serve_forest_edges_added_total",
                "Forest edges gained across published views"
                ).add(self.serve_edges_added)
        counter("repro_serve_forest_edges_removed_total",
                "Forest edges lost across published views"
                ).add(self.serve_edges_removed)
        if self.serve_weight is not None:
            gauge("repro_serve_forest_weight",
                  "Total weight of the last published forest"
                  ).add(round(self.serve_weight, 6))
        counter("repro_serve_admitted_total",
                "Mutations admitted over finished daemon lifetimes"
                ).add(self.serve_admitted)
        counter("repro_serve_rejected_total",
                "Mutations rejected at admission over finished lifetimes"
                ).add(self.serve_rejected)

        counter("repro_bus_events_total",
                "Telemetry-bus events folded into this registry"
                ).add(self.events_seen)
        counter("repro_bus_dropped_events_total",
                "Bus events lost because this consumer lagged the ring"
                ).add(self.dropped_events())
        return fams

    def snapshot(self) -> Dict[str, Any]:
        """Pump the bus, then emit the dashboard's JSON state."""
        self.pump()
        return {
            "schema": "repro-obs-snapshot/1",
            "run": self.run_meta,
            "runs": {"started": self.runs_started, "ended": self.runs_ended},
            "totals": {
                "rounds": self.rounds,
                "messages": self.messages,
                "words": self.words,
                "charges": self.charges,
                "supersteps": self.supersteps,
                "batches": self.batches,
            },
            "rates": {
                "rounds_per_second": round(self.rounds_per_second, 3),
                "elapsed_seconds": round(self.elapsed_seconds, 3),
            },
            "machines": {
                "send_words": self.send_words,
                "recv_words": self.recv_words,
                "send_skew": round(self.send_skew, 4),
                "recv_skew": round(self.recv_skew, 4),
            },
            "engines": self.engines,
            "phases": {
                name: {
                    "rounds": self.phase_rounds[name],
                    "words": self.phase_words.get(name, 0),
                }
                for name in sorted(self.phase_rounds)
            },
            "budget": {
                "describe": (
                    self.budget.describe() if self.budget is not None else None
                ),
                "last_headroom": self.last_headroom,
                "min_headroom": self.min_headroom,
                "violations": self.budget_violations,
            },
            "batches": self.recent_batches,
            "batch_rounds": self.batch_rounds.as_dict(),
            "batch_seconds": self.batch_seconds.as_dict(),
            "chaos": {
                "faults": dict(sorted(self.faults.items())),
                "crashes": self.crashes,
                "restarts": self.restarts,
                "checkpoints": self.checkpoints,
                "recoveries": self.recoveries,
                "recovery_rounds": self.recovery_rounds,
                "replayed_batches": self.replayed_batches,
                "strict_violations": self.violations,
            },
            "stream": {
                "policy": self.stream_policy,
                "runs": self.stream_runs,
                "admitted": self.stream_admitted,
                "shipped": self.stream_shipped,
                "absorbed": self.stream_absorbed,
                "cuts": {
                    f"{policy}/{reason}": count
                    for (policy, reason), count in sorted(self.stream_cuts.items())
                },
                "adaptations": self.stream_adapts,
                "queue_depth": self.stream_queue_depth,
                "oldest_age_ticks": self.stream_oldest_age,
                "target": self.stream_target,
                "tick": self.stream_tick,
                "p50_ticks": self.stream_p50_ticks,
                "p99_ticks": self.stream_p99_ticks,
            },
            "serve": {
                "running": bool(self.serve_running),
                "policy": self.serve_policy,
                "sessions": self.serve_sessions,
                "connections": dict(sorted(self.serve_conns.items())),
                "commands": {
                    f"{op}/{status}": count
                    for (op, status), count in sorted(self.serve_cmds.items())
                },
                "errors": dict(sorted(self.serve_cmd_errors.items())),
                "evictions": dict(sorted(self.serve_evictions.items())),
                "publishes": self.serve_publishes,
                "forest_version": self.serve_version,
                "forest_weight": self.serve_weight,
                "edges_added": self.serve_edges_added,
                "edges_removed": self.serve_edges_removed,
                "admitted": self.serve_admitted,
                "rejected": self.serve_rejected,
                "digest": self.serve_digest,
            },
            "pool": {
                "workers": self.pool_workers,
                "start_method": self.pool_start_method,
                "dispatches": dict(sorted(self.pool_dispatches.items())),
                "rows": self.pool_rows,
                "dispatch_seconds": self.pool_dispatch_seconds.as_dict(),
                "worker_wait_seconds": [
                    round(ns / 1e9, 6) for ns in self.pool_worker_wait_ns
                ],
                "slab_bytes": self.pool_slab_bytes,
                "fallbacks": dict(sorted(self.pool_fallbacks.items())),
            },
            "bus": {
                "events": self.events_seen,
                "dropped": self.dropped_events(),
                "published": self.bus.published if self.bus else None,
            },
        }

    def close(self) -> None:
        if self._sub is not None:
            self._sub.close()
            self._sub = None
