"""The obs server: stdlib HTTP endpoints over a metrics registry.

:class:`ObsServer` wraps a :class:`~repro.obs.registry.MetricsRegistry`
in a daemon-threaded :class:`http.server.ThreadingHTTPServer`:

* ``GET /metrics``  — Prometheus text exposition (shared formatter);
* ``GET /healthz``  — liveness JSON (also reports bus drop counts);
* ``GET /snapshot`` — the dashboard's JSON state;
* ``GET /``         — the single-file HTML dashboard.

The server only ever *reads* registry state (each handler pumps the bus
subscription first); the simulator never waits on it.  Binding port 0
picks a free port — ``server.port``/``server.url`` report the real one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.obs.dashboard import DASHBOARD_HTML
from repro.obs.prom import render_families
from repro.obs.registry import MetricsRegistry

#: Prometheus exposition content type (text format, version 0.0.4).
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes the four endpoints; one registry pump per request."""

    server: "_ObsHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = render_families(self.server.registry.collect())
                self._reply(200, PROM_CONTENT_TYPE, body.encode())
            elif path == "/healthz":
                self._reply_json(200, self.server.health())
            elif path == "/snapshot":
                self._reply_json(200, self.server.registry.snapshot())
            elif path in ("/", "/index.html"):
                self._reply(200, "text/html; charset=utf-8",
                            DASHBOARD_HTML.encode())
            else:
                self._reply_json(404, {"error": f"no route {path!r}"})
        except BrokenPipeError:  # client went away mid-reply
            pass

    def _reply(self, status: int, ctype: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, status: int, payload: Dict[str, Any]) -> None:
        self._reply(
            status, "application/json; charset=utf-8",
            json.dumps(payload, separators=(",", ":")).encode(),
        )

    def log_message(self, format: str, *args: Any) -> None:
        # Scrapes are periodic; default per-request stderr lines would
        # drown the CLI output the server rides alongside.
        pass


class _ObsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    registry: MetricsRegistry
    started_monotonic: float

    def health(self) -> Dict[str, Any]:
        reg = self.registry
        reg.pump()
        return {
            "status": "ok",
            "events": reg.events_seen,
            "dropped": reg.dropped_events(),
            "runs_started": reg.runs_started,
            "runs_ended": reg.runs_ended,
        }


class ObsServer:
    """A daemon-threaded metrics/dashboard server over one registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self._httpd = _ObsHTTPServer((host, port), _Handler)
        self._httpd.registry = registry
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()
