"""Trace sinks that feed the telemetry bus.

:class:`BusSink` is the live twin of
:class:`repro.trace.recorder.TraceRecorder`: it implements the same
:class:`~repro.sim.metrics.TraceSink` hook protocol and shapes the same
schema-versioned events (see :mod:`repro.trace.events`), but instead of
writing JSON lines it publishes the event dicts onto a
:class:`~repro.obs.bus.TelemetryBus`.  Because a ledger has a single
``recorder`` slot, :class:`TeeSink` fans one ledger out to several
sinks — in practice a file recorder *and* a bus sink — so recording to
disk and watching live are not mutually exclusive.

Bus events carry a ``wall_ns`` ambient stamp (the registry needs real
time to compute rates and latencies).  That is safe by construction:
bus traffic never reaches a digest — ledger digests hash only the
charge transcript, trace-file bytes come only from the file recorder,
and ambient fields are stripped by every equivalence path
(:func:`repro.trace.events.strip_ambient`).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.bus import TelemetryBus
from repro.trace.events import TRACE_SCHEMA


class BusSink:
    """Publishes schema-shaped trace events onto a telemetry bus.

    Satisfies the :class:`~repro.sim.metrics.TraceSink` protocol, so it
    attaches anywhere a :class:`~repro.trace.recorder.TraceRecorder`
    does: ``ledger.recorder = sink``, ``DynamicMST.build(trace=sink)``,
    or one leg of a :class:`TeeSink`.
    """

    def __init__(
        self,
        bus: TelemetryBus,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.bus = bus
        self.seq = 0
        self.charges = 0
        self.rounds = 0
        self.messages = 0
        self.words = 0
        self.closed = False
        #: Superstep context stashed by :meth:`on_superstep`, merged into
        #: the next charge (same shaping rule as the file recorder).
        self._pending: Optional[Dict[str, Any]] = None
        self.emit("trace_start", schema=TRACE_SCHEMA, meta=meta or {})

    # ------------------------------------------------------------------
    # low-level emission
    # ------------------------------------------------------------------
    def emit(self, etype: str, **fields: Any) -> None:
        """Publish one event (assigns ``seq`` and the wall stamp)."""
        if self.closed:
            return
        event: Dict[str, Any] = {"type": etype, "seq": self.seq}
        event.update(fields)
        # simlint: disable=SIM003 live-telemetry timestamp; bus events never reach a digest and wall time never feeds round accounting
        event["wall_ns"] = time.time_ns()
        self.seq += 1
        self.bus.publish(event)

    def flush(self) -> None:  # file-recorder API parity; nothing buffers
        pass

    def close(self, extra: Optional[Dict[str, Any]] = None) -> None:
        """Publish the ``trace_end`` totals; idempotent."""
        if self.closed:
            return
        self.emit(
            "trace_end",
            events=self.seq,
            charges=self.charges,
            rounds=self.rounds,
            messages=self.messages,
            words=self.words,
            **(extra or {}),
        )
        self.closed = True

    def __enter__(self) -> "BusSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # TraceSink hooks (called by the instrumented simulator)
    # ------------------------------------------------------------------
    def on_superstep(
        self,
        engine: str,
        n_messages: int,
        n_words: int,
        send: Sequence[int],
        recv: Sequence[int],
        sizes: Dict[int, int],
    ) -> None:
        self._pending = {
            "engine": engine,
            "send": list(send),
            "recv": list(recv),
            "sizes": {str(w): c for w, c in sorted(sizes.items())},
        }

    def on_charge(
        self,
        rounds: int,
        messages: int,
        words: int,
        index: int,
        phases: Sequence[str],
    ) -> None:
        self.charges += 1
        self.rounds += rounds
        self.messages += messages
        self.words += words
        pending, self._pending = self._pending, None
        etype = "superstep" if pending is not None else "charge"
        self.emit(
            etype,
            index=index,
            rounds=rounds,
            messages=messages,
            words=words,
            phases=list(phases),
            **(pending or {}),
        )

    def on_phase_start(self, name: str, depth: int) -> None:
        self.emit("phase_start", name=name, depth=depth)

    def on_phase_end(
        self, name: str, depth: int, rounds: int, messages: int, words: int
    ) -> None:
        self.emit(
            "phase_end", name=name, depth=depth,
            rounds=rounds, messages=messages, words=words,
        )

    def on_violation(self, kind: str, message: str) -> None:
        self._pending = None
        self.emit("violation", kind=kind, message=message)

    def on_engine(self, feature: str, engine: str) -> None:
        self.emit("engine", feature=feature, engine=engine)


class TeeSink:
    """Fan one ledger's trace hooks out to several sinks.

    Every :class:`~repro.sim.metrics.TraceSink` hook (and ``emit``, and
    ``close``) is forwarded to each child in order.  Children keep their
    own ``seq`` counters, so a file recorder teed with a bus sink writes
    exactly the bytes it would have written alone — the equivalence
    tests pin this.
    """

    def __init__(self, *sinks: Any) -> None:
        self.sinks: List[Any] = [s for s in sinks if s is not None]

    def emit(self, etype: str, **fields: Any) -> None:
        for sink in self.sinks:
            sink.emit(etype, **fields)

    def close(self, extra: Optional[Dict[str, Any]] = None) -> None:
        for sink in self.sinks:
            sink.close(extra)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def on_charge(
        self, rounds: int, messages: int, words: int,
        index: int, phases: Sequence[str],
    ) -> None:
        for sink in self.sinks:
            sink.on_charge(rounds, messages, words, index, phases)

    def on_phase_start(self, name: str, depth: int) -> None:
        for sink in self.sinks:
            sink.on_phase_start(name, depth)

    def on_phase_end(
        self, name: str, depth: int, rounds: int, messages: int, words: int
    ) -> None:
        for sink in self.sinks:
            sink.on_phase_end(name, depth, rounds, messages, words)

    def on_superstep(
        self, engine: str, n_messages: int, n_words: int,
        send: Sequence[int], recv: Sequence[int], sizes: Dict[int, int],
    ) -> None:
        for sink in self.sinks:
            sink.on_superstep(engine, n_messages, n_words, send, recv, sizes)

    def on_violation(self, kind: str, message: str) -> None:
        for sink in self.sinks:
            sink.on_violation(kind, message)

    def on_engine(self, feature: str, engine: str) -> None:
        for sink in self.sinks:
            sink.on_engine(feature, engine)
