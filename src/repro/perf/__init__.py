"""Columnar fast path for the simulator and the §5/§6 protocols.

The paper's guarantees are *round counts*; this package is about the
other axis — wall-clock speed of the simulation itself.  It provides:

* :mod:`repro.perf.config` — the fast-path switch (``REPRO_FAST``),
  overridable per call site or per :class:`~repro.core.api.DynamicMST`;
* :mod:`repro.perf.columnar` — batched application of Euler label
  scripts over per-machine NumPy arrays, using the verified kernels of
  :mod:`repro.euler.vectorized` instead of per-edge Python calls.

The contract is strict equivalence: with the fast path on or off, every
protocol produces **byte-identical round/message/word ledgers** and
identical MST state (the charge transcript is compared by digest in
``tests/perf``).  The fast path only changes how local computation and
message bookkeeping are *executed*, never what is *charged*.
"""

from repro.perf.config import (
    VECTOR_MIN_ROWS,
    fast_path_enabled,
    override_fast_path,
    set_fast_path,
)

__all__ = [
    "VECTOR_MIN_ROWS",
    "fast_path_enabled",
    "override_fast_path",
    "set_fast_path",
]
