"""Vectorized engines for contracted CONGESTED-CLIQUE instances (§6.2).

Two scalar hot paths in :mod:`repro.cclique.engines` move no words but
dominate the wall clock of a contracted-instance solve:

* :func:`repro.cclique.engines._cc_local_msf` — machine-local cycle
  deletion, a ``sorted`` + per-edge dict-DSU scan (run by every engine,
  several times per solve on the merge-and-filter paths);
* the Borůvka engine's per-phase candidate scan — every machine rescans
  its whole :class:`CCEdge` list with two dict-``find`` calls per edge.

Both are replaced here with NumPy passes at **identical observable
results**: the same MSF edge objects, in the same order, and (for the
engine) the same wire — the per-query tables handed to
:func:`repro.comm.aggregate.batched_queries` hold the same ``CCEdge``
objects in the same (query, machine) slots, and the union sequence is
replicated through :class:`~repro.perf.init_columnar.ArrayDSU`.

The local-MSF kernel runs Borůvka over *sort ranks*: edges get their
position in the scalar path's sort order (``(key, cu, cv)``, stable) as
a unique integer priority, and per-component minimum selection over
ranks is an ``np.lexsort`` + group-first pass per round.  With unique
priorities the greedy (Kruskal) forest and the Borůvka forest are the
same unique MSF, so the selected index set equals the scalar scan's
accepted set — returned in rank order, exactly like the scalar append
order.  Duplicate rows (the §6.2 reduction sends an edge to both
endpoint machines, so merged lists can repeat an edge) tie on every
compared field; stable ranking keeps the first occurrence, matching the
scalar scan's strict-``<`` tie-break.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.perf.init_columnar import ArrayDSU

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cclique.ccedge import CCEdge
    from repro.graphs.generators import RngLike
    from repro.sim.network import Network


def _collapse(parent: np.ndarray) -> np.ndarray:
    """Pointer-jump ``parent`` to fixpoint (every entry becomes its root)."""
    while True:
        gp = parent[parent]
        if np.array_equal(gp, parent):
            return gp
        parent = gp


def _edge_columns(
    edges: Sequence["CCEdge"],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(cu, cv, rank) columns; rank is the stable ``sorted(edges)`` position."""
    n = len(edges)
    kw = np.fromiter((e.key[0] for e in edges), np.float64, n)
    ku = np.fromiter((e.key[1] for e in edges), np.int64, n)
    kv = np.fromiter((e.key[2] for e in edges), np.int64, n)
    cu = np.fromiter((e.cu for e in edges), np.int64, n)
    cv = np.fromiter((e.cv for e in edges), np.int64, n)
    order = np.lexsort((cv, cu, kv, ku, kw))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    return cu, cv, rank


def cc_local_msf_columnar(edges: Sequence["CCEdge"]) -> List["CCEdge"]:
    """Vectorized :func:`repro.cclique.engines._cc_local_msf`.

    Same output list (same objects, same order) computed as rank-priority
    Borůvka instead of a sorted scalar Kruskal scan.
    """
    n = len(edges)
    if n == 0:
        return []
    cu, cv, rank = _edge_columns(edges)
    # Compact the super-vertex ids touched by this list.
    nodes, idx = np.unique(np.concatenate((cu, cv)), return_inverse=True)
    a, b = idx[:n], idx[n:]
    parent = np.arange(nodes.shape[0], dtype=np.int64)
    selected = np.zeros(n, dtype=bool)
    node_ids = np.arange(nodes.shape[0], dtype=np.int64)
    while True:
        roots = _collapse(parent)
        ra, rb = roots[a], roots[b]
        cross = np.flatnonzero(ra != rb)
        if cross.size == 0:
            break
        # Minimum-rank cross edge per component (each edge is a candidate
        # for both endpoint components).
        rows = np.concatenate((cross, cross))
        comp = np.concatenate((ra[cross], rb[cross]))
        order = np.lexsort((rank[rows], comp))
        comp_s = comp[order]
        rows_s = rows[order]
        first = np.ones(comp_s.size, dtype=bool)
        first[1:] = comp_s[1:] != comp_s[:-1]
        sel_edge = rows_s[first]
        sel_comp = comp_s[first]
        selected[sel_edge] = True
        # Hook each component to the opposite endpoint's root of its
        # chosen edge, then break the mutual (2-cycle) hooks toward the
        # smaller root so the next collapse terminates.
        other = np.where(ra[sel_edge] == sel_comp, rb[sel_edge], ra[sel_edge])
        parent = roots
        parent[sel_comp] = other
        two_cycle = (parent[parent] == node_ids) & (parent != node_ids)
        fix = two_cycle & (node_ids < parent)
        parent[fix] = node_ids[fix]
    sel_idx = np.flatnonzero(selected)
    sel_idx = sel_idx[np.argsort(rank[sel_idx], kind="stable")]
    return [edges[i] for i in sel_idx.tolist()]


class CCEdgeTable:
    """One machine's contracted edges as columns plus the object list."""

    __slots__ = ("objs", "cu", "cv", "rank")

    def __init__(self, edges: Sequence["CCEdge"]) -> None:
        self.objs: List["CCEdge"] = list(edges)
        self.cu, self.cv, self.rank = _edge_columns(self.objs)

    def min_outgoing(self, roots: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(components, rows) of the min-rank outgoing edge per component.

        ``roots`` maps super-vertex id to its current dense root index.
        Rank order is the full :class:`CCEdge` order the scalar scan's
        ``e < cur`` uses, so the winning row is the same edge object.
        """
        ru = roots[self.cu]
        rv = roots[self.cv]
        keep = np.flatnonzero(ru != rv)
        if keep.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        rows = np.concatenate((keep, keep))
        comp = np.concatenate((ru[keep], rv[keep]))
        order = np.lexsort((self.rank[rows], comp))
        comp_s = comp[order]
        rows_s = rows[order]
        first = np.ones(comp_s.size, dtype=bool)
        first[1:] = comp_s[1:] != comp_s[:-1]
        return comp_s[first], rows_s[first]


def boruvka_engine_columnar(
    net: "Network",
    n_vertices: int,
    local_edges: Sequence[Sequence["CCEdge"]],
    rng: "RngLike" = None,
) -> List["CCEdge"]:
    """Columnar twin of :func:`repro.cclique.engines.boruvka_engine`.

    Identical wire: the same replicated component map (ArrayDSU mirrors
    the scalar DSU's representatives), the same per-query candidate
    tables with the same ``CCEdge`` payloads, folded in the same order.
    """
    from repro.comm.aggregate import batched_queries
    from repro.sim.message import WORDS_COMPONENT_EDGE

    k = net.k
    if len(local_edges) != k:
        raise ValueError("need one edge list per machine")
    recorder = net.ledger.recorder
    if recorder is not None:
        recorder.on_engine("cc_boruvka", "columnar")
    dsu = ArrayDSU(np.arange(n_vertices, dtype=np.int64))
    tables = [CCEdgeTable(edges) for edges in local_edges]
    msf: List["CCEdge"] = []
    with net.ledger.phase("cc.boruvka"):
        while True:
            # Super-vertex ids are already dense (0..n'-1), so the dense
            # root index doubles as the representative id.
            roots = dsu.root_indices()
            uroots = np.unique(roots)
            if uroots.size <= 1:
                break
            id_list = uroots.tolist()
            per_query: Dict[int, List[Optional["CCEdge"]]] = {
                c: [None] * k for c in id_list
            }
            for mid, table in enumerate(tables):
                comps, rows = table.min_outgoing(roots)
                for c, r in zip(comps.tolist(), rows.tolist()):
                    per_query[c][mid] = table.objs[r]
            answers = batched_queries(
                net, per_query, min, words=WORDS_COMPONENT_EDGE
            )
            merged_any = False
            for c in sorted(answers):
                e = answers[c]
                if e is not None and dsu.union(e.cu, e.cv):
                    msf.append(e)
                    merged_any = True
            if not merged_any:
                break
    # Everyone already knows the MSF (answers were broadcast), so no final
    # result broadcast is needed.
    return sorted(msf)
