"""Columnar application of structural-update scripts (Lemma 5.9, fast).

The reference engine in :mod:`repro.core.scripts` applies a script of
:class:`~repro.core.scripts.CutStep` / ``LinkStep`` to each machine by
looping over every affected MST edge and every witness, calling the
scalar label transforms of :mod:`repro.euler.labels` one edge at a time.
That per-edge Python work dominates the simulator's wall clock (see
``benchmarks/bench_throughput.py``).

This module packs one machine's label state into parallel NumPy arrays
**once per structural batch**, applies every cut and link step with the
vectorized kernels of :mod:`repro.euler.vectorized`, and scatters the
result back.  The two mid-batch protocol exchanges — the witness repair
after cuts and the link parameter collection (Lemma 5.9's step 1 for
links) — read and write *through* the planes, so a single pack/scatter
cycle covers both homogeneous phases.  The step-by-step structure is
preserved exactly: classification of tracked vertices happens in the
same (pre-relabel) coordinates, witness invalidation and re-picking
follow the same rules with the same tie-breaks, and the wire protocol
(request order, payloads, word counts) is byte-identical — so both the
resulting machine state and the charge transcript match the scalar
engine's, field for field.  The equivalence tests in ``tests/perf``
verify both.

Layout (per machine, per batch):

* **edge columns** over the machine's MST edges: endpoints ``eu``/``ev``
  (normalized, as stored), weight ``ew``, labels ``et1``/``et2``, tour
  ``etour``, liveness ``ealive``; link steps append rows into
  preallocated capacity;
* **vertex columns** over the machine's tracked vertices: vertex id
  ``vx``, tour ``vtour`` (``-1`` = unknown), and the
  witness copy ``wu``/``wv``/``ww``/``wt1``/``wt2``/``wtour`` with
  liveness ``walive``.

Scatter writes back only rows whose columns changed (pack keeps pristine
copies), so machines far from the action pay almost nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.euler.labels import JoinSpec, SplitSpec, reroot_label
from repro.euler.tour import ETEdge
from repro.euler.vectorized import (
    join_m1_labels,
    join_m2_labels,
    reroot_labels,
    split_labels,
)
from repro.graphs.graph import normalize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports perf)
    from repro.core.scripts import CutStep, LinkStep
    from repro.core.state import MachineState
    from repro.sim.network import Network
    from repro.sim.partition import VertexPartition


class MachineLabelPlane:
    """One machine's Euler label state, packed for one structural batch.

    Only the *affected* slice is packed: rows whose tour is in
    ``a_orig`` (the original tours any script step can touch — fresh
    mid-batch tours are always derived from these) plus the update
    endpoints ``eps`` (which may be isolated, i.e. tourless).  Rows of
    unaffected tours are provably untouched by every step — the scalar
    engine filters all its transforms by tour id — so skipping them
    changes nothing and makes pack/scatter O(affected), not O(machine).
    """

    def __init__(
        self,
        state: "MachineState",
        a_orig: Set[int],
        eps: Set[int],
        reserve: int = 0,
    ) -> None:
        self.state = state
        self._a_orig = a_orig
        self._frozen = False
        mst = state.mst
        keys: List[Tuple[int, int]] = []
        for tid in sorted(a_orig):
            keys.extend(state.mst_keys_in_tour(tid))
        keys.sort()
        n0 = len(keys)
        # Link steps append at most one row each; capacity grows by
        # doubling, so views of [:n_rows] stay cheap.
        self._capacity = n0
        self.keys = keys
        self.objs: List[ETEdge] = [mst[k] for k in keys]
        self.erow: Dict[Tuple[int, int], int] = dict(zip(self.keys, range(n0)))
        objs = self.objs
        # One flat int list per column: np.array on a list of Python ints
        # is several times faster than converting a list of tuples.
        self.eu = np.array([e.u for e in objs], dtype=np.int64)
        self.ev = np.array([e.v for e in objs], dtype=np.int64)
        self.et1 = np.array([e.t_uv for e in objs], dtype=np.int64)
        self.et2 = np.array([e.t_vu for e in objs], dtype=np.int64)
        self.etour = np.array([e.tour for e in objs], dtype=np.int64)
        self.ew = np.array([e.weight for e in objs], dtype=np.float64)
        self.ealive = np.ones(n0, dtype=bool)
        self.n_rows = n0
        self.dead: List[Tuple[int, int]] = []
        self.appended: List[int] = []
        # Pristine copies: scatter writes back only rows that changed.
        self._et1_0 = self.et1.copy()
        self._et2_0 = self.et2.copy()
        self._etour_0 = self.etour.copy()

        # tour_of's keys are exactly the tracked set (track() seeds both);
        # insertion order is deterministic, and no result below depends on
        # row order, so the selection order stands in for a sort.  The
        # filter runs vectorized: tourless rows map to -1, which never
        # matches a_orig (tour ids are >= 0), so they survive only
        # through the endpoint test — same rule as the scalar filter.
        tof = state.tour_of
        ntr = len(tof)
        xs_all = np.fromiter(tof.keys(), np.int64, ntr)
        ts_all = np.fromiter(
            (-1 if t is None else t for t in tof.values()), np.int64, ntr
        )
        mask = np.isin(ts_all, np.fromiter(a_orig, np.int64, len(a_orig)))
        if eps:
            mask |= np.isin(xs_all, np.fromiter(eps, np.int64, len(eps)))
        idx = np.flatnonzero(mask)
        nv = idx.size
        self.vx = xs_all[idx]
        self.vtour = ts_all[idx]
        self.vx_list: List[int] = self.vx.tolist()
        self.vrow: Dict[int, int] = dict(zip(self.vx_list, range(nv)))
        witness = state.witness
        # The init protocols can know a vertex's tour before any witness
        # entry exists for it; a missing entry behaves like None.
        wlist = [witness.get(x) for x in self.vx_list]
        self.wobjs = wlist
        # Rows whose witness *object* was swapped (repick/repair/link fill)
        # scatter as fresh copies; surviving originals mutate in place,
        # exactly like the scalar transforms.
        self.wreplaced = np.zeros(nv, dtype=bool)
        self.walive = np.array([w is not None for w in wlist], dtype=bool)
        self.wu = np.array([0 if w is None else w.u for w in wlist], dtype=np.int64)
        self.wv = np.array([0 if w is None else w.v for w in wlist], dtype=np.int64)
        self.wt1 = np.array(
            [0 if w is None else w.t_uv for w in wlist], dtype=np.int64
        )
        self.wt2 = np.array(
            [0 if w is None else w.t_vu for w in wlist], dtype=np.int64
        )
        self.wtour = np.array(
            [0 if w is None else w.tour for w in wlist], dtype=np.int64
        )
        self.ww = np.array(
            [0.0 if w is None else w.weight for w in wlist], dtype=np.float64
        )
        self._vtour_0 = self.vtour.copy()
        # Endpoints/weight of an un-replaced witness never change, so the
        # change mask only needs liveness and the transformed columns.
        self._w_0 = (
            self.walive.copy(), self.wt1.copy(), self.wt2.copy(), self.wtour.copy()
        )
        # Superset of the tour ids appearing anywhere in this plane's
        # columns.  A step whose tours are all absent provably moves no
        # local row, so its masked transforms can be skipped wholesale —
        # during initialisation most (machine, step) pairs are exactly
        # that.  The set only ever grows (merged-away ids linger), which
        # costs missed skips but can never skip real work.
        tours = set(np.unique(self.etour[:n0]).tolist())
        tours.update(np.unique(self.vtour).tolist())
        tours.discard(-1)
        if nv and bool(self.walive.any()):
            tours.update(np.unique(self.wtour[self.walive]).tolist())
        self._tours = tours
        # Pre-size the edge columns for every row this batch can append
        # (one per hosted link): once a fleet applier adopts the columns
        # as views into stacked parents, reallocation would silently
        # detach them, so growth happens up front and is then frozen.
        if reserve:
            self._grow(reserve)

    # ------------------------------------------------------------------
    # edge-row helpers
    # ------------------------------------------------------------------
    def _grow(self, extra: int) -> None:
        need = self.n_rows + extra
        if need <= self._capacity:
            return
        if self._frozen:
            raise ProtocolError(
                f"machine {self.state.mid}: plane columns are fleet-adopted "
                f"but need {need} rows (capacity {self._capacity})"
            )
        new_cap = max(need, 2 * self._capacity, 8)
        for name in ("eu", "ev", "et1", "et2", "etour"):
            old = getattr(self, name)
            arr = np.zeros(new_cap, dtype=np.int64)
            arr[: self.n_rows] = old[: self.n_rows]
            setattr(self, name, arr)
        ew = np.zeros(new_cap, dtype=np.float64)
        ew[: self.n_rows] = self.ew[: self.n_rows]
        self.ew = ew
        alive = np.zeros(new_cap, dtype=bool)
        alive[: self.n_rows] = self.ealive[: self.n_rows]
        self.ealive = alive
        self._capacity = new_cap

    def _append_row(
        self, u: int, v: int, weight: float, t_uv: int, t_vu: int, tour: int
    ) -> int:
        self._grow(1)
        r = self.n_rows
        self.eu[r] = u
        self.ev[r] = v
        self.ew[r] = weight
        self.et1[r] = t_uv
        self.et2[r] = t_vu
        self.etour[r] = tour
        self.ealive[r] = True
        self.n_rows = r + 1
        self.keys.append((u, v))
        self.erow[(u, v)] = r
        self.appended.append(r)
        return r

    def _pick_witness_row(self, x: int) -> Optional[int]:
        """Row of x's min-key live incident MST edge (pick_witness's rule)."""
        n = self.n_rows
        inc = np.flatnonzero(
            ((self.eu[:n] == x) | (self.ev[:n] == x)) & self.ealive[:n]
        )
        if inc.size == 0:
            return None
        if inc.size == 1:
            return int(inc[0])
        # min by ETEdge.key == (weight, u, v); lexsort's last key is primary
        order = np.lexsort((self.ev[inc], self.eu[inc], self.ew[inc]))
        return int(inc[order[0]])

    def _set_witness_from_row(self, i: int, r: int) -> None:
        self.wu[i] = self.eu[r]
        self.wv[i] = self.ev[r]
        self.ww[i] = self.ew[r]
        self.wt1[i] = self.et1[r]
        self.wt2[i] = self.et2[r]
        self.wtour[i] = self.etour[r]
        self.walive[i] = True
        self.wreplaced[i] = True

    # ------------------------------------------------------------------
    # plane accessors for the mid-batch protocol exchanges
    # ------------------------------------------------------------------
    def tour_id_of(self, x: int) -> Optional[int]:
        """Current tour id of ``x`` (post-transform), ``None`` if unknown."""
        i = self.vrow.get(x)
        if i is None:
            return self.state.tour_of.get(x)
        t = int(self.vtour[i])
        return None if t == -1 else t

    def witness_snapshot(self, x: int) -> Optional[Tuple]:
        """Wire form of x's current witness (plain Python scalars)."""
        i = self.vrow[x]
        if not self.walive[i]:
            return None
        return (
            int(self.wu[i]), int(self.wv[i]), float(self.ww[i]),
            int(self.wt1[i]), int(self.wt2[i]), int(self.wtour[i]),
        )

    def repick_home_witness(self, x: int) -> None:
        """Mirror of the repair preamble: re-pick iff the witness died."""
        i = self.vrow[x]
        if self.walive[i]:
            return
        r = self._pick_witness_row(x)
        if r is not None:
            self._set_witness_from_row(i, r)

    def install_witness(
        self, x: int, snap: Optional[Sequence], tid: Optional[int]
    ) -> None:
        """Apply one repair broadcast (no-op unless ``x`` is tracked here)."""
        i = self.vrow.get(x)
        if i is None:
            return
        if snap is None:
            self.walive[i] = False
        else:
            u, v, w, t1, t2, tour = snap
            self.wu[i], self.wv[i], self.ww[i] = u, v, w
            self.wt1[i], self.wt2[i], self.wtour[i] = t1, t2, tour
            self.walive[i] = True
            self.wreplaced[i] = True
            self._tours.add(tour)
        self.vtour[i] = tid if tid is not None else -1
        if tid is not None:
            self._tours.add(tid)

    def outgoing_value(self, x: int) -> Optional[int]:
        """Min label departing ``x`` (MachineState.outgoing_value's rule)."""
        n = self.n_rows
        alive = self.ealive[:n]
        best: Optional[int] = None
        dep1 = alive & (self.eu[:n] == x)
        if bool(dep1.any()):
            best = int(self.et1[:n][dep1].min())
        dep2 = alive & (self.ev[:n] == x)
        if bool(dep2.any()):
            m2 = int(self.et2[:n][dep2].min())
            if best is None or m2 < best:
                best = m2
        return best

    # ------------------------------------------------------------------
    # vectorized label transforms
    # ------------------------------------------------------------------
    @staticmethod
    def _split_masked(
        t1: np.ndarray, t2: np.ndarray, tours: np.ndarray, mask: np.ndarray,
        spec: SplitSpec,
    ) -> None:
        sub1 = t1[mask]
        sub2 = t2[mask]
        new_tours1, new1 = split_labels(sub1, spec)
        new_tours2, new2 = split_labels(sub2, spec)
        if bool((new_tours1 != new_tours2).any()):
            raise ProtocolError("edge straddles a split; labels corrupt")
        t1[mask] = new1
        t2[mask] = new2
        tours[mask] = new_tours1

    @staticmethod
    def _join_masked(
        t1: np.ndarray, t2: np.ndarray, tours: np.ndarray, alive: np.ndarray,
        spec: JoinSpec,
    ) -> None:
        m1 = alive & (tours == spec.tour1)
        if bool(m1.any()):
            t1[m1] = join_m1_labels(t1[m1], spec)
            t2[m1] = join_m1_labels(t2[m1], spec)
        m2 = alive & (tours == spec.tour2)
        if bool(m2.any()):
            t1[m2] = join_m2_labels(t1[m2], spec)
            t2[m2] = join_m2_labels(t2[m2], spec)
            tours[m2] = spec.tour1

    # ------------------------------------------------------------------
    # one cut step (mirrors repro.core.scripts.apply_cut_step)
    # ------------------------------------------------------------------
    def cut_step(self, step: "CutStep") -> None:
        spec = step.spec
        cu, cv = normalize(*step.edge)
        if spec.old_tour not in self._tours:
            # No row of the split tour lives here — not an edge, not a
            # live witness, not a tracked vertex (each would have put
            # ``old_tour`` into ``_tours``) — so only the replicated
            # size bookkeeping applies on this machine.
            self.state.tour_size[spec.old_tour] = spec.root_side_size
            self.state.tour_size[spec.inside_tour] = spec.inside_size
            return
        self._tours.add(spec.inside_tour)
        n = self.n_rows
        et1, et2 = self.et1[:n], self.et2[:n]
        etour, ealive = self.etour[:n], self.ealive[:n]

        # Witnesses that *are* the cut edge (endpoint comparison, like
        # ``normalize(w.u, w.v) == cut_key`` in the scalar engine).
        w_is_cut = (
            self.walive
            & (np.minimum(self.wu, self.wv) == cu)
            & (np.maximum(self.wu, self.wv) == cv)
        )

        # 1. Classify tracked vertices of the split tour in old coordinates.
        sel = self.vtour == spec.old_tour
        new_vtour: Optional[np.ndarray] = None
        known = sel  # overwritten below; pre-kill liveness matters
        fallback_vals: Dict[int, int] = {}
        if bool(sel.any()):
            head = step.snapshot.head_at(spec.e_min)
            w_min = np.minimum(self.wt1, self.wt2)
            w_max = np.maximum(self.wt1, self.wt2)
            inside = np.where(
                w_is_cut,
                self.vx == head,
                (spec.e_min < w_min) & (w_max < spec.e_max),
            )
            known = sel & self.walive
            new_vtour = np.where(inside, spec.inside_tour, spec.old_tour)
            for i in np.flatnonzero(sel & ~self.walive).tolist():
                x = self.vx_list[i]
                if x not in self.state.vertices:
                    fallback_vals[i] = -1  # unknown until the repair broadcast
                    continue
                r = self._pick_witness_row(x)
                if r is None:
                    raise ProtocolError(
                        f"machine {self.state.mid}: owned vertex {x} in tour "
                        f"{spec.old_tour} has no incident MST edge"
                    )
                if (min(int(self.eu[r]), int(self.ev[r])),
                        max(int(self.eu[r]), int(self.ev[r]))) == (cu, cv):
                    is_inside = step.snapshot.head_at(spec.e_min) == x
                else:
                    r_min = min(int(self.et1[r]), int(self.et2[r]))
                    r_max = max(int(self.et1[r]), int(self.et2[r]))
                    is_inside = spec.e_min < r_min and r_max < spec.e_max
                fallback_vals[i] = spec.inside_tour if is_inside else spec.old_tour

        # 2. Remove the cut edge; invalidate witnesses that pointed at it.
        row = self.erow.get((cu, cv))
        if row is not None and self.ealive[row]:
            self.ealive[row] = False
            self.dead.append((cu, cv))
        self.walive &= ~w_is_cut

        # 3. Relabel surviving MST edges and witnesses of the split tour.
        edge_mask = ealive & (etour == spec.old_tour)
        if bool(edge_mask.any()):
            self._split_masked(et1, et2, etour, edge_mask, spec)
        wit_mask = self.walive & (self.wtour == spec.old_tour)
        if bool(wit_mask.any()):
            self._split_masked(self.wt1, self.wt2, self.wtour, wit_mask, spec)

        # 4. Tour bookkeeping.
        self.state.tour_size[spec.old_tour] = spec.root_side_size
        self.state.tour_size[spec.inside_tour] = spec.inside_size
        if new_vtour is not None:
            self.vtour[known] = new_vtour[known]
            for i, tid in fallback_vals.items():
                self.vtour[i] = tid

        # 5. Owned endpoints whose witness died can re-pick locally for free.
        for x in (cu, cv):
            i = self.vrow.get(x)
            if i is None or x not in self.state.vertices:
                continue
            if self.walive[i] or self.vtour[i] == -1:
                continue
            r = self._pick_witness_row(x)
            if r is not None:
                self._set_witness_from_row(i, r)

    # ------------------------------------------------------------------
    # one link step (mirrors repro.core.scripts.apply_link_step)
    # ------------------------------------------------------------------
    def link_step(self, step: "LinkStep") -> None:
        spec = step.spec
        n = self.n_rows

        # 1. Relabel existing MST edges and witnesses.  Skipped when this
        # plane holds no row of either tour (see ``_tours``): the M2
        # relabel and the M1 insertion shift are both empty then, as is
        # the vertex-side tour rename below.
        if spec.tour1 in self._tours or spec.tour2 in self._tours:
            self._join_masked(
                self.et1[:n], self.et2[:n], self.etour[:n], self.ealive[:n], spec
            )
            self._join_masked(self.wt1, self.wt2, self.wtour, self.walive, spec)
            self.vtour[self.vtour == spec.tour2] = spec.tour1
            self._tours.add(spec.tour1)
        self.link_local(step)

    def link_local(self, step: "LinkStep") -> None:
        """Steps 2–4 of a link: the append / bookkeeping / witness-fill
        parts that are inherently per-machine.  The label joins (step 1)
        are applied by the caller — per plane in :meth:`link_step`, or
        once over the stacked fleet columns in :class:`_FleetLinkApplier`.
        """
        spec = step.spec
        u, v = step.edge
        lab_in, lab_out = spec.new_edge_labels

        # 2. Materialize the new edge if this machine hosts an endpoint.
        state = self.state
        if u in state.vertices or v in state.vertices:
            key = normalize(u, v)
            prior = self.erow.get(key)
            if prior is not None and self.ealive[prior]:
                raise ProtocolError(
                    f"machine {state.mid}: MST edge {key} already present"
                )
            self._append_row(key[0], key[1], step.weight, lab_in, lab_out, spec.tour1)
            self._tours.add(spec.tour1)

        # 3. Tour bookkeeping: M2 dissolves into M1.
        state.tour_size[spec.tour1] = spec.new_size
        state.tour_size.pop(spec.tour2, None)

        # 4. Endpoint witnesses: a previously-isolated endpoint now has an edge.
        for x in (u, v):
            i = self.vrow.get(x)
            if i is not None and not self.walive[i]:
                self.wu[i], self.wv[i] = normalize(u, v)
                self.ww[i] = step.weight
                self.wt1[i] = lab_in
                self.wt2[i] = lab_out
                self.wtour[i] = spec.tour1
                self.walive[i] = True
                self.wreplaced[i] = True
                self._tours.add(spec.tour1)

    # ------------------------------------------------------------------
    # scatter back into the MachineState dicts (changed rows only)
    # ------------------------------------------------------------------
    def scatter(self) -> None:
        state = self.state
        n = self.n_rows
        n0 = n - len(self.appended)

        # 1. Dead edges leave the MST (index and gauge upkeep included).
        for (u, v) in self.dead:
            state.pop_mst_edge(u, v)

        # 2. Surviving pre-existing rows: write back only changed labels.
        changed = np.flatnonzero(
            self.ealive[:n0]
            & (
                (self.et1[:n0] != self._et1_0[:n0])
                | (self.et2[:n0] != self._et2_0[:n0])
                | (self.etour[:n0] != self._etour_0[:n0])
            )
        ).tolist()
        if changed:
            t1l = self.et1[:n0].tolist()
            t2l = self.et2[:n0].tolist()
            tol = self.etour[:n0].tolist()
            objs = self.objs
            for r in changed:
                e = objs[r]
                e.t_uv = t1l[r]
                e.t_vu = t2l[r]
                e.tour = tol[r]

        # 3. Appended rows materialize as fresh ETEdges.
        for r in self.appended:
            state.add_mst_edge(
                ETEdge(
                    int(self.eu[r]), int(self.ev[r]), float(self.ew[r]),
                    int(self.et1[r]), int(self.et2[r]), int(self.etour[r]),
                )
            )

        # 4. Affected tour groups are regrouped wholesale from the final
        #    column; unaffected tours keep their index entries untouched.
        by_tour: Dict[int, Set[Tuple[int, int]]] = {}
        live = np.flatnonzero(self.ealive[:n])
        if live.size:
            tours_live = self.etour[live]
            order = np.argsort(tours_live, kind="stable")
            sorted_idx = live[order].tolist()
            sorted_tours = tours_live[order].tolist()
            keys = self.keys
            cur_tid: Optional[int] = None
            cur_set: Set[Tuple[int, int]] = set()
            for r, tid in zip(sorted_idx, sorted_tours):
                if tid != cur_tid:
                    cur_set = set()
                    by_tour[tid] = cur_set
                    cur_tid = tid
                cur_set.add(keys[r])
        state.replace_tour_groups(self._a_orig, by_tour)

        # 5. Vertex side: only rows whose columns moved touch the dicts.
        #    Surviving original witnesses mutate in place — the scalar
        #    transforms do the same — and only swapped rows (repick,
        #    repair install, link fill) get fresh ETEdge copies.
        walive0, wt10, wt20, wtour0 = self._w_0
        wit_changed = np.flatnonzero(
            (self.walive != walive0)
            | self.wreplaced
            | (
                self.walive
                & (
                    (self.wt1 != wt10) | (self.wt2 != wt20)
                    | (self.wtour != wtour0)
                )
            )
        ).tolist()
        if wit_changed:
            wul, wvl, wwl = self.wu.tolist(), self.wv.tolist(), self.ww.tolist()
            wt1l, wt2l = self.wt1.tolist(), self.wt2.tolist()
            wtourl = self.wtour.tolist()
            walivel = self.walive.tolist()
            replacedl = self.wreplaced.tolist()
            witness = state.witness
            wobjs = self.wobjs
            for i in wit_changed:
                if not walivel[i]:
                    witness[self.vx_list[i]] = None
                elif replacedl[i]:
                    witness[self.vx_list[i]] = ETEdge(
                        wul[i], wvl[i], wwl[i], wt1l[i], wt2l[i], wtourl[i]
                    )
                else:
                    w0 = wobjs[i]
                    w0.t_uv = wt1l[i]
                    w0.t_vu = wt2l[i]
                    w0.tour = wtourl[i]
        tour_changed = np.flatnonzero(self.vtour != self._vtour_0).tolist()
        if tour_changed:
            vtourl = self.vtour.tolist()
            tour_of = state.tour_of
            for i in tour_changed:
                t = vtourl[i]
                tour_of[self.vx_list[i]] = t if t != -1 else None


# ----------------------------------------------------------------------
# fleet-fused link application
# ----------------------------------------------------------------------
class _FleetLinkApplier:
    """Apply a link script to every plane with the label joins fused.

    A join spec is machine-independent — the same label arithmetic runs
    on every machine's rows — so instead of per-plane masked joins
    (k calls per step, each over a small array) the planes' columns are
    stacked into shared parents and each plane's attributes are replaced
    by views into them.  One step then costs one edge join, one witness
    join, and one vertex-tour rename over the stacked arrays; the
    per-machine scalar parts (edge append, size bookkeeping, witness
    fill) still run per plane through :meth:`MachineLabelPlane.link_local`
    and write through the views.  During initialisation this takes the
    join count per batch from O(k · links) to O(links).
    """

    def __init__(self, planes: Sequence[MachineLabelPlane]) -> None:
        self.planes = planes
        for pl in planes:
            pl._frozen = True
        self.e1, self.e2, self.etour, self.ealive = self._adopt(
            ("et1", "et2", "etour", "ealive")
        )
        self.w1, self.w2, self.wtour, self.walive = self._adopt(
            ("wt1", "wt2", "wtour", "walive")
        )
        (self.vtour,) = self._adopt(("vtour",))

    def _adopt(self, names: Sequence[str]) -> List[np.ndarray]:
        parents: List[np.ndarray] = []
        for name in names:
            arrs = [getattr(pl, name) for pl in self.planes]
            parent = np.concatenate(arrs)
            off = 0
            for pl, a in zip(self.planes, arrs):
                setattr(pl, name, parent[off : off + a.shape[0]])
                off += a.shape[0]
            parents.append(parent)
        return parents

    def run(self, script: Sequence["LinkStep"]) -> None:
        join = MachineLabelPlane._join_masked
        for step in script:
            spec = step.spec
            join(self.e1, self.e2, self.etour, self.ealive, spec)
            join(self.w1, self.w2, self.wtour, self.walive, spec)
            self.vtour[self.vtour == spec.tour2] = spec.tour1
            for pl in self.planes:
                pl.link_local(step)


# ----------------------------------------------------------------------
# the fast-path structural batch (mirrors scripts.run_structural_batch)
# ----------------------------------------------------------------------
def run_structural_batch_columnar(
    net: "Network",
    vp: "VertexPartition",
    states: Sequence["MachineState"],
    cuts: Sequence[Tuple[int, int]],
    links: Sequence[Tuple[int, int, float]],
    next_tour_id: int,
) -> int:
    """Lemma 5.9 with columnar local application.

    Wire-identical to :func:`repro.core.scripts.run_structural_batch`:
    the same broadcasts with the same payloads in the same order, so the
    ledger transcript matches byte for byte.  Locally, one
    :class:`MachineLabelPlane` per machine spans both the cut and the
    link phase; the witness repair and link-parameter collection between
    them read and write through the planes.
    """
    from repro.core.scripts import (
        _collect_cut_params,
        build_cut_script,
        build_link_script,
    )

    if not cuts and not links:
        return next_tour_id
    recorder = net.ledger.recorder
    if recorder is not None:
        recorder.on_engine("structural_batch", "columnar")
    base = next_tour_id
    cut_script = None
    if cuts:
        params = _collect_cut_params(net, vp, states, cuts)
        cut_script, next_tour_id = build_cut_script(params, base)
    # Affected original tours: every old_tour a cut step splits (cascaded
    # steps may name fresh ids >= base — those derive from these) plus
    # the current tours of the link endpoints.  Update endpoints are
    # packed even when isolated/tourless.
    a_orig: Set[int] = set()
    if cut_script:
        for step in cut_script:
            if step.spec.old_tour < base:
                a_orig.add(step.spec.old_tour)
    eps: Set[int] = set()
    for (u, v) in cuts:
        eps.update((u, v))
    for (u, v, _w) in links:
        eps.update((u, v))
        for x in (u, v):
            t = states[vp.home(x)].tour_of.get(x)
            if t is not None and t < base:
                a_orig.add(t)
    planes = [
        MachineLabelPlane(
            st,
            a_orig,
            eps,
            reserve=sum(
                1 for (u, v, _w) in links if u in st.vertices or v in st.vertices
            ),
        )
        for st in states
    ]
    if cut_script:
        for pl in planes:
            for step in cut_script:
                pl.cut_step(step)
        endpoints = [x for (u, v) in cuts for x in (u, v)]
        _repair_witnesses_columnar(net, vp, planes, endpoints)
    if links:
        lparams = _collect_link_params_columnar(net, vp, states, planes, links)
        link_script = build_link_script(lparams)
        _FleetLinkApplier(planes).run(link_script)
    for pl in planes:
        pl.scatter()
        pl.state.refresh_gauges()
    return next_tour_id


class LinkBatchSession:
    """Planes held open across consecutive link-only structural batches.

    The initialisation protocols (Theorems 5.8 and 8.1) run hundreds of
    small link batches back to back, and *nothing between two batches
    reads the Euler state* — the Borůvka drivers only consult their own
    component structure and the machines' static graph-edge dictionaries.
    Packing and scattering every machine's labels around each batch is
    therefore pure overhead; this session packs once (over every current
    tour), applies each batch's link script through the plane/fleet
    machinery, and scatters once in :meth:`close`.

    Wire-identity is untouched: each :meth:`run_links` call collects and
    broadcasts the same link parameters as an equivalent
    :func:`repro.core.scripts.run_structural_batch` call — the planes it
    reads tour ids from hold exactly the state a scatter would have
    installed.  What *does* change is space-gauge sampling: the scalar
    engine refreshes gauges after every batch, the session only on
    close, so ``Machine.peak_words`` during initialisation is sampled at
    the endpoints rather than per batch (the charge ledger never sees
    gauges, so rounds/messages/words/digest are byte-identical).

    Precondition: every tracked vertex has a tour (true after
    :func:`repro.core.init_build.make_states`), so the pack over all
    current tours covers every row a link can touch.
    """

    def __init__(
        self,
        net: "Network",
        vp: "VertexPartition",
        states: Sequence["MachineState"],
    ) -> None:
        self.net = net
        self.vp = vp
        self.states = states
        a_orig: Set[int] = set()
        for st in states:
            a_orig.update(t for t in st.tour_of.values() if t is not None)
        self.planes = [MachineLabelPlane(st, a_orig, set()) for st in states]

    def run_links(
        self, links: Sequence[Tuple[int, int, float]], next_tour_id: int
    ) -> int:
        """One Lemma 5.9 link batch; same wire as ``run_structural_batch``."""
        from repro.core.scripts import build_link_script

        if not links:
            return next_tour_id
        recorder = self.net.ledger.recorder
        if recorder is not None:
            recorder.on_engine("structural_batch", "columnar")
        for pl in self.planes:
            st = pl.state
            need = sum(
                1 for (u, v, _w) in links if u in st.vertices or v in st.vertices
            )
            if need:
                pl._frozen = False
                pl._grow(need)
        lparams = _collect_link_params_columnar(
            self.net, self.vp, self.states, self.planes, links
        )
        _FleetLinkApplier(self.planes).run(build_link_script(lparams))
        return next_tour_id

    def close(self) -> None:
        """Scatter every plane back into its machine state, once."""
        for pl in self.planes:
            pl.scatter()
            pl.state.refresh_gauges()


def _repair_witnesses_columnar(
    net: "Network",
    vp: "VertexPartition",
    planes: Sequence[MachineLabelPlane],
    vertices: Sequence[int],
) -> None:
    """Plane-reading twin of :func:`repro.core.scripts._repair_witnesses`."""
    from repro.comm.rerouting import scheduled_broadcasts
    from repro.sim.message import WORDS_ET_EDGE

    reqs = []
    for x in sorted(set(vertices)):
        src = vp.home(x)
        pl = planes[src]
        pl.repick_home_witness(x)
        snap = pl.witness_snapshot(x)
        tid = pl.tour_id_of(x)
        reqs.append((src, ("repair", x, snap, tid), WORDS_ET_EDGE + 1))
    got = scheduled_broadcasts(net, reqs)
    for _src, (_tag, x, snap, tid) in got:
        for pl in planes:
            pl.install_witness(x, snap, tid)


def _collect_link_params_columnar(
    net: "Network",
    vp: "VertexPartition",
    states: Sequence["MachineState"],
    planes: Sequence[MachineLabelPlane],
    links: Sequence[Tuple[int, int, float]],
) -> List:
    """Plane-reading twin of :func:`repro.core.scripts._collect_link_params`."""
    from repro.comm.rerouting import scheduled_broadcasts
    from repro.core.scripts import _LinkParam
    from repro.sim.message import WORDS_ID

    ordered = sorted((normalize(u, v) + (w,)) for (u, v, w) in links)
    reqs = []
    for (u, v, w) in ordered:
        for x in (u, v):
            src = vp.home(x)
            pl = planes[src]
            tid = pl.tour_id_of(x)
            if tid is None:
                raise ProtocolError(f"machine {src}: unknown tour for owned vertex {x}")
            size = states[src].tour_size.get(tid)
            if size is None:
                raise ProtocolError(f"machine {src}: unknown size for tour {tid}")
            out = pl.outgoing_value(x)
            reqs.append(
                (src, ("linkp", u, v, w, x, out if out is not None else 0, tid, size),
                 WORDS_ID * 5)
            )
    got = scheduled_broadcasts(net, reqs)
    halves: Dict[Tuple[int, int, float], Dict[int, Tuple[int, int, int]]] = {}
    for _src, (_tag, u, v, w, x, out, tid, size) in got:
        halves.setdefault((u, v, w), {})[x] = (out, tid, size)
    params = []
    for (u, v, w) in ordered:
        h = halves[(u, v, w)]
        a, t1, s1 = h[u]
        b, t2, s2 = h[v]
        params.append(_LinkParam(u, v, w, a, t1, s1, b, t2, s2))
    return params


# ----------------------------------------------------------------------
# reroot (Lemma 5.5) over a whole machine, for the single-update path
# ----------------------------------------------------------------------
def reroot_machine_labels(
    state: "MachineState", tid: int, d: int, size: int
) -> None:
    """Apply the reroot transform to every label of tour ``tid``.

    Value-identical to the scalar loops in
    :func:`repro.core.single_update.run_reroot`: the kernel
    :func:`repro.euler.vectorized.reroot_labels` is property-tested
    element-for-element against :func:`repro.euler.labels.reroot_label`.
    """
    keys = state.mst_keys_in_tour(tid)
    if len(keys) >= 2:
        t1 = np.fromiter((state.mst[k].t_uv for k in keys), np.int64, len(keys))
        t2 = np.fromiter((state.mst[k].t_vu for k in keys), np.int64, len(keys))
        new1 = reroot_labels(t1, d, size).tolist()
        new2 = reroot_labels(t2, d, size).tolist()
        for i, k in enumerate(keys):
            ete = state.mst[k]
            ete.t_uv = new1[i]
            ete.t_vu = new2[i]
    else:
        for k in keys:
            ete = state.mst[k]
            ete.t_uv = reroot_label(ete.t_uv, d, size)
            ete.t_vu = reroot_label(ete.t_vu, d, size)
    for w in state.witness.values():
        if w is not None and w.tour == tid:
            w.t_uv = reroot_label(w.t_uv, d, size)
            w.t_vu = reroot_label(w.t_vu, d, size)
