"""Batched §6.2 component labelling for the deletion candidate scan.

Step 2 of :func:`repro.core.batch_deletion.batch_delete` asks, for every
endpoint of every surviving graph edge, which bracket component the
vertex fell into.  The reference path answers one vertex at a time with
:meth:`repro.euler.brackets.BracketComponents.component_of_vertex` —
a bisect plus a parent walk per call, and the single hottest scalar loop
of a deletion batch.

This module precomputes the answer for *all* queried vertices of one
machine in a few NumPy passes: group the vertices by affected tour, feed
their witnesses' lower labels through
:func:`repro.euler.vectorized.innermost_intervals`, and add the tour's
component base.  Rows the kernel cannot decide — a missing witness, a
witness that *is* a deleted edge (Figure 4's boundary-value rule), or a
label the scalar validator would reject — are marked
:data:`SCALAR_FALLBACK` so the caller re-derives them with the scalar
``comp_of``, keeping both the values and the error behaviour (message
text *and* raise order) identical to the reference scan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Tuple

import numpy as np

from repro.euler.vectorized import innermost_intervals

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.state import MachineState
    from repro.euler.brackets import BracketComponents

#: Marker: this vertex must be resolved by the scalar ``comp_of`` (which
#: may legitimately raise — e.g. a missing witness in a split tour).
SCALAR_FALLBACK = object()

_TourArrays = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def tour_interval_arrays(
    brackets: Mapping[int, "BracketComponents"],
) -> Dict[int, _TourArrays]:
    """Array form (starts, ends, parents, sorted deleted labels) per tour."""
    out: Dict[int, _TourArrays] = {}
    for tid, bc in brackets.items():
        starts = np.array([a for a, _ in bc.intervals], dtype=np.int64)
        ends = np.array([b for _, b in bc.intervals], dtype=np.int64)
        parents = np.array(bc.parent, dtype=np.int64)
        deleted = np.sort(np.concatenate((starts, ends)), kind="stable")
        out[tid] = (starts, ends, parents, deleted)
    return out


def machine_component_map(
    state: "MachineState",
    brackets: Mapping[int, "BracketComponents"],
    comp_base: Mapping[int, int],
    arrays: Mapping[int, _TourArrays],
) -> Dict[int, object]:
    """Component of every graph-edge endpoint of ``state``, batched.

    Returns ``{x: component | None | SCALAR_FALLBACK}`` covering exactly
    the endpoints of ``state.graph_edges``; ``None`` means x's tour is
    unaffected (same meaning as the scalar ``comp_of``).
    """
    out: Dict[int, object] = {}
    by_tid: Dict[int, List[Tuple[int, object]]] = {}
    tour_of = state.tour_of
    witness = state.witness
    for pair in state.graph_edges:
        for x in pair:
            if x in out:
                continue
            tid = tour_of.get(x)
            if tid not in brackets:
                out[x] = None
                continue
            w = witness.get(x)
            if w is None:
                out[x] = SCALAR_FALLBACK
                continue
            out[x] = SCALAR_FALLBACK  # provisional; overwritten below
            by_tid.setdefault(tid, []).append((x, w))
    for tid, rows in by_tid.items():
        starts, ends, parents, deleted = arrays[tid]
        base = comp_base[tid]
        size = brackets[tid].size
        t1 = np.array([w.t_uv for (_x, w) in rows], dtype=np.int64)
        t2 = np.array([w.t_vu for (_x, w) in rows], dtype=np.int64)
        wmin = np.minimum(t1, t2)
        # The scalar path resolves a surviving witness through its lower
        # label alone (``component_of_label(labels[0])``), so only that
        # label's validity matters here.
        bad = (wmin < 0) | (wmin >= size)
        pos = np.searchsorted(deleted, wmin)
        in_rng = pos < deleted.size
        hit = np.zeros(wmin.shape, dtype=bool)
        hit[in_rng] = deleted[pos[in_rng]] == wmin[in_rng]
        bad |= hit  # deleted-edge witnesses and corrupt labels alike
        good_idx = np.flatnonzero(~bad)
        if good_idx.size:
            comps = innermost_intervals(starts, ends, parents, wmin[good_idx])
            for j, c in zip(good_idx.tolist(), comps.tolist()):
                out[rows[j][0]] = base + c + 1
        for j in np.flatnonzero(bad).tolist():
            out[rows[j][0]] = SCALAR_FALLBACK
    return out
