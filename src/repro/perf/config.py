"""The engine switches: fast path and execution backend.

**Fast path** — three layers, highest priority first:

1. an active :func:`override_fast_path` context (used by
   :class:`~repro.core.api.DynamicMST` instances built with an explicit
   ``fast=`` argument, and by the equivalence tests);
2. a process-wide value installed with :func:`set_fast_path`;
3. the ``REPRO_FAST`` environment variable (unset means **on**: the
   columnar path is the production path; the scalar path is the
   reference the equivalence suite compares against).

**Execution backend** — the same three layers, one level up: an
:class:`~repro.sim.executor.ExecutionBackend` names a complete engine
(``reference``, ``inproc-columnar``, or ``parallel``) and implies a
fast-path setting; :func:`override_backend` pushes both stacks together
so every ``fast_path_enabled()`` gate downstream follows the backend.
The backend layer additionally exposes :func:`parallel_kernels`, the
hook the shared-memory worker pool of :mod:`repro.perf.parallel` hangs
off: ``None`` for the in-process backends, so the kernel twins in
:mod:`repro.euler.vectorized` cost one function call when inactive.

Both paths are always available — nothing is compiled out — so a single
process can run them back to back and compare ledgers byte for byte.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import (no cycle at runtime)
    from repro.sim.executor import ExecutionBackend, KernelPoolLike

#: Below this many rows, array packing costs more than scalar loops save;
#: the columnar engine still runs (correctness is size-independent) but
#: oracle-side helpers use it as their vectorize/loop crossover.
VECTOR_MIN_ROWS = 64

#: Below this many *affected* rows, a structural batch's pack/scatter
#: cycle costs more than the scalar per-edge loops it replaces; the
#: update-path dispatch in :func:`repro.core.scripts.run_structural_batch`
#: falls back to the scalar engine under this estimate.  Both engines are
#: wire-identical, so the gate can never change a ledger — only which
#: local code computes it.
UPDATE_MIN_ROWS = int(os.environ.get("REPRO_UPDATE_MIN_ROWS", "8192"))

#: Below this many rows, shipping a kernel to the worker pool costs more
#: than the barrier saves; the parallel twins in
#: :mod:`repro.euler.vectorized` compute inline under this size.  Tests
#: monkeypatch this down to force the shared-memory path on small arrays.
PARALLEL_MIN_ROWS = int(os.environ.get("REPRO_PARALLEL_MIN_ROWS", "65536"))

_process_default: Optional[bool] = None
_override_stack: List[bool] = []

_backend_default: Optional["ExecutionBackend"] = None
_backend_stack: List["ExecutionBackend"] = []


def _env_default() -> bool:
    value = os.environ.get("REPRO_FAST")
    if value is None:
        # REPRO_BACKEND alone may also pin the engine; the reference
        # backend is the only one whose fast path is off.
        backend = os.environ.get("REPRO_BACKEND")
        if backend is not None:
            return backend.strip().lower() not in ("reference", "scalar")
        return True
    return value.strip() not in ("", "0", "false", "no")


def fast_path_enabled() -> bool:
    """Is the columnar fast path active at this call site?"""
    if _override_stack:
        return _override_stack[-1]
    if _process_default is not None:
        return _process_default
    return _env_default()


def set_fast_path(enabled: Optional[bool]) -> None:
    """Install a process-wide default (``None`` restores the env default)."""
    # simlint: disable=SIM002 harness-level engine toggle, not simulated machine state; both settings charge identical ledgers
    global _process_default
    _process_default = enabled


@contextmanager
def override_fast_path(enabled: Optional[bool]) -> Iterator[None]:
    """Force the fast path on/off inside the block (``None`` is a no-op)."""
    if enabled is None:
        yield
        return
    # simlint: disable=SIM002 harness-level engine toggle, not simulated machine state; both settings charge identical ledgers
    _override_stack.append(enabled)
    try:
        yield
    finally:
        _override_stack.pop()


# ----------------------------------------------------------------------
# execution backend layer (see repro.sim.executor for the registry)
# ----------------------------------------------------------------------
def current_backend() -> "ExecutionBackend":
    """The execution backend active at this call site.

    Same three layers as the fast path: an :func:`override_backend`
    context, then the :func:`set_backend` process default, then the
    ``REPRO_BACKEND`` environment variable (unset: derived from the
    fast-path default, i.e. ``inproc-columnar`` unless ``REPRO_FAST``
    turns the fast path off).
    """
    if _backend_stack:
        return _backend_stack[-1]
    if _backend_default is not None:
        return _backend_default
    from repro.sim.executor import backend_from_env

    return backend_from_env()


def set_backend(backend: Optional["ExecutionBackend"]) -> None:
    """Install a process-wide backend (``None`` restores the env default).

    The backend's fast-path setting is installed alongside it, so every
    ``fast_path_enabled()`` gate follows the backend.
    """
    # simlint: disable=SIM002 harness-level engine toggle, not simulated machine state; all backends charge identical ledgers
    global _backend_default
    _backend_default = backend
    set_fast_path(None if backend is None else backend.fast)


@contextmanager
def override_backend(backend: Optional["ExecutionBackend"]) -> Iterator[None]:
    """Force an execution backend inside the block (``None`` is a no-op).

    Pushes both the backend stack and the fast-path stack, so columnar
    gating and worker-pool gating stay consistent for the whole block.
    """
    if backend is None:
        yield
        return
    # simlint: disable=SIM002 harness-level engine toggle, not simulated machine state; all backends charge identical ledgers
    _backend_stack.append(backend)
    # simlint: disable=SIM002 harness-level engine toggle, not simulated machine state; all backends charge identical ledgers
    _override_stack.append(bool(backend.fast))
    try:
        yield
    finally:
        _override_stack.pop()
        _backend_stack.pop()


def parallel_kernels() -> Optional["KernelPoolLike"]:
    """The active backend's shared-memory kernel pool, or ``None``.

    ``None`` means "compute inline": the in-process backends always
    return it, and the parallel backend returns it too while its pool is
    unavailable (start-method restrictions, worker death) — the graceful
    single-process fallback.
    """
    return current_backend().kernel_pool()


def parallel_path_enabled() -> bool:
    """Is the shared-memory parallel backend active *and* serviceable?"""
    return current_backend().kernel_pool() is not None
