"""The fast-path switch.

Three layers, highest priority first:

1. an active :func:`override_fast_path` context (used by
   :class:`~repro.core.api.DynamicMST` instances built with an explicit
   ``fast=`` argument, and by the equivalence tests);
2. a process-wide value installed with :func:`set_fast_path`;
3. the ``REPRO_FAST`` environment variable (unset means **on**: the
   columnar path is the production path; the scalar path is the
   reference the equivalence suite compares against).

Both paths are always available — nothing is compiled out — so a single
process can run them back to back and compare ledgers byte for byte.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Optional

#: Below this many rows, array packing costs more than scalar loops save;
#: the columnar engine still runs (correctness is size-independent) but
#: oracle-side helpers use it as their vectorize/loop crossover.
VECTOR_MIN_ROWS = 64

_process_default: Optional[bool] = None
_override_stack: List[bool] = []


def _env_default() -> bool:
    value = os.environ.get("REPRO_FAST")
    if value is None:
        return True
    return value.strip() not in ("", "0", "false", "no")


def fast_path_enabled() -> bool:
    """Is the columnar fast path active at this call site?"""
    if _override_stack:
        return _override_stack[-1]
    if _process_default is not None:
        return _process_default
    return _env_default()


def set_fast_path(enabled: Optional[bool]) -> None:
    """Install a process-wide default (``None`` restores the env default)."""
    # simlint: disable=SIM002 harness-level engine toggle, not simulated machine state; both settings charge identical ledgers
    global _process_default
    _process_default = enabled


@contextmanager
def override_fast_path(enabled: Optional[bool]) -> Iterator[None]:
    """Force the fast path on/off inside the block (``None`` is a no-op)."""
    if enabled is None:
        yield
        return
    # simlint: disable=SIM002 harness-level engine toggle, not simulated machine state; both settings charge identical ledgers
    _override_stack.append(enabled)
    try:
        yield
    finally:
        _override_stack.pop()
