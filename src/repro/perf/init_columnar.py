"""Columnar Borůvka initialisation (Theorem 5.8 and Theorem 8.1, fast).

The reference initialisers — :func:`repro.core.init_build.distributed_init`
(k-machine, Theorem 5.8) and :func:`repro.mpc.init_mpc.mpc_init` (MPC,
Theorem 8.1) — spend almost all of their wall clock in one scalar loop:
every Borůvka phase rescans every machine's graph-edge dictionary, calls
``dsu.find`` twice per edge, and keeps a per-component best candidate in
a Python dict.  That scan is O(m·phases) tuple work and dominates the
O(n/k + log n)-round initialisation the benches measure.

This module replaces the *local computation* of that scan while keeping
the wire byte-identical:

* each machine's graph edges are packed **once per init** into parallel
  NumPy columns (:class:`GraphEdgeTable`);
* each phase resolves every vertex's component representative in a few
  vectorized pointer-jumping passes (:meth:`ArrayDSU.root_indices`)
  instead of n dict-walking ``find`` calls;
* the per-component minimum outgoing edge of a machine is one
  ``np.lexsort`` + group-first pass (:func:`min_outgoing_rows`) over the
  edge table, ordered by the same global key ``(w, u, v)`` the scalar
  candidate tuples compare by.

Everything that *touches the wire* is unchanged: the per-query
contribution tables handed to :func:`repro.comm.aggregate.batched_queries`
hold the same Python-scalar payloads for the same (query, machine) slots,
the answers are folded in the same sorted order, the union sequence is
identical (see :class:`ArrayDSU`), and the chosen edges are linked
through the same :func:`repro.core.scripts.run_structural_batch` chunks.
The ledger transcript therefore matches the reference engine's charge
for charge — ``tests/perf`` verifies digests, transcripts and machine
state under ``REPRO_STRICT=1``, and ``repro trace-diff`` localises any
regression.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports perf)
    from repro.core.state import MachineState
    from repro.graphs.graph import Edge
    from repro.sim.network import Network
    from repro.sim.partition import VertexPartition


class ArrayDSU:
    """Array-backed union-find replicating :class:`DisjointSet`'s choices.

    The reference initialisers put component *representatives* on the
    wire (they key the batched min-queries), so matching the reference
    DSU's answers is a wire requirement, not a convenience.  This class
    uses the same union-by-size rule with the same tie-break (the first
    argument's root wins on equal sizes) over the same element set, so
    every ``find`` returns the exact element the scalar
    :class:`repro.graphs.dsu.DisjointSet` would return at the same point
    of the protocol — path compression only shortens pointer chains,
    never changes roots.

    ``ids`` must be sorted and duplicate-free; elements are addressed by
    their position in it.  Scalar ``union``/``find`` use path-halving
    loops (O(#unions) per phase); :meth:`root_indices` resolves *every*
    element at once by vectorized pointer jumping (O(log depth) array
    passes — depth is logarithmic under union by size).
    """

    __slots__ = ("ids", "parent", "size")

    def __init__(self, ids: np.ndarray) -> None:
        self.ids = np.ascontiguousarray(ids, dtype=np.int64)
        n = self.ids.shape[0]
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def index_of(self, x: int) -> int:
        return int(np.searchsorted(self.ids, x))

    def _find(self, i: int) -> int:
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]  # path halving
            i = int(parent[i])
        return i

    def find(self, x: int) -> int:
        """Representative *element* of x's component (same as DisjointSet)."""
        return int(self.ids[self._find(self.index_of(x))])

    def union(self, x: int, y: int) -> bool:
        """Merge by size, first argument's root winning ties; True if merged."""
        rx, ry = self._find(self.index_of(x)), self._find(self.index_of(y))
        if rx == ry:
            return False
        if self.size[rx] < self.size[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        self.size[rx] += self.size[ry]
        return True

    def root_indices(self) -> np.ndarray:
        """Root *index* of every element, via vectorized pointer jumping."""
        p = self.parent.copy()
        while True:
            gp = p[p]
            if np.array_equal(gp, p):
                return p
            p = gp


class GraphEdgeTable:
    """One machine's graph edges as parallel columns (packed once per init).

    ``u``/``v`` are the stored (normalized, u < v) endpoint ids, ``w``
    the weights; ``ui``/``vi`` are the endpoints' dense indices into the
    init's sorted vertex-id array, precomputed so each phase's root
    lookup is a pure ``take``.  ``by_rank`` orders the rows by the
    global key ``(w, u, v)`` — the table never changes during an init,
    so the expensive three-key lexsort is paid once and every phase's
    min-reduction degrades to a single-key stable sort.  Row order is
    the dictionary's insertion order — the same order the scalar scan
    iterates — which matters only for tie-breaking, and ties are
    impossible: ``(w, u, v)`` repeats nowhere within one machine's edge
    dict.
    """

    __slots__ = ("u", "v", "w", "ui", "vi", "by_rank")

    def __init__(
        self, graph_edges: Mapping[Tuple[int, int], float], ids: np.ndarray
    ) -> None:
        n = len(graph_edges)
        self.u = np.fromiter((k[0] for k in graph_edges), np.int64, n)
        self.v = np.fromiter((k[1] for k in graph_edges), np.int64, n)
        self.w = np.fromiter(graph_edges.values(), np.float64, n)
        self.ui = np.searchsorted(ids, self.u)
        self.vi = np.searchsorted(ids, self.v)
        self.by_rank = np.lexsort((self.v, self.u, self.w))


def min_outgoing_rows(
    table: GraphEdgeTable, roots: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-component minimum outgoing edge of one machine, batched.

    ``roots[i]`` is the dense root index of vertex index ``i``.  Returns
    ``(components, rows)``: for every component (dense root index) with
    at least one outgoing edge in ``table``, the row of its minimum edge
    under the global key order ``(w, u, v)`` — exactly the candidate the
    scalar scan's ``cand < best[r]`` comparison keeps.  Components are
    returned in ascending dense-index order.

    Walks the rows in the table's precomputed ``by_rank`` order, so the
    per-component minimum is the *first* candidate seen per component:
    one stable single-key sort by component (which preserves the rank
    order within each component) plus a group-first mask.
    """
    by_rank = table.by_rank
    ru = roots[table.ui[by_rank]]
    rv = roots[table.vi[by_rank]]
    keep = ru != rv
    rows_r = by_rank[keep]
    if rows_r.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    # Each surviving edge is a candidate for both endpoint components;
    # interleave the two copies so array order stays ascending-rank.
    comp = np.empty(2 * rows_r.size, dtype=np.int64)
    comp[0::2] = ru[keep]
    comp[1::2] = rv[keep]
    rows = np.repeat(rows_r, 2)
    order = np.argsort(comp, kind="stable")
    comp_s = comp[order]
    rows_s = rows[order]
    first = np.ones(comp_s.size, dtype=bool)
    first[1:] = comp_s[1:] != comp_s[:-1]
    return comp_s[first], rows_s[first]


def distributed_init_columnar(
    net: "Network",
    vp: "VertexPartition",
    states: Sequence["MachineState"],
    vertices: Sequence[int],
    next_tour_id: int,
) -> Tuple[Set["Edge"], int]:
    """Columnar twin of :func:`repro.core.init_build.distributed_init`.

    Identical phase structure, query tables, answer folding, union
    sequence and Lemma 5.9 link chunks; only the per-machine candidate
    scan and the component-representative resolution are vectorized.
    """
    from repro.comm.aggregate import batched_queries
    from repro.graphs.graph import Edge
    from repro.perf.columnar import LinkBatchSession
    from repro.sim.message import WORDS_EDGE

    k = net.k
    recorder = net.ledger.recorder
    if recorder is not None:
        recorder.on_engine("init_build", "columnar")
    ids = np.asarray(sorted(vertices), dtype=np.int64)
    dsu = ArrayDSU(ids)
    tables = [GraphEdgeTable(st.graph_edges, ids) for st in states]
    session = LinkBatchSession(net, vp, states)
    msf: Set[Edge] = set()
    with net.ledger.phase("init"):
        while True:
            roots = dsu.root_indices()
            uroots = np.unique(roots)
            if uroots.size <= 1:
                break
            root_ids = ids[uroots]
            # Dense root index -> position among this phase's roots.
            slot = np.zeros(ids.shape[0], dtype=np.int64)
            slot[uroots] = np.arange(uroots.size)
            id_list = root_ids.tolist()
            per_query: Dict[int, List[Optional[Tuple]]] = {
                r: [None] * k for r in id_list
            }
            for mid, table in enumerate(tables):
                comps, rows = min_outgoing_rows(table, roots)
                if comps.size == 0:
                    continue
                us = table.u[rows].tolist()
                vs = table.v[rows].tolist()
                ws = table.w[rows].tolist()
                cs = slot[comps].tolist()
                for c, u, v, w in zip(cs, us, vs, ws):
                    per_query[id_list[c]][mid] = ((w, u, v), u, v)
            answers = batched_queries(net, per_query, min, words=WORDS_EDGE)
            chosen: List[Edge] = []
            for r in sorted(answers):
                ans = answers[r]
                if ans is None:
                    continue
                (wk, u, v) = ans[0], ans[1], ans[2]
                if dsu.union(u, v):
                    chosen.append(Edge(u, v, wk[0]))
            if not chosen:
                break
            msf.update(chosen)
            # Link the new forest edges k at a time (Lemma 5.9).
            chosen.sort(key=lambda e: e.key())
            for base in range(0, len(chosen), k):
                chunk = chosen[base : base + k]
                next_tour_id = session.run_links(
                    [(e.u, e.v, e.weight) for e in chunk], next_tour_id
                )
    session.close()
    return msf, next_tour_id


def mpc_init_columnar(
    net: "Network",
    vp: "VertexPartition",
    states: Sequence["MachineState"],
    vertices: Sequence[int],
    next_tour_id: int,
    batch_limit: Optional[int] = None,
) -> Tuple[Set["Edge"], int]:
    """Columnar twin of :func:`repro.mpc.init_mpc.mpc_init` (Theorem 8.1).

    Step 1 (the per-component min-outgoing-edge scan) is the vectorized
    table pass; steps 2–4 — forest orientation, the measured Cole–Vishkin
    colour exchanges, and the star merges — are O(#components) and reuse
    the reference code verbatim, fed identical answers.
    """
    from collections import Counter

    from repro.comm.aggregate import batched_queries
    from repro.graphs.graph import Edge
    from repro.mpc.cole_vishkin import cole_vishkin_3coloring
    from repro.mpc.init_mpc import _charge_cv_exchanges
    from repro.perf.columnar import LinkBatchSession
    from repro.sim.message import WORDS_EDGE

    k = net.k
    if batch_limit is None:
        batch_limit = getattr(net, "space", k)
    recorder = net.ledger.recorder
    if recorder is not None:
        recorder.on_engine("mpc_init", "columnar")
    ids = np.asarray(sorted(vertices), dtype=np.int64)
    dsu = ArrayDSU(ids)
    tables = [GraphEdgeTable(st.graph_edges, ids) for st in states]
    session = LinkBatchSession(net, vp, states)
    msf: Set[Edge] = set()
    with net.ledger.phase("mpc_init"):
        while True:
            roots_dense = dsu.root_indices()
            uroots = np.unique(roots_dense)
            if uroots.size <= 1:
                break
            slot = np.zeros(ids.shape[0], dtype=np.int64)
            slot[uroots] = np.arange(uroots.size)
            id_list = ids[uroots].tolist()
            roots = id_list  # ascending, like the scalar sorted({find(v)})
            # Step 1: per-component min outgoing edge (vectorized scan).
            per_query: Dict[int, List[Optional[Tuple]]] = {
                r: [None] * k for r in roots
            }
            for mid, table in enumerate(tables):
                comps, rows = min_outgoing_rows(table, roots_dense)
                if comps.size == 0:
                    continue
                us = table.u[rows].tolist()
                vs = table.v[rows].tolist()
                ws = table.w[rows].tolist()
                cs = slot[comps].tolist()
                for c, u, v, w in zip(cs, us, vs, ws):
                    per_query[id_list[c]][mid] = ((w, u, v), u, v)
            answers = batched_queries(net, per_query, min, words=WORDS_EDGE)

            # Step 2: orient the component forest F.
            chosen: Dict[int, Tuple[int, int, float, int]] = {}
            for r in roots:
                ans = answers.get(r)
                if ans is None:
                    continue
                (w, u, v), eu, ev = ans[0], ans[1], ans[2]
                other = dsu.find(ev) if dsu.find(eu) == r else dsu.find(eu)
                chosen[r] = (eu, ev, w, other)
            if not chosen:
                break
            # Mutual pairs (a ↔ b, a < b) make a the root of their tree;
            # the classic argument rules out longer pointer cycles.
            parent: Dict[int, Optional[int]] = {}
            for r, (_eu, _ev, _w, other) in chosen.items():
                mutual = other in chosen and chosen[other][3] == r
                parent[r] = None if (mutual and r < other) else other

            # Step 3: Cole–Vishkin 3-colouring, charged per iteration.
            colour, iters = cole_vishkin_3coloring(parent)
            _charge_cv_exchanges(net, vp, parent, iters)

            # Step 4: the most frequent colour merges through its edge.
            counts = Counter(colour[r] for r in chosen if parent[r] is not None)
            best_colour = min(
                (c for c in counts), key=lambda c: (-counts[c], c)
            )
            links: List[Tuple[int, int, float]] = []
            for r in sorted(chosen):
                if colour[r] != best_colour or parent[r] is None:
                    continue
                eu, ev, w, other = chosen[r]
                if dsu.union(r, other):
                    links.append((eu, ev, w))
                    msf.add(Edge.of(eu, ev, w))
            links.sort()
            for base in range(0, len(links), max(batch_limit, 1)):
                chunk = links[base : base + batch_limit]
                next_tour_id = session.run_links(chunk, next_tour_id)
    session.close()
    return msf, next_tour_id
