"""repro.perf.parallel — shared-memory worker-process execution backend.

The package has four layers, parent-side to worker-side:

* :mod:`~repro.perf.parallel.backend` — :class:`ParallelBackend`, the
  :class:`~repro.sim.executor.ExecutionBackend` registered as ``parallel``;
* :mod:`~repro.perf.parallel.pool` — :class:`KernelPool`, persistent
  workers with a barrier at every dispatch;
* :mod:`~repro.perf.parallel.worker` — the worker main loop (pure
  kernels only, no machine state, no wire);
* :mod:`~repro.perf.parallel.shm` — named, growable int64 shared slabs.

This module additionally exports the **kernel twins** — the worker-pool
counterparts of the Lemma 5.5–5.7 kernels in
:mod:`repro.euler.vectorized`.  Each twin carries the same validation as
its inline twin, dispatches to the active backend's pool, and computes
inline when no pool is available (or a worker dies mid-call), so
callers get the exact same arrays and exceptions either way.  The
dispatch gates live in :mod:`repro.euler.vectorized`; simlint's SIM009
checks the twin pairs stay in step.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.euler.labels import JoinSpec, SplitSpec
from repro.euler.vectorized import (
    _join_m1_impl,
    _join_m2_impl,
    _reroot_impl,
    _split_impl,
)
from repro.perf.parallel.backend import ParallelBackend
from repro.perf.parallel.pool import KernelPool, PoolUnavailable
from repro.perf.parallel.shm import SharedSlab

__all__ = [
    "ParallelBackend",
    "KernelPool",
    "PoolUnavailable",
    "SharedSlab",
    "reroot_labels_parallel",
    "split_labels_parallel",
    "join_m1_labels_parallel",
    "join_m2_labels_parallel",
]


def _pool() -> Optional[KernelPool]:
    from repro.perf.config import parallel_kernels

    return parallel_kernels()  # type: ignore[return-value]


def _note_fallback(kind: str, exc: PoolUnavailable) -> None:
    """Publish a ``pool_fallback`` telemetry event (bus-only, best-effort)."""
    from repro.perf.parallel.pool import telemetry_sink

    sink = telemetry_sink()
    if sink is not None:
        sink.emit("pool_fallback", kind=kind, reason=str(exc))


def reroot_labels_parallel(labels: np.ndarray, d: int, size: int) -> np.ndarray:
    """Worker-pool Lemma 5.5: (labels - d) mod size."""
    if size <= 0:
        raise ValueError("cannot reroot an edgeless tour")
    pool = _pool()
    if pool is None:
        return _reroot_impl(labels, d, size)
    try:
        return pool.run_elementwise("reroot", (int(d), int(size)), labels)
    except PoolUnavailable as exc:
        _note_fallback("reroot", exc)
        return _reroot_impl(labels, d, size)


def split_labels_parallel(
    labels: np.ndarray, spec: SplitSpec
) -> Tuple[np.ndarray, np.ndarray]:
    """Worker-pool Lemma 5.6; validation stays in the parent."""
    labels = np.asarray(labels, dtype=np.int64)
    if np.any((labels == spec.e_min) | (labels == spec.e_max)):
        raise ValueError("the removed edge's own labels have no image")
    pool = _pool()
    if pool is None:
        return _split_impl(labels, spec)
    wire_spec = (
        int(spec.e_min),
        int(spec.e_max),
        int(spec.size),
        int(spec.old_tour),
        int(spec.inside_tour),
    )
    try:
        return pool.run_split(wire_spec, labels)
    except PoolUnavailable as exc:
        _note_fallback("split", exc)
        return _split_impl(labels, spec)


def join_m1_labels_parallel(labels: np.ndarray, spec: JoinSpec) -> np.ndarray:
    """Worker-pool Lemma 5.7, M1 side."""
    pool = _pool()
    if pool is None:
        return _join_m1_impl(np.asarray(labels, dtype=np.int64), spec)
    wire_spec = (
        int(spec.a),
        int(spec.b),
        int(spec.size1),
        int(spec.size2),
        int(spec.tour1),
        int(spec.tour2),
    )
    try:
        return pool.run_elementwise("join_m1", wire_spec, labels)
    except PoolUnavailable as exc:
        _note_fallback("join_m1", exc)
        return _join_m1_impl(np.asarray(labels, dtype=np.int64), spec)


def join_m2_labels_parallel(labels: np.ndarray, spec: JoinSpec) -> np.ndarray:
    """Worker-pool Lemma 5.7, M2 side."""
    if spec.size2 <= 0:
        raise ValueError("singleton M2 has no labels")
    pool = _pool()
    if pool is None:
        return _join_m2_impl(np.asarray(labels, dtype=np.int64), spec)
    wire_spec = (
        int(spec.a),
        int(spec.b),
        int(spec.size1),
        int(spec.size2),
        int(spec.tour1),
        int(spec.tour2),
    )
    try:
        return pool.run_elementwise("join_m2", wire_spec, labels)
    except PoolUnavailable as exc:
        _note_fallback("join_m2", exc)
        return _join_m2_impl(np.asarray(labels, dtype=np.int64), spec)
