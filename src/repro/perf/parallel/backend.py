"""The ``parallel`` execution backend: columnar engine + worker pool.

:class:`ParallelBackend` is the columnar engine with the pure label
kernels and message-plane load gauges offloaded to a
:class:`~repro.perf.parallel.pool.KernelPool` of worker processes over
shared memory.  The pool starts lazily — the first time a gated kernel
sees an array of at least ``PARALLEL_MIN_ROWS`` rows — so selecting the
backend costs nothing until a workload actually crosses the offload
threshold.

Degradation is graceful and silent at the ledger level: if the pool
cannot start (restricted start methods, sandboxed ``/dev/shm``) or a
worker dies, the backend marks itself failed and every kernel computes
inline from then on.  The run completes single-process with the exact
same ledger, because the offloaded kernels are pure functions either
way.

Environment knobs:

* ``REPRO_WORKERS`` — pool size (default ``min(4, cpu_count)``);
* ``REPRO_SPAWN`` — set to use the ``spawn`` start method instead of
  ``fork`` (or name a method explicitly: ``spawn``/``fork``/``forkserver``);
* ``REPRO_PARALLEL_MIN_ROWS`` — the offload threshold (see
  :mod:`repro.perf.config`).
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.perf.parallel.pool import KernelPool, PoolUnavailable
from repro.sim.executor import ExecutionBackend


def default_workers() -> int:
    """Pool size from ``REPRO_WORKERS``, else ``min(4, cpu_count)``."""
    env = os.environ.get("REPRO_WORKERS")
    if env is not None and env.strip():
        return max(1, int(env))
    return max(1, min(4, os.cpu_count() or 1))


def start_method_from_env() -> Optional[str]:
    """Start method named by ``REPRO_SPAWN`` (``None`` = pool default, fork)."""
    value = os.environ.get("REPRO_SPAWN")
    if value is None:
        return None
    value = value.strip().lower()
    if value in ("", "0", "false", "no"):
        return None
    if value in ("1", "true", "yes", "spawn"):
        return "spawn"
    return value  # explicit method name, e.g. "forkserver"


class ParallelBackend(ExecutionBackend):
    """Columnar engine with shared-memory worker-process kernels."""

    name = "parallel"
    fast = True

    def __init__(
        self, workers: Optional[int] = None, start_method: Optional[str] = None
    ) -> None:
        self._requested_workers = default_workers() if workers is None else max(1, workers)
        self._start_method = start_method_from_env() if start_method is None else start_method
        self._pool: Optional[KernelPool] = None
        self._failed = False

    @property
    def workers(self) -> int:
        if self._pool is not None and not self._pool.dead:
            return self._pool.workers
        return 0 if self._failed else self._requested_workers

    def kernel_pool(self) -> Optional[KernelPool]:
        """The live pool, starting it on first use; ``None`` after failure."""
        if self._failed:
            return None
        if self._pool is not None and self._pool.dead:
            self._pool.close()
            self._pool = None
            self._failed = True
            return None
        if self._pool is None:
            try:
                self._pool = KernelPool(self._requested_workers, self._start_method)
            except PoolUnavailable:
                self._failed = True
                return None
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._failed = False

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        pool = self._pool
        info["start_method"] = (
            pool.start_method if pool is not None else (self._start_method or "fork")
        )
        info["pool_failed"] = self._failed
        from repro.perf import config

        info["parallel_min_rows"] = config.PARALLEL_MIN_ROWS
        return info
