"""The shared-memory kernel pool: persistent workers, barrier dispatch.

:class:`KernelPool` implements the :class:`~repro.sim.executor.KernelPoolLike`
protocol.  Workers are started once (fork by default, spawn via
``REPRO_SPAWN``), handshake with a ``("ready",)`` message, and then serve
kernel tasks over private pipes.  Every ``run_*`` call is one superstep
of the pool:

1. the parent copies the input columns into parent-owned shared slabs;
2. each worker gets one contiguous shard ``[lo, hi)`` of the rows;
3. the parent blocks until **every** worker replied — the barrier —
   then reads the output slab back.

Because the kernels are pure elementwise functions (or shard-local
int64 bincounts summed in fixed worker order), the result is exactly
the array the inline path computes, independent of scheduling.  Any
worker failure raises :class:`PoolUnavailable`; callers fall back to the
inline kernel, so a dying pool degrades to single-process execution
instead of corrupting a run.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.perf.parallel.shm import SharedSlab
from repro.perf.parallel.worker import worker_main

#: The process-wide pool telemetry sink (a
#: :class:`~repro.sim.metrics.TraceSink`, in practice a
#: :class:`repro.obs.sink.BusSink`).  ``None`` — the default — keeps the
#: dispatch path cost at one module-global read per call; pool events
#: (``pool_start``/``pool_dispatch``/``pool_fallback``/``pool_stop``)
#: flow to the telemetry bus only and never into a trace file or a
#: ledger digest.
_telemetry_sink: Optional[Any] = None


def set_telemetry_sink(sink: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with ``None``) the pool telemetry sink.

    Returns the previous sink so callers can restore it — the obs layer
    scopes installation to one watched run.
    """
    # simlint: disable=SIM002 harness-level observability hook, not simulated machine state; ledgers are unaffected
    global _telemetry_sink
    previous = _telemetry_sink
    _telemetry_sink = sink
    return previous


def telemetry_sink() -> Optional[Any]:
    """The currently installed pool telemetry sink (``None`` = detached)."""
    return _telemetry_sink


class PoolUnavailable(RuntimeError):
    """The worker pool cannot serve kernels (startup failed or a worker died)."""


class KernelPool:
    """A fixed set of worker processes serving shared-memory kernels."""

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        handshake_timeout: float = 10.0,
    ) -> None:
        self._slabs: Dict[str, SharedSlab] = {}
        self._procs: List[mp.process.BaseProcess] = []
        self._conns: List = []
        self.dead = False
        #: Dispatches served over the pool's lifetime (telemetry only).
        self.dispatches = 0
        #: The sink ``pool_start`` was announced to (telemetry only).
        self._announced_sink: Optional[Any] = None
        methods = mp.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else mp.get_start_method()
        if start_method not in methods:
            raise PoolUnavailable(
                f"start method {start_method!r} unavailable (have: {methods})"
            )
        self.start_method = start_method
        ctx = mp.get_context(start_method)
        # Start the resource tracker *before* the workers exist, so every
        # worker inherits it (fork shares it only if it is already
        # running; spawn/forkserver always pass the fd).  With one shared
        # tracker, a worker's attach-registration is a set no-op and the
        # parent's unlink clears each name exactly once — no worker-exit
        # "leaked shared_memory" sweeps that would unlink live blocks.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        try:
            for _ in range(max(1, workers)):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(target=worker_main, args=(child_conn,), daemon=True)
                proc.start()
                child_conn.close()
                if not parent_conn.poll(handshake_timeout):
                    raise PoolUnavailable("worker did not report ready in time")
                if parent_conn.recv() != ("ready",):
                    raise PoolUnavailable("worker sent a malformed ready handshake")
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except PoolUnavailable:
            self.close()
            raise
        except Exception as exc:  # start-method restrictions, EOF mid-handshake, ...
            self.close()
            raise PoolUnavailable(f"could not start worker pool: {exc}") from exc

    @property
    def workers(self) -> int:
        return len(self._procs)

    # ------------------------------------------------------------------
    # dispatch plumbing
    # ------------------------------------------------------------------
    def _slab(self, role: str) -> SharedSlab:
        slab = self._slabs.get(role)
        if slab is None:
            slab = self._slabs[role] = SharedSlab(role)
        return slab

    def _bounds(self, n: int) -> List[int]:
        w = self.workers
        return [(i * n) // w for i in range(w + 1)]

    def _send(self, conn, task: Tuple) -> None:
        try:
            conn.send(task)
        except (BrokenPipeError, OSError) as exc:
            self.dead = True
            raise PoolUnavailable("worker pipe broke mid-dispatch") from exc

    def _barrier(self, sent: List, waits: Optional[List[int]] = None) -> None:
        """Collect one reply per dispatched worker; raise after all answered.

        ``waits`` (telemetry only) receives one per-worker barrier-wait
        duration in nanoseconds, in dispatch order.
        """
        errors: List[str] = []
        for conn in sent:
            if waits is not None:
                # simlint: disable=SIM003 pool telemetry timing; bus-only observability, never feeds round accounting or digests
                t0 = time.perf_counter_ns()
            try:
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                self.dead = True
                raise PoolUnavailable("worker died mid-task") from exc
            if waits is not None:
                # simlint: disable=SIM003 pool telemetry timing; bus-only observability, never feeds round accounting or digests
                waits.append(time.perf_counter_ns() - t0)
            if reply[0] == "err":
                errors.append(reply[1])
        if errors:
            self.dead = True
            raise PoolUnavailable("kernel failed in worker:\n" + "\n".join(errors))

    # ------------------------------------------------------------------
    # telemetry (bus-only; a detached sink costs one global read per call)
    # ------------------------------------------------------------------
    def slab_bytes(self) -> int:
        """Shared-memory bytes currently mapped across every slab."""
        return sum(slab.rows * 8 for slab in self._slabs.values())

    def _note_dispatch(
        self, sink: Any, kind: str, rows: int,
        waits: List[int], started_ns: int,
    ) -> None:
        """Emit ``pool_dispatch`` (and a one-time ``pool_start``)."""
        self.dispatches += 1
        if self._announced_sink is not sink:
            self._announced_sink = sink
            sink.emit(
                "pool_start",
                workers=self.workers,
                start_method=self.start_method,
            )
        # simlint: disable=SIM003 pool telemetry timing; bus-only observability, never feeds round accounting or digests
        work_ns = time.perf_counter_ns() - started_ns
        sink.emit(
            "pool_dispatch",
            kind=kind,
            rows=int(rows),
            workers=len(waits),
            work_ns=work_ns,
            wait_ns=waits,
            slab_bytes=self.slab_bytes(),
        )

    def _load_input(self, role: str, data: np.ndarray) -> None:
        slab = self._slab(role)
        slab.ensure(data.size)
        slab.view(data.size)[:] = data

    def _blocks(self, roles: List[str]) -> Dict[str, Tuple[str, int]]:
        return {role: (self._slabs[role].name, self._slabs[role].rows) for role in roles}

    # ------------------------------------------------------------------
    # KernelPoolLike API
    # ------------------------------------------------------------------
    def run_elementwise(
        self, kind: str, spec: Tuple[int, ...], labels: np.ndarray
    ) -> np.ndarray:
        if self.dead:
            raise PoolUnavailable("pool is dead")
        sink = _telemetry_sink
        # simlint: disable=SIM003 pool telemetry timing; bus-only observability, never feeds round accounting or digests
        t0 = time.perf_counter_ns() if sink is not None else 0
        waits: Optional[List[int]] = [] if sink is not None else None
        labels = np.ascontiguousarray(labels, dtype=np.int64)
        n = labels.size
        self._load_input("in0", labels)
        self._slab("out0").ensure(n)
        blocks = self._blocks(["in0", "out0"])
        bounds = self._bounds(n)
        sent = []
        for w, conn in enumerate(self._conns):
            lo, hi = bounds[w], bounds[w + 1]
            if lo == hi:
                continue
            self._send(conn, ("task", kind, spec, blocks, lo, hi))
            sent.append(conn)
        self._barrier(sent, waits)
        out = self._slabs["out0"].view(n).copy()
        if sink is not None and waits is not None:
            self._note_dispatch(sink, kind, n, waits, t0)
        return out

    def run_split(
        self, spec: Tuple[int, ...], labels: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.dead:
            raise PoolUnavailable("pool is dead")
        sink = _telemetry_sink
        # simlint: disable=SIM003 pool telemetry timing; bus-only observability, never feeds round accounting or digests
        t0 = time.perf_counter_ns() if sink is not None else 0
        waits: Optional[List[int]] = [] if sink is not None else None
        labels = np.ascontiguousarray(labels, dtype=np.int64)
        n = labels.size
        self._load_input("in0", labels)
        self._slab("out0").ensure(n)
        self._slab("out1").ensure(n)
        blocks = self._blocks(["in0", "out0", "out1"])
        bounds = self._bounds(n)
        sent = []
        for w, conn in enumerate(self._conns):
            lo, hi = bounds[w], bounds[w + 1]
            if lo == hi:
                continue
            self._send(conn, ("task", "split", spec, blocks, lo, hi))
            sent.append(conn)
        self._barrier(sent, waits)
        out = self._slabs["out0"].view(n).copy(), self._slabs["out1"].view(n).copy()
        if sink is not None and waits is not None:
            self._note_dispatch(sink, "split", n, waits, t0)
        return out

    def plane_loads(
        self, src: np.ndarray, dst: np.ndarray, words: np.ndarray, k: int
    ) -> np.ndarray:
        if self.dead:
            raise PoolUnavailable("pool is dead")
        sink = _telemetry_sink
        # simlint: disable=SIM003 pool telemetry timing; bus-only observability, never feeds round accounting or digests
        t0 = time.perf_counter_ns() if sink is not None else 0
        waits: Optional[List[int]] = [] if sink is not None else None
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        words = np.ascontiguousarray(words, dtype=np.int64)
        n = src.size
        w_total = self.workers
        self._load_input("in0", src)
        self._load_input("in1", dst)
        self._load_input("in2", words)
        out = self._slab("out0")
        out.ensure(w_total * k * k)
        out.view(w_total * k * k)[:] = 0
        blocks = self._blocks(["in0", "in1", "in2", "out0"])
        bounds = self._bounds(n)
        sent = []
        for w, conn in enumerate(self._conns):
            lo, hi = bounds[w], bounds[w + 1]
            if lo == hi:
                continue
            self._send(conn, ("task", "plane_loads", (k, w), blocks, lo, hi))
            sent.append(conn)
        self._barrier(sent, waits)
        per_worker = self._slabs["out0"].view(w_total * k * k).reshape(w_total, k, k)
        # Fixed worker order; int64 addition is exact, so the order is a
        # convention, not a correctness requirement.
        out = per_worker.sum(axis=0, dtype=np.int64).copy()
        if sink is not None and waits is not None:
            self._note_dispatch(sink, "plane_loads", n, waits, t0)
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers and release every shared-memory block (idempotent)."""
        sink = self._announced_sink
        if sink is not None:
            self._announced_sink = None
            sink.emit(
                "pool_stop", workers=self.workers, dispatches=self.dispatches
            )
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
        self._conns.clear()
        self._procs.clear()
        for slab in self._slabs.values():
            slab.close()
        self._slabs.clear()
        self.dead = True
