"""Shared-memory slabs: named, growable int64 column storage.

Every array the worker pool touches lives in a :class:`SharedSlab` — a
``multiprocessing.shared_memory`` block owned (created and unlinked) by
the parent process and attached read/write by workers on demand.  Slabs
grow geometrically and keep a stable *role* (``in0``, ``out1``, …); a
grown slab gets a fresh kernel name, and workers re-attach when a task
names a block they have not mapped yet.

Everything the kernels move is ``int64`` (Euler labels, tour ids,
machine ids, word counts), so slabs are typed once and sized in rows.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

_ITEM = 8  # np.int64 itemsize


class SharedSlab:
    """A growable, parent-owned shared-memory block of int64 rows."""

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self._seq = 0
        self._shm: Optional[shared_memory.SharedMemory] = None
        self.rows = 0

    @property
    def name(self) -> str:
        assert self._shm is not None, "ensure() before name"
        return self._shm.name

    def ensure(self, rows: int) -> None:
        """Grow to hold at least ``rows`` int64 values (never shrinks)."""
        if self._shm is not None and rows <= self.rows:
            return
        new_rows = max(rows, 2 * self.rows, 1024)
        old = self._shm
        while True:
            self._seq += 1
            name = f"repro-{os.getpid()}-{self.tag}-{self._seq}"
            try:
                self._shm = shared_memory.SharedMemory(
                    name=name, create=True, size=new_rows * _ITEM
                )
                break
            except FileExistsError:  # stale block from a dead run
                continue
        self.rows = new_rows
        if old is not None:
            old.close()
            try:
                old.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def view(self, rows: int) -> np.ndarray:
        """An int64 ndarray over the first ``rows`` rows."""
        assert self._shm is not None and rows <= self.rows
        return np.ndarray((rows,), dtype=np.int64, buffer=self._shm.buf)

    def close(self) -> None:
        """Release and unlink the block (idempotent; parent side only)."""
        if self._shm is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        self._shm = None
        self.rows = 0


class AttachCache:
    """Worker-side cache of attached blocks, keyed by role.

    A task names ``(role, name, rows)`` triples; the cache re-attaches
    only when the name under a role changed (i.e. the parent grew that
    slab) and detaches the stale mapping.

    Attaching registers the name with the resource tracker even for
    non-owners (``track=False`` exists only from 3.13), but pool workers
    share the parent's tracker process, whose cache is a set — the
    duplicate registration is a no-op, and the parent's unlink clears it
    exactly once.  No unregister workaround is needed (and one would be
    wrong: it would drop the parent's own registration).
    """

    def __init__(self) -> None:
        self._by_role: Dict[str, Tuple[str, shared_memory.SharedMemory]] = {}

    def view(self, role: str, name: str, rows: int) -> np.ndarray:
        cached = self._by_role.get(role)
        if cached is None or cached[0] != name:
            if cached is not None:
                cached[1].close()
            shm = shared_memory.SharedMemory(name=name)
            self._by_role[role] = (name, shm)
        else:
            shm = cached[1]
        return np.ndarray((rows,), dtype=np.int64, buffer=shm.buf)

    def close(self) -> None:
        for _name, shm in self._by_role.values():
            shm.close()
        self._by_role.clear()
