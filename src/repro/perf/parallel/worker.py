"""Worker process main loop for the ``parallel`` execution backend.

A worker is a pure function server: it attaches the shared-memory blocks
a task names, applies one of the Euler label kernels (or the
message-plane load gauge) to its half-open shard ``[lo, hi)``, writes
the result into the output block, and replies.  Workers never see
machine state, never touch the wire, and never make a decision that
could reach the ledger — every kernel here is an exact elementwise (or
shard-local bincount) function of ``int64`` inputs, so the result is
bit-identical no matter how the OS schedules the pool.

The kernels are imported from :mod:`repro.euler.vectorized` (the private
``_*_impl`` bodies, below the dispatch gates) so parent and workers share
one source of truth for the math of Lemmas 5.5–5.7.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, Tuple

import numpy as np

from repro.euler.labels import JoinSpec, SplitSpec
from repro.euler.vectorized import (
    _join_m1_impl,
    _join_m2_impl,
    _reroot_impl,
    _split_impl,
)
from repro.perf.parallel.shm import AttachCache


def _kern_reroot(labels: np.ndarray, spec: Tuple[int, ...]) -> np.ndarray:
    d, size = spec
    return _reroot_impl(labels, d, size)


def _kern_join_m1(labels: np.ndarray, spec: Tuple[int, ...]) -> np.ndarray:
    return _join_m1_impl(labels, JoinSpec(*spec))


def _kern_join_m2(labels: np.ndarray, spec: Tuple[int, ...]) -> np.ndarray:
    return _join_m2_impl(labels, JoinSpec(*spec))


_ELEMENTWISE = {
    "reroot": _kern_reroot,
    "join_m1": _kern_join_m1,
    "join_m2": _kern_join_m2,
}


def _run_task(
    cache: AttachCache,
    kind: str,
    spec: Tuple[int, ...],
    blocks: Dict[str, Tuple[str, int]],
    lo: int,
    hi: int,
) -> None:
    views = {role: cache.view(role, name, rows) for role, (name, rows) in blocks.items()}
    if kind in _ELEMENTWISE:
        views["out0"][lo:hi] = _ELEMENTWISE[kind](views["in0"][lo:hi], spec)
    elif kind == "split":
        tours, new_labels = _split_impl(views["in0"][lo:hi], SplitSpec(*spec))
        views["out0"][lo:hi] = tours
        views["out1"][lo:hi] = new_labels
    elif kind == "plane_loads":
        k, widx = spec
        loads = np.zeros(k * k, dtype=np.int64)
        # np.add.at (not bincount) so word counts stay exact int64.
        np.add.at(loads, views["in0"][lo:hi] * k + views["in1"][lo:hi], views["in2"][lo:hi])
        views["out0"][widx * k * k : (widx + 1) * k * k] = loads
    else:
        raise ValueError(f"unknown kernel kind {kind!r}")


def worker_main(conn: Any) -> None:
    """Serve kernel tasks on ``conn`` until a ``("stop",)`` message.

    Protocol: send ``("ready",)`` once, then for each
    ``("task", kind, spec, blocks, lo, hi)`` reply ``("ok",)`` or
    ``("err", traceback_text)``.  The reply is the pool's barrier.
    """
    cache = AttachCache()
    try:
        conn.send(("ready",))
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _tag, kind, spec, blocks, lo, hi = msg
            try:
                _run_task(cache, kind, spec, blocks, lo, hi)
                conn.send(("ok",))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        cache.close()
        conn.close()
