"""Batched M′ membership tests for the §6.1 addition protocol.

Steps 3 and 5 of :func:`repro.core.batch_addition.batch_add` test every
local MST edge of an affected tour for membership in the Steiner tree M′
(:func:`repro.core.decomposition.in_m_prime` — two bisects per edge).
The reference path runs the test edge by edge; these helpers run it for
a whole tour at once with two ``np.searchsorted`` calls and hand back
only the members, so the per-edge Python work that remains (path
matching, degree counting) touches the small Steiner slice instead of
the whole machine.  The membership predicate is evaluated on the exact
same ``(e_min, e_max, sorted entries)`` inputs as the scalar function,
so the surviving edge sets are identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.state import MachineState
    from repro.euler.tour import ETEdge


def m_prime_members(
    state: "MachineState", tid: int, entries: Sequence[int]
) -> List[Tuple["ETEdge", Tuple[int, int]]]:
    """This tour's M′-member MST edges as ``(ete, (e_min, e_max))`` rows.

    ``entries`` must be the tour's sorted A-entry values (the protocols
    keep them sorted), matching ``in_m_prime(..., assume_sorted=True)``.
    """
    keys = sorted(state.mst_keys_in_tour(tid))
    if not keys or len(entries) < 2:
        return []
    mst = state.mst
    etes = [mst[k] for k in keys]
    t1 = np.array([e.t_uv for e in etes], dtype=np.int64)
    t2 = np.array([e.t_vu for e in etes], dtype=np.int64)
    lo = np.minimum(t1, t2)
    hi = np.maximum(t1, t2)
    ent = np.asarray(entries, dtype=np.int64)
    cnt = np.searchsorted(ent, hi, side="right") - np.searchsorted(ent, lo, side="left")
    member = (cnt >= 1) & (cnt <= len(entries) - 1)
    lo_l = lo.tolist()
    hi_l = hi.tolist()
    return [(etes[i], (lo_l[i], hi_l[i])) for i in np.flatnonzero(member).tolist()]


def steiner_degrees(
    state: "MachineState", eligible: Mapping[int, Sequence[int]]
) -> Dict[int, int]:
    """Per-vertex count of incident M′ edges, over all eligible tours.

    Counts both endpoints of every member edge; the caller filters to
    the vertices it cares about (B-anchor candidates are owned, non-A
    vertices) — extra keys are harmless.
    """
    deg: Dict[int, int] = {}
    for tid, entries in eligible.items():
        for ete, _labels in m_prime_members(state, tid, entries):
            deg[ete.u] = deg.get(ete.u, 0) + 1
            deg[ete.v] = deg.get(ete.v, 0) + 1
    return deg
