"""The always-on MST update daemon (ROADMAP item 1).

``repro.serve`` wraps the batch-dynamic core in a long-lived asyncio
service: clients connect over TCP (or an in-process duplex transport),
stream edge insert/delete commands as line-delimited JSON, subscribe to
MSF-change events, and answer point queries ("in the forest?",
"component of v?", "forest weight?") from replicated post-batch state
without spending a single communication round.

The architecture follows a strict parse → validate → reduce → publish
loop so the deterministic, ledger-charged core stays single-threaded
and pure while the edges of the system go concurrent:

* :mod:`repro.serve.parser` / :mod:`repro.serve.types` — framing and
  typed command/response objects; hostile bytes become typed error
  responses, never exceptions in the server;
* :mod:`repro.serve.reducer` — the **only** code allowed to touch the
  ledger-charged :class:`~repro.core.api.DynamicMST`.  It owns the
  PR 9 admission coalescer + batch policy and stamps every admitted
  command with a logical tick such that an offline
  :class:`~repro.stream.ingest.StreamIngestor` replay of the admitted
  sequence reproduces the live ledger byte for byte;
* :mod:`repro.serve.server` — the asyncio front end: per-client rate
  limits, bounded queues with backpressure, slow-consumer eviction and
  the MSF-change subscription channel;
* :mod:`repro.serve.loadgen` — a load-generator client that simulates
  thousands of concurrent update streams.

    >>> import asyncio
    >>> from repro.serve import MSTDaemon, ServeConfig
    >>> async def demo():
    ...     daemon = MSTDaemon(ServeConfig(k=4, n=16, m=24))
    ...     await daemon.start()
    ...     client = daemon.connect_memory()
    ...     reply = await client.request("add", u=0, v=5, w=0.25)
    ...     await daemon.shutdown()
    ...     return reply["ok"]
    >>> asyncio.run(demo())
    True
"""

from repro.serve.config import ServeConfig
from repro.serve.parser import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_command,
    encode_error,
    encode_event,
    encode_result,
)
from repro.serve.reducer import (
    AdmissionError,
    MsfChange,
    ServeReducer,
    offline_replay,
    verify_determinism,
)
from repro.serve.server import MSTDaemon, TokenBucket
from repro.serve.types import (
    ERROR_CODES,
    PROTOCOL_SCHEMA,
    Command,
    ErrorResponse,
    EventMessage,
    Hello,
    Mutate,
    OkResponse,
    Ping,
    Query,
    Subscribe,
    Unsubscribe,
)
from repro.serve.view import ForestView

__all__ = [
    "ServeConfig",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode_command",
    "encode_error",
    "encode_event",
    "encode_result",
    "AdmissionError",
    "MsfChange",
    "ServeReducer",
    "offline_replay",
    "verify_determinism",
    "MSTDaemon",
    "TokenBucket",
    "ERROR_CODES",
    "PROTOCOL_SCHEMA",
    "Command",
    "ErrorResponse",
    "EventMessage",
    "Hello",
    "Mutate",
    "OkResponse",
    "Ping",
    "Query",
    "Subscribe",
    "Unsubscribe",
    "ForestView",
]
