"""A small protocol client: request/response plus an event inbox.

:class:`ServeClient` speaks ``repro-serve/1`` over any duplex transport
(:class:`~repro.serve.transport.MemoryTransport` in-process,
:class:`~repro.serve.transport.StreamTransport` over TCP).  Requests are
id-stamped; :meth:`request` reads until the matching response arrives,
parking any server-pushed events in :attr:`events` along the way — which
is exactly how a pipelining client is supposed to consume the wire.

The load generator and the whole serve test harness drive the daemon
through this class.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional

from repro.serve.parser import FrameSplitter, MAX_FRAME_BYTES


class ServeClient:
    """One connection's client half."""

    def __init__(self, transport, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.transport = transport
        self.events: List[Dict[str, object]] = []
        self._splitter = FrameSplitter(max_frame)
        self._inbox: List[Dict[str, object]] = []
        self._backlog: List[Dict[str, object]] = []  # decoded, unexamined
        self._next_id = 0
        self._eof = False

    # -- raw byte access (the fuzzer goes through these) --------------
    async def send_bytes(self, raw: bytes) -> None:
        self.transport.write(raw)
        await self.transport.drain()

    async def send(self, op: str, **fields: object) -> int:
        """Send one command; returns the id to await with :meth:`response`."""
        cid = self._next_id
        self._next_id += 1
        obj = {"op": op, "id": cid}
        obj.update(fields)
        await self.send_bytes(json.dumps(obj).encode() + b"\n")
        return cid

    # -- message pump -------------------------------------------------
    async def read_message(self) -> Optional[Dict[str, object]]:
        """Next decoded message (buffered or from the wire); None at EOF."""
        if self._inbox:
            return self._inbox.pop(0)
        return await self._read_wire()

    async def _read_wire(self) -> Optional[Dict[str, object]]:
        """Next decoded message from the transport only — never the
        inbox, so callers parking messages there cannot loop on them."""
        while True:
            if self._backlog:
                return self._backlog.pop(0)
            if self._eof:
                return None
            chunk = await self.transport.read(4096)
            if not chunk:
                self._eof = True
                return None
            for frame in self._splitter.feed(chunk):
                if isinstance(frame, bytes):
                    try:
                        msg = json.loads(frame)
                    except ValueError:
                        continue
                    if isinstance(msg, dict):
                        self._backlog.append(msg)

    async def response(self, cid: int) -> Optional[Dict[str, object]]:
        """Read until the response carrying ``cid``; file events aside."""
        kept: List[Dict[str, object]] = []
        found: Optional[Dict[str, object]] = None
        for msg in self._inbox:
            if "event" in msg:
                self.events.append(msg)
            elif found is None and msg.get("id") == cid:
                found = msg
            else:
                kept.append(msg)
        self._inbox = kept
        if found is not None:
            return found
        while True:
            msg = await self._read_wire()
            if msg is None:
                return None
            if "event" in msg:
                self.events.append(msg)
                continue
            if msg.get("id") == cid:
                return msg
            self._inbox.append(msg)

    async def request(self, op: str, **fields: object) -> Optional[Dict[str, object]]:
        """Send one command and await its response."""
        cid = await self.send(op, **fields)
        return await self.response(cid)

    async def drain_events(self) -> List[Dict[str, object]]:
        """Pull every already-delivered message, keeping only events."""
        while True:
            got = False
            for msg in list(self._inbox):
                if "event" in msg:
                    self.events.append(msg)
                    self._inbox.remove(msg)
                    got = True
            task = asyncio.ensure_future(self.read_message())
            done, _ = await asyncio.wait({task}, timeout=0.01)
            if not done:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                if not got:
                    return list(self.events)
                continue
            msg = task.result()
            if msg is None:
                return list(self.events)
            if "event" in msg:
                self.events.append(msg)
            else:
                self._inbox.append(msg)

    def close(self) -> None:
        self.transport.close()


async def connect_tcp(host: str, port: int) -> ServeClient:
    """Open a TCP connection to a running daemon."""
    from repro.serve.transport import StreamTransport

    reader, writer = await asyncio.open_connection(host, port)
    return ServeClient(StreamTransport(reader, writer))
