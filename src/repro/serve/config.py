"""Daemon configuration: one dataclass, fully deterministic core recipe.

A :class:`ServeConfig` pins everything needed to rebuild the daemon's
core *exactly* — graph shape ``(n, m, seed)``, cluster size ``k``, init
mode, engine, execution backend, batch policy — which is what makes the
determinism gate possible: :func:`repro.serve.reducer.offline_replay`
constructs a second core from the same config and replays the admitted
command log through a fresh :class:`~repro.stream.ingest.StreamIngestor`.
The remaining fields (queues, rate limits, host/port) shape the
concurrent edge of the system and never influence what the core
computes, only *which* commands are admitted.

``REPRO_BACKEND=parallel`` flows through here: ``backend=None`` defers
to the ambient environment exactly like
:meth:`repro.core.api.DynamicMST.build`, and :meth:`resolved_backend`
reports which backend the daemon actually serves from.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, replace
from typing import Dict, Optional

from repro.graphs.generators import random_weighted_graph
from repro.graphs.graph import WeightedGraph


@dataclass(frozen=True)
class ServeConfig:
    """Everything the daemon needs; the core recipe is replay-exact."""

    # --- deterministic core recipe (the replay contract) ---
    k: int = 8
    n: int = 64
    m: int = 128
    seed: int = 0
    engine: str = "sample_gather"
    init: str = "free"
    backend: Optional[str] = None      # None → ambient REPRO_BACKEND
    policy: str = "adaptive"
    coalesce: bool = True
    max_batch: Optional[int] = None    # None → batch capacity (Θ(k))

    # --- concurrent edge (never visible to the core) ---
    host: str = "127.0.0.1"
    port: int = 7787
    max_frame_bytes: int = 64 * 1024
    admission_queue: int = 1024        # bounded; full queue = backpressure
    event_queue: int = 256             # per-subscriber; full queue = eviction
    rate_limit: float = 0.0            # mutations/s per client; 0 = unlimited
    rate_burst: int = 64
    rate_evict_after: int = 0          # consecutive rate-limit errors; 0 = never

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.admission_queue <= 0 or self.event_queue <= 0:
            raise ValueError("queue bounds must be positive")
        if self.rate_limit < 0 or self.rate_burst <= 0:
            raise ValueError("rate limit must be >= 0 and burst positive")

    @classmethod
    def from_env(cls, **overrides: object) -> "ServeConfig":
        """Config with the ambient ``REPRO_BACKEND`` made explicit."""
        cfg = cls(**overrides)  # type: ignore[arg-type]
        if cfg.backend is None:
            ambient = os.environ.get("REPRO_BACKEND")
            if ambient:
                cfg = replace(cfg, backend=ambient)
        return cfg

    def resolved_backend(self) -> str:
        """The backend name the daemon serves from (config or ambient)."""
        return self.backend or os.environ.get("REPRO_BACKEND") or "default"

    def initial_graph(self) -> WeightedGraph:
        """The seeded initial graph; identical on every construction."""
        return random_weighted_graph(self.n, self.m, rng=self.seed)

    def build_core(self):
        """A fresh, identically-configured ledger-charged core.

        Called once by the live reducer and once per offline replay; both
        constructions consume the same seeded generator draws, so their
        ledgers start (and must end) byte-identical.
        """
        from repro.core.api import DynamicMST

        return DynamicMST.build(
            self.initial_graph(),
            self.k,
            rng=self.seed,
            engine=self.engine,
            init=self.init,
            backend=self.backend,
        )

    def hello_payload(self) -> Dict[str, object]:
        """What the ``hello`` op reports: enough to reconstruct the core."""
        return {
            "schema": "repro-serve/1",
            "k": self.k,
            "n": self.n,
            "m": self.m,
            "seed": self.seed,
            "engine": self.engine,
            "init": self.init,
            "backend": self.resolved_backend(),
            "policy": self.policy,
            "coalesce": self.coalesce,
            "max_frame_bytes": self.max_frame_bytes,
        }

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)
