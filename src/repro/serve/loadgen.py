"""The load generator: thousands of concurrent update streams.

Each simulated client owns a *disjoint* slice of the non-initial edge
pairs (round-robin by client index), tracks its own effective edge
state, and alternates inserts and deletes over its slice — so every
command is valid at admission no matter how the scheduler interleaves
clients, and the daemon's final graph is independent of the
interleaving.  A seeded ``random.Random`` per client makes the offered
traffic reproducible; wall-clock is read only to report throughput.

Two ways to aim it:

* **embedded** — construct the daemon in-process and drive it over
  memory transports; with ``verify=True`` the run ends by draining the
  daemon and running the determinism gate
  (:func:`repro.serve.reducer.verify_determinism`);
* **TCP** — point it at a live ``repro serve`` daemon; the handshake's
  ``hello`` payload carries the graph recipe, from which the generator
  reconstructs the initial edge set it must avoid.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Set, Tuple

from repro.serve.client import ServeClient
from repro.serve.config import ServeConfig

Pair = Tuple[int, int]


@dataclass
class LoadgenReport:
    """What one load-generation run offered and observed."""

    clients: int
    commands: int          # commands sent (all ops)
    mutations: int         # add/delete commands sent
    ok: int
    errors: Dict[str, int] = field(default_factory=dict)
    events: int = 0
    wall_s: float = 0.0
    verify: Optional[Dict[str, object]] = None

    @property
    def error_total(self) -> int:
        return sum(self.errors.values())

    @property
    def commands_per_s(self) -> float:
        return self.commands / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        out = {
            "clients": self.clients,
            "commands": self.commands,
            "mutations": self.mutations,
            "ok": self.ok,
            "errors": dict(self.errors),
            "error_total": self.error_total,
            "events": self.events,
            "wall_s": self.wall_s,
            "commands_per_s": self.commands_per_s,
        }
        if self.verify is not None:
            out["verify"] = self.verify
        return out


def initial_pairs(config: ServeConfig) -> Set[Pair]:
    """The seeded initial graph's edge pairs (what clients must avoid)."""
    g = config.initial_graph()
    return {(e.u, e.v) for e in g.edges()}


def client_pairs(
    n: int, taken: Set[Pair], clients: int, index: int
) -> List[Pair]:
    """Client ``index``'s disjoint slice of the free edge pairs."""
    out: List[Pair] = []
    i = 0
    for u in range(n):
        for v in range(u + 1, n):
            if (u, v) in taken:
                continue
            if i % clients == index:
                out.append((u, v))
            i += 1
    return out


async def _run_mutator(
    index: int,
    connect: Callable[[], Awaitable[ServeClient]],
    pairs: List[Pair],
    commands: int,
    seed: int,
    ping_every: int,
    report: LoadgenReport,
) -> None:
    rng = random.Random(seed * 7919 + index)
    client = await connect()
    present: Set[Pair] = set()
    try:
        for i in range(commands):
            if ping_every and i and i % ping_every == 0:
                resp = await client.request("ping")
                _tally(report, resp)
                continue
            pair = pairs[rng.randrange(len(pairs))]
            if pair in present:
                resp = await client.request("delete", u=pair[0], v=pair[1])
                present.discard(pair)
            else:
                resp = await client.request(
                    "add", u=pair[0], v=pair[1], w=rng.random()
                )
                present.add(pair)
            report.mutations += 1
            _tally(report, resp)
        resp = await client.request("bye")
        _tally(report, resp)
    finally:
        client.close()


async def _run_listener(
    connect: Callable[[], Awaitable[ServeClient]],
    stop: asyncio.Event,
    report: LoadgenReport,
) -> None:
    """A pub-sub consumer: subscribes and drains the event channel until
    the mutating cohort is done (so it never trips slow-consumer
    eviction — that path is exercised deliberately in the test suite)."""
    client = await connect()
    try:
        resp = await client.request("subscribe")
        _tally(report, resp)
        while True:
            reader = asyncio.ensure_future(client.read_message())
            waiter = asyncio.ensure_future(stop.wait())
            done, _ = await asyncio.wait(
                {reader, waiter}, return_when=asyncio.FIRST_COMPLETED
            )
            if reader in done:
                waiter.cancel()
                msg = reader.result()
                if msg is None:
                    return
                if "event" in msg:
                    report.events += 1
                continue
            reader.cancel()
            try:
                await reader
            except asyncio.CancelledError:
                pass
            break
        resp = await client.request("bye")
        _tally(report, resp)
    finally:
        client.close()


def _tally(report: LoadgenReport, resp: Optional[Dict[str, object]]) -> None:
    report.commands += 1
    if resp is None:
        report.errors["no-response"] = report.errors.get("no-response", 0) + 1
    elif resp.get("ok"):
        report.ok += 1
    else:
        code = str(resp.get("error", {}).get("code", "unknown"))
        report.errors[code] = report.errors.get(code, 0) + 1


async def run_loadgen(
    connect: Callable[[], Awaitable[ServeClient]],
    config: ServeConfig,
    clients: int,
    commands: int,
    seed: int = 0,
    subscribe_every: int = 16,
    ping_every: int = 8,
) -> LoadgenReport:
    """Drive ``clients`` concurrent streams of ``commands`` each."""
    if clients <= 0 or commands <= 0:
        raise ValueError("clients and commands must be positive")
    taken = initial_pairs(config)
    free = config.n * (config.n - 1) // 2 - len(taken)
    if free < clients:
        raise ValueError(
            f"graph has {free} free pairs but {clients} clients need one each"
        )
    report = LoadgenReport(clients=clients, commands=0, mutations=0, ok=0)
    stop = asyncio.Event()
    roles = [
        "listener" if subscribe_every > 0 and clients > 1 and index % subscribe_every == 1
        else "mutator"
        for index in range(clients)
    ]
    mutators = [i for i, r in enumerate(roles) if r == "mutator"]
    t0 = time.perf_counter()

    async def mutate_cohort() -> None:
        try:
            await asyncio.gather(
                *(
                    _run_mutator(
                        index,
                        connect,
                        client_pairs(config.n, taken, len(mutators), slot),
                        commands,
                        seed,
                        ping_every,
                        report,
                    )
                    for slot, index in enumerate(mutators)
                )
            )
        finally:
            stop.set()

    await asyncio.gather(
        mutate_cohort(),
        *(
            _run_listener(connect, stop, report)
            for index, role in enumerate(roles)
            if role == "listener"
        ),
    )
    report.wall_s = time.perf_counter() - t0
    return report


async def run_embedded(
    config: ServeConfig,
    clients: int,
    commands: int,
    seed: int = 0,
    verify: bool = True,
    telemetry=None,
    subscribe_every: int = 16,
    ping_every: int = 8,
):
    """Daemon + loadgen in one process; returns ``(report, daemon)``.

    The daemon is shut down (drained) before returning; with ``verify``
    the report carries the determinism gate's verdict.
    """
    from repro.serve.reducer import verify_determinism
    from repro.serve.server import MSTDaemon

    daemon = MSTDaemon(config, telemetry=telemetry)
    await daemon.start()

    async def connect() -> ServeClient:
        return daemon.connect_memory()

    report = await run_loadgen(
        connect, config, clients, commands, seed=seed,
        subscribe_every=subscribe_every, ping_every=ping_every,
    )
    await daemon.shutdown(drain=True)
    if verify:
        report.verify = verify_determinism(daemon.reducer)
    return report, daemon


async def run_tcp(
    host: str,
    port: int,
    clients: int,
    commands: int,
    seed: int = 0,
    subscribe_every: int = 16,
    ping_every: int = 8,
) -> LoadgenReport:
    """Aim at a live daemon; the hello payload supplies the graph recipe."""
    from repro.serve.client import connect_tcp

    probe = await connect_tcp(host, port)
    hello = await probe.request("hello")
    if hello is None or not hello.get("ok"):
        raise RuntimeError("daemon refused the hello handshake")
    result = hello["result"]
    config = ServeConfig(
        k=int(result["k"]),
        n=int(result["n"]),
        m=int(result["m"]),
        seed=int(result["seed"]),
        policy=str(result["policy"]),
    )
    await probe.request("bye")
    probe.close()

    async def connect() -> ServeClient:
        return await connect_tcp(host, port)

    return await run_loadgen(
        connect, config, clients, commands, seed=seed,
        subscribe_every=subscribe_every, ping_every=ping_every,
    )
