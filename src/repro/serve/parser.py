"""Framing and validation for the line-delimited JSON protocol.

Two layers, both total functions over hostile input:

* :class:`FrameSplitter` — incremental byte framing.  Feed it arbitrary
  chunks; it yields complete frames and flags oversized frames (drained
  to their terminating newline so the connection stays usable) and a
  truncated trailing frame at EOF.  It never raises on input bytes.
* :func:`decode_command` — one frame to one typed
  :class:`~repro.serve.types.Command`, or :class:`ProtocolError` with a
  typed code from :data:`~repro.serve.types.ERROR_CODES`.  The error
  carries whatever ``id`` could be salvaged from the frame so pipelined
  clients can correlate failures.

The server turns every :class:`ProtocolError` into an
:class:`~repro.serve.types.ErrorResponse`; nothing in this module (or
beyond it) ever lets malformed bytes near the reducer.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

from repro.graphs.streams import Update
from repro.serve.types import (
    Bye,
    Command,
    ErrorResponse,
    EventMessage,
    Hello,
    Mutate,
    OkResponse,
    Ping,
    Query,
    QUERY_KINDS,
    Subscribe,
    Unsubscribe,
)

#: Hard ceiling on one frame (bytes, including the newline).  A valid
#: command is tiny; anything approaching this is hostile or corrupt.
MAX_FRAME_BYTES = 64 * 1024


class ProtocolError(Exception):
    """A frame that cannot become a command; maps to one error response."""

    def __init__(self, code: str, message: str, id: Optional[int] = None) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.id = id

    def response(self) -> ErrorResponse:
        return ErrorResponse(id=self.id, code=self.code, message=self.message)


@dataclass(frozen=True)
class Oversized:
    """A frame that blew past the size limit; ``dropped`` bytes discarded."""

    dropped: int


@dataclass(frozen=True)
class Truncated:
    """A non-empty trailing frame with no newline when the stream ended."""

    dropped: int


Frame = Union[bytes, Oversized, Truncated]


class FrameSplitter:
    """Incremental newline framing with oversize containment.

    While a frame is within budget its bytes accumulate; the moment the
    pending bytes exceed :attr:`max_frame` without a newline, the
    splitter switches to discard mode, counts what it drops, and emits
    one :class:`Oversized` marker when the terminating newline finally
    arrives — so a hostile megabyte line costs one error response and
    bounded memory, not a dead connection.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        if max_frame <= 0:
            raise ValueError("max_frame must be positive")
        self.max_frame = max_frame
        self._buf = bytearray()
        self._discarding = 0  # bytes dropped from the oversized frame so far

    def feed(self, data: bytes) -> Iterator[Frame]:
        """Absorb a chunk; yield every frame it completes."""
        self._buf.extend(data)
        while True:
            nl = self._buf.find(b"\n")
            if nl < 0:
                if self._discarding or len(self._buf) > self.max_frame:
                    self._discarding += len(self._buf)
                    self._buf.clear()
                return
            line = bytes(self._buf[:nl])
            del self._buf[: nl + 1]
            if self._discarding:
                yield Oversized(dropped=self._discarding + len(line))
                self._discarding = 0
            elif len(line) + 1 > self.max_frame:
                yield Oversized(dropped=len(line))
            else:
                yield line

    def eof(self) -> Iterator[Frame]:
        """Flush at end of stream; a partial trailing line is truncated."""
        pending = self._discarding + len(self._buf)
        self._buf.clear()
        self._discarding = 0
        if pending:
            yield Truncated(dropped=pending)


# ----------------------------------------------------------------------
# field validation helpers
# ----------------------------------------------------------------------

def _salvage_id(obj: object) -> Optional[int]:
    """Best-effort id extraction so error responses stay correlatable."""
    if isinstance(obj, dict):
        cid = obj.get("id")
        if isinstance(cid, int) and not isinstance(cid, bool) and cid >= 0:
            return cid
    return None


def _int_field(obj: dict, name: str, cid: Optional[int]) -> int:
    val = obj.get(name)
    if not isinstance(val, int) or isinstance(val, bool) or val < 0:
        raise ProtocolError(
            "bad-command", f"field {name!r} must be a non-negative integer", cid
        )
    return val


def _weight_field(obj: dict, cid: Optional[int]) -> float:
    val = obj.get("w")
    if isinstance(val, bool) or not isinstance(val, (int, float)):
        raise ProtocolError("bad-command", "field 'w' must be a number", cid)
    w = float(val)
    if not math.isfinite(w):
        raise ProtocolError("bad-command", "field 'w' must be finite", cid)
    return w


def _endpoints(obj: dict, cid: Optional[int]) -> tuple:
    u = _int_field(obj, "u", cid)
    v = _int_field(obj, "v", cid)
    if u == v:
        raise ProtocolError("bad-command", "self-loops are not edges", cid)
    return u, v


def decode_command(frame: Frame) -> Command:
    """One frame → one typed command, or :class:`ProtocolError`."""
    if isinstance(frame, Oversized):
        raise ProtocolError(
            "oversized-frame",
            f"frame exceeded {MAX_FRAME_BYTES} bytes ({frame.dropped} dropped)",
        )
    if isinstance(frame, Truncated):
        raise ProtocolError(
            "bad-frame", f"stream ended mid-frame ({frame.dropped} bytes unterminated)"
        )
    text = frame.strip(b" \t\r")
    if not text:
        raise ProtocolError("bad-frame", "empty frame")
    try:
        obj = json.loads(text)
    except (ValueError, UnicodeDecodeError):
        raise ProtocolError("bad-frame", "frame is not valid JSON") from None
    if not isinstance(obj, dict):
        raise ProtocolError("bad-frame", "frame is not a JSON object")
    cid = _salvage_id(obj)
    if "id" in obj and cid is None:
        raise ProtocolError(
            "bad-command", "field 'id' must be a non-negative integer"
        )
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-command", "missing 'op' string", cid)
    if op == "hello":
        return Hello(id=cid)
    if op == "ping":
        return Ping(id=cid)
    if op == "add":
        u, v = _endpoints(obj, cid)
        w = _weight_field(obj, cid)
        return Mutate(update=Update.add(u, v, w), id=cid)
    if op == "delete":
        u, v = _endpoints(obj, cid)
        return Mutate(update=Update.delete(u, v), id=cid)
    if op == "query":
        q = obj.get("q")
        if q not in QUERY_KINDS:
            raise ProtocolError(
                "bad-command", f"field 'q' must be one of {list(QUERY_KINDS)}", cid
            )
        u = v = None
        if q == "in-forest":
            u, v = _endpoints(obj, cid)
        elif q == "component":
            v = _int_field(obj, "v", cid)
        return Query(q=q, u=u, v=v, id=cid)
    if op == "subscribe":
        return Subscribe(id=cid)
    if op == "unsubscribe":
        return Unsubscribe(id=cid)
    if op == "bye":
        return Bye(id=cid)
    raise ProtocolError("unknown-op", f"unknown op {op!r}", cid)


# ----------------------------------------------------------------------
# response encoding
# ----------------------------------------------------------------------

def _frame(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def encode_result(response: OkResponse) -> bytes:
    return _frame({"id": response.id, "ok": True, "result": dict(response.result)})


def encode_error(response: ErrorResponse) -> bytes:
    return _frame({
        "id": response.id,
        "ok": False,
        "error": {"code": response.code, "message": response.message},
    })


def encode_event(event: EventMessage) -> bytes:
    out = {"event": event.event}
    out.update(event.fields)
    return _frame(out)


def encode(msg: Union[OkResponse, ErrorResponse, EventMessage]) -> bytes:
    if isinstance(msg, OkResponse):
        return encode_result(msg)
    if isinstance(msg, ErrorResponse):
        return encode_error(msg)
    return encode_event(msg)


def parse_frames(data: bytes, max_frame: int = MAX_FRAME_BYTES) -> List[Frame]:
    """Split a complete byte string into frames (convenience for tests)."""
    splitter = FrameSplitter(max_frame)
    out = list(splitter.feed(data))
    out.extend(splitter.eof())
    return out
