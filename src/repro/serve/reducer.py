"""The serve reducer: the only code that touches the charged core.

:class:`ServeReducer` owns the daemon's :class:`~repro.core.api.DynamicMST`,
its PR 9 admission buffer and batch policy, and the replicated
:class:`~repro.serve.view.ForestView`.  Everything it does is synchronous
and deterministic; the asyncio front-end (:mod:`repro.serve.server`)
serialises all access through one queue, so the reducer never needs a
lock and the core never sees concurrency.

**The replay contract.**  Every admitted mutation is stamped with a
logical tick chosen so that the recorded admitted log, replayed through
a fresh :class:`~repro.stream.ingest.StreamIngestor` over an identically
configured core, makes *exactly* the same scheduling decisions — and
therefore issues the same ``apply_batch`` calls and ends on a
byte-identical ledger digest.  The stamping mirrors the ingestor's tick
loop case by case:

* queue empty at admission → stamp the current tick (the ingestor idles
  forward by jumping ``now`` straight to the next arrival's tick);
* queue non-empty → advance one tick, then stamp (the ingestor advances
  ``now + 1`` per waiting iteration, and our stamps mean exactly one
  such iteration separates consecutive admissions);
* after each applied cut the clock advances by ``max(1, rounds
  charged)``, exactly as the ingestor's loop does;
* :meth:`ServeReducer.drain` replays the end-of-stream ``flush`` path.

Rejected commands never reach the buffer, never stamp a tick, and never
appear in the admitted log — hostile traffic is invisible to the gate.
:func:`offline_replay` and :func:`verify_determinism` close the loop;
the serve test harness and the ``serve-smoke`` CI job assert the digests
match for every concurrent interleaving they produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graphs.mst import forest_digest
from repro.graphs.streams import ArrivalStream, TimedUpdate, Update
from repro.stream.coalescer import AdmissionBuffer, CoalescingBuffer
from repro.stream.ingest import StreamIngestor
from repro.stream.metrics import percentile
from repro.stream.policy import SchedulerView, make_policy

from repro.serve.config import ServeConfig
from repro.serve.view import ForestView


class AdmissionError(Exception):
    """A structurally valid mutation the current graph state rejects."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


@dataclass(frozen=True)
class MsfChange:
    """One published forest transition (the ``msf_change`` event payload)."""

    version: int
    tick: int
    weight: float
    added: Tuple[Tuple[int, int, float], ...]
    removed: Tuple[Tuple[int, int], ...]
    reason: str
    batches: int
    rounds: int

    def as_fields(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "tick": self.tick,
            "weight": self.weight,
            "added": [list(e) for e in self.added],
            "removed": [list(p) for p in self.removed],
            "reason": self.reason,
        }


@dataclass
class Admitted:
    """What one accepted mutation produced."""

    seq: int                 # position in the admitted log
    tick: int                # stamped logical arrival tick
    changes: List[MsfChange] = field(default_factory=list)


class ServeReducer:
    """Parse → validate → **reduce** → publish: the reduce stage."""

    def __init__(self, config: ServeConfig, dm=None) -> None:
        self.config = config
        self.dm = dm if dm is not None else config.build_core()
        capacity = self.dm.batch_capacity
        self.max_batch = config.max_batch if config.max_batch else capacity
        self.policy = make_policy(config.policy, capacity)
        self.buffer = CoalescingBuffer() if config.coalesce else AdmissionBuffer()
        self.now = 0
        self.admitted_log: List[TimedUpdate] = []
        self.cuts = 0
        self.batches = 0
        self.peak_queue_depth = 0
        self.latencies: List[int] = []
        self.cut_reasons: Dict[str, int] = {}
        self.rejected = 0
        self.view = ForestView.capture(self.dm, version=0, tick=0)
        # Effective edge presence for pairs with pending buffered updates;
        # pairs not listed fall through to the applied graph (the shadow).
        self._overlay: Dict[Tuple[int, int], bool] = {}

    # ------------------------------------------------------------------
    # validation (parse → VALIDATE → reduce → publish)
    # ------------------------------------------------------------------
    def effective_present(self, u: int, v: int) -> bool:
        """Is the edge present once every pending update lands?"""
        pair = (u, v) if u <= v else (v, u)
        if pair in self._overlay:
            return self._overlay[pair]
        return self.dm.shadow.has_edge(*pair)

    def validate(self, update: Update) -> None:
        """Raise :class:`AdmissionError` unless ``update`` keeps the
        admitted sequence consistent in emission order (the
        :class:`~repro.graphs.streams.ArrivalStream` invariant the
        replay depends on)."""
        shadow = self.dm.shadow
        if not (shadow.has_vertex(update.u) and shadow.has_vertex(update.v)):
            raise AdmissionError(
                "unknown-vertex", f"no such vertex in ({update.u}, {update.v})"
            )
        present = self.effective_present(update.u, update.v)
        if update.kind == "add" and present:
            raise AdmissionError(
                "edge-exists", f"edge {update.endpoints} already present"
            )
        if update.kind == "delete" and not present:
            raise AdmissionError(
                "edge-missing", f"edge {update.endpoints} not present"
            )

    # ------------------------------------------------------------------
    # the reduce step
    # ------------------------------------------------------------------
    def submit(self, update: Update) -> Admitted:
        """Validate, stamp, admit and schedule one mutation."""
        try:
            self.validate(update)
        except AdmissionError:
            self.rejected += 1
            raise
        if self.buffer.pending_cost:
            # The ingestor spends one waiting iteration (now + 1) between
            # these two admissions; mirror it so the replay lines up.
            self.now += 1
        tick = self.now
        self.buffer.admit(update, tick, self.now)
        self.admitted_log.append(TimedUpdate(tick, update))
        self._overlay[update.endpoints] = update.kind == "add"
        seq = len(self.admitted_log) - 1
        self.peak_queue_depth = max(self.peak_queue_depth, self.buffer.pending_cost)
        return Admitted(seq=seq, tick=tick, changes=self._pump(flush=False))

    def drain(self) -> List[MsfChange]:
        """Flush the buffer at shutdown — the end-of-stream replay path."""
        return self._pump(flush=True)

    def _pump(self, flush: bool) -> List[MsfChange]:
        changes: List[MsfChange] = []
        while self.buffer.pending_cost:
            depth = self.buffer.pending_cost
            oldest = self.buffer.oldest_tick
            age = self.now - oldest if oldest is not None else 0
            reason = self.policy.should_cut(
                SchedulerView(tick=self.now, queue_depth=depth, oldest_age=age)
            )
            if reason is None:
                if not flush:
                    break
                reason = "flush"
            changes.append(self._cut(reason, age))
        return changes

    def _cut(self, reason: str, age: int) -> MsfChange:
        cut = self.buffer.cut(self.policy.target, self.max_batch)
        ledger = self.dm.net.ledger
        before = ledger.snapshot()
        for batch in cut.batches:
            self.dm.apply_batch(batch)
            self.batches += 1
        delta = ledger.since(before)
        self.now += max(1, delta.rounds)
        for t in cut.shipped_ticks:
            self.latencies.append(max(self.now - t, 0))
        self.latencies.extend(self.buffer.drain_resolved())
        self.cuts += 1
        self.cut_reasons[reason] = self.cut_reasons.get(reason, 0) + 1
        recorder = ledger.recorder
        if recorder is not None:
            recorder.emit(
                "sched_cut",
                policy=self.policy.name,
                reason=reason,
                raw=len(cut.shipped_ticks),
                shipped=cut.shipped,
                queue_depth=self.buffer.pending_cost,
                tick=self.now,
                oldest_age=age,
                target=self.policy.target,
                batches=len(cut.batches),
            )
        step = self.policy.observe_cut(self.buffer.pending_cost)
        if step is not None and recorder is not None:
            recorder.emit(
                "sched_adapt",
                policy=self.policy.name,
                target=step.target,
                previous=step.previous,
                signal=step.signal,
                tick=self.now,
            )
        # Pairs whose pending updates all shipped now read from the shadow.
        pending = self.buffer.pending_pairs()
        self._overlay = {p: s for p, s in self._overlay.items() if p in pending}
        return self._publish(reason, len(cut.batches), delta.rounds)

    def _publish(self, reason: str, batches: int, rounds: int) -> MsfChange:
        old = self.view
        new = ForestView.capture(self.dm, version=old.version + 1, tick=self.now)
        added, removed = old.diff(new)
        self.view = new
        change = MsfChange(
            version=new.version,
            tick=new.tick,
            weight=new.weight,
            added=tuple(added),
            removed=tuple(removed),
            reason=reason,
            batches=batches,
            rounds=rounds,
        )
        recorder = self.dm.net.ledger.recorder
        if recorder is not None:
            recorder.emit(
                "serve_publish",
                version=change.version,
                added=len(change.added),
                removed=len(change.removed),
                weight=change.weight,
                tick=change.tick,
                batches=batches,
                rounds=rounds,
                reason=reason,
            )
        return change

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def admitted(self) -> int:
        return len(self.admitted_log)

    def stats(self) -> Dict[str, object]:
        out = dict(self.view.stats())
        out.update(
            admitted=self.admitted,
            absorbed=self.buffer.absorbed,
            shipped=self.buffer.admitted - self.buffer.absorbed,
            rejected=self.rejected,
            cuts=self.cuts,
            batches=self.batches,
            queue_depth=self.buffer.pending_cost,
            peak_queue_depth=self.peak_queue_depth,
            p50_ticks=percentile(self.latencies, 50),
            p99_ticks=percentile(self.latencies, 99),
            policy=self.policy.name,
            target=self.policy.target,
            rounds=self.dm.net.ledger.rounds,
        )
        return out

    def ledger_digest(self) -> str:
        return self.dm.net.ledger.digest()

    def forest_digest(self) -> str:
        return forest_digest(self.dm.msf_edges())


# ----------------------------------------------------------------------
# the determinism gate
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ReplayResult:
    """The offline half of the gate: a fresh core fed the admitted log."""

    ledger_digest: str
    forest_digest: str
    admitted: int
    cuts: int


def offline_replay(
    config: ServeConfig, admitted: List[TimedUpdate]
) -> ReplayResult:
    """Replay the admitted log through a fresh :class:`StreamIngestor`.

    Constructs a second core from the same :class:`ServeConfig` (same
    seeded graph, partition and init draws) and runs the PR 9 ingestor —
    the *original* tick loop, not the reducer's mirror of it — over the
    recorded stream.  Byte-identical digests mean the live daemon and the
    offline batch pipeline executed the same charged work.
    """
    dm = config.build_core()
    stream = ArrivalStream(config.initial_graph(), admitted, name="serve-replay")
    ingestor = StreamIngestor(
        dm, policy=config.policy, coalesce=config.coalesce,
        max_batch=config.max_batch,
    )
    report = ingestor.run(stream)
    return ReplayResult(
        ledger_digest=dm.net.ledger.digest(),
        forest_digest=report.forest_digest,
        admitted=report.admitted,
        cuts=report.cuts,
    )


def verify_determinism(reducer: ServeReducer) -> Dict[str, object]:
    """Compare a drained live reducer against its offline replay.

    Call after :meth:`ServeReducer.drain`; a live reducer with pending
    buffered updates would trivially diverge from the replay's flush.
    """
    if reducer.buffer.pending_cost:
        raise ValueError("drain() the reducer before verifying")
    replay = offline_replay(reducer.config, reducer.admitted_log)
    live_ledger = reducer.ledger_digest()
    live_forest = reducer.forest_digest()
    return {
        "ok": live_ledger == replay.ledger_digest
        and live_forest == replay.forest_digest,
        "admitted": reducer.admitted,
        "live_ledger_digest": live_ledger,
        "replay_ledger_digest": replay.ledger_digest,
        "live_forest_digest": live_forest,
        "replay_forest_digest": replay.forest_digest,
        "live_cuts": reducer.cuts,
        "replay_cuts": replay.cuts,
    }
