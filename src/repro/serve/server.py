"""The asyncio front end: sessions, rate limits, backpressure, fan-out.

:class:`MSTDaemon` is the parse → validate → reduce → publish loop made
concurrent at the edges only:

* every connection gets a :class:`ClientSession` — a reader task that
  frames bytes, decodes commands, and answers everything but mutations
  directly from the replicated view (zero rounds), plus a writer task
  draining a **bounded** outbox to the transport;
* mutations pass a per-client :class:`TokenBucket`, then block on the
  **bounded** admission queue — when the reducer falls behind, readers
  stop reading and the transport's own buffers push back on clients
  (end-to-end backpressure, no unbounded queue anywhere);
* one reduce task drains the admission queue in arrival order into
  :class:`~repro.serve.reducer.ServeReducer` — the single serialisation
  point, so the charged core never sees concurrency and the admitted
  log is the total order the determinism gate replays;
* published :class:`~repro.serve.reducer.MsfChange` views broadcast to
  subscribers via ``put_nowait``: a subscriber that stops reading fills
  its outbox and is **evicted** rather than ever stalling the reducer.

Wall-clock enters exactly twice — the rate-limiter clock (injectable,
so tests pin it) and telemetry timestamps — and neither feeds the
reducer, the stamped ticks, or anything else the replay compares.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional, Set

from repro.serve.client import ServeClient
from repro.serve.config import ServeConfig
from repro.serve.parser import (
    FrameSplitter,
    ProtocolError,
    decode_command,
    encode,
    encode_event,
)
from repro.serve.reducer import AdmissionError, MsfChange, ServeReducer
from repro.serve.transport import MemoryTransport, StreamTransport
from repro.serve.types import (
    Bye,
    ErrorResponse,
    EventMessage,
    Hello,
    Mutate,
    OkResponse,
    Ping,
    Query,
    Subscribe,
    Unsubscribe,
)


class TokenBucket:
    """Classic token bucket; the clock is injected so tests are exact."""

    def __init__(self, rate: float, burst: int, clock: Callable[[], float]) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = float(burst)
        self.last = clock()

    def take(self, n: float = 1.0) -> bool:
        t = self.clock()
        self.tokens = min(self.burst, self.tokens + (t - self.last) * self.rate)
        self.last = t
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


class ClientSession:
    """One connection: a reader task, a writer task, a bounded outbox."""

    def __init__(self, daemon: "MSTDaemon", transport, name: str) -> None:
        self.daemon = daemon
        self.transport = transport
        self.name = name
        cfg = daemon.config
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=cfg.event_queue)
        self.subscribed = False
        self.closing = False
        self.evicted: Optional[str] = None
        self.rate_strikes = 0
        self.bucket = (
            TokenBucket(cfg.rate_limit, cfg.rate_burst, daemon.clock)
            if cfg.rate_limit > 0
            else None
        )
        self._reader_task: Optional[asyncio.Task] = None
        self._writer_task: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------
    def start(self) -> None:
        self._reader_task = asyncio.ensure_future(self._reader())
        self._writer_task = asyncio.ensure_future(self._writer())

    async def wait_closed(self) -> None:
        for task in (self._reader_task, self._writer_task):
            if task is not None:
                try:
                    await task
                except asyncio.CancelledError:
                    pass

    def kick(self, reason: Optional[str] = None) -> None:
        """Tear the session down without awaiting (safe from any task)."""
        if self.closing:
            return
        self.closing = True
        self.evicted = reason
        self.transport.close()
        for task in (self._reader_task, self._writer_task):
            if task is not None and not task.done():
                task.cancel()
        self.daemon._session_closed(self, reason)

    # -- writer -------------------------------------------------------
    async def _writer(self) -> None:
        try:
            while True:
                data = await self.outbox.get()
                if data is None:
                    break
                self.transport.write(data)
                await self.transport.drain()
        except asyncio.CancelledError:
            pass
        finally:
            self.transport.close()

    async def _respond(self, msg) -> None:
        """Queue a response to the client's own command (backpressure:
        a full outbox blocks this session's reader, nobody else)."""
        if not self.closing:
            await self.outbox.put(encode(msg))

    def push_event(self, data: bytes) -> bool:
        """Broadcast delivery; never blocks the caller (the reduce loop)."""
        if self.closing:
            return False
        try:
            self.outbox.put_nowait(data)
            return True
        except asyncio.QueueFull:
            self.daemon.evict(self, "slow-consumer")
            return False

    # -- reader -------------------------------------------------------
    async def _reader(self) -> None:
        splitter = FrameSplitter(self.daemon.config.max_frame_bytes)
        try:
            while not self.closing:
                chunk = await self.transport.read(4096)
                if not chunk:
                    for frame in splitter.eof():
                        await self._handle_frame(frame)
                    break
                for frame in splitter.feed(chunk):
                    await self._handle_frame(frame)
                    if self.closing:
                        break
        except asyncio.CancelledError:
            pass
        finally:
            if not self.closing:
                self.closing = True
                self.daemon._session_closed(self, None)
            try:
                self.outbox.put_nowait(None)
            except asyncio.QueueFull:
                # Writer is stuck on a full pipe; it gets cancelled on kick.
                pass

    async def _handle_frame(self, frame) -> None:
        try:
            cmd = decode_command(frame)
        except ProtocolError as exc:
            self.daemon.emit(
                "serve_cmd", op="?", status="error", client=self.name, code=exc.code
            )
            await self._respond(exc.response())
            return
        await self._handle(cmd)

    async def _handle(self, cmd) -> None:
        daemon = self.daemon
        if isinstance(cmd, Mutate):
            await self._handle_mutation(cmd)
            return
        if isinstance(cmd, Hello):
            result = dict(daemon.config.hello_payload())
            result["version"] = daemon.reducer.view.version
            await self._ok(cmd, result)
        elif isinstance(cmd, Ping):
            await self._ok(
                cmd,
                {
                    "pong": True,
                    "tick": daemon.reducer.now,
                    "version": daemon.reducer.view.version,
                },
            )
        elif isinstance(cmd, Query):
            await self._handle_query(cmd)
        elif isinstance(cmd, Subscribe):
            self.subscribed = True
            await self._ok(
                cmd,
                {"subscribed": True, "version": daemon.reducer.view.version},
            )
        elif isinstance(cmd, Unsubscribe):
            self.subscribed = False
            await self._ok(cmd, {"subscribed": False})
        elif isinstance(cmd, Bye):
            await self._ok(cmd, {"bye": True})
            # Let the writer flush the farewell, then close.
            self.closing = True
            await self.outbox.put(None)
            daemon._session_closed(self, None)

    async def _ok(self, cmd, result: Dict[str, object]) -> None:
        self.daemon.emit("serve_cmd", op=_op_name(cmd), status="ok", client=self.name)
        await self._respond(OkResponse(id=cmd.id, result=result))

    async def _err(self, cmd, code: str, message: str) -> None:
        self.daemon.emit(
            "serve_cmd", op=_op_name(cmd), status="error", client=self.name, code=code
        )
        await self._respond(ErrorResponse(id=cmd.id, code=code, message=message))

    async def _handle_query(self, cmd: Query) -> None:
        view = self.daemon.reducer.view
        if cmd.q == "in-forest":
            if not (view.has_vertex(cmd.u) and view.has_vertex(cmd.v)):
                await self._err(cmd, "unknown-vertex", "query endpoint unknown")
                return
            await self._ok(
                cmd,
                {
                    "in_forest": view.in_forest(cmd.u, cmd.v),
                    "connected": view.same_component(cmd.u, cmd.v),
                    "version": view.version,
                },
            )
        elif cmd.q == "component":
            if not view.has_vertex(cmd.v):
                await self._err(cmd, "unknown-vertex", f"no vertex {cmd.v}")
                return
            await self._ok(
                cmd,
                {"component": view.component_of(cmd.v), "version": view.version},
            )
        elif cmd.q == "weight":
            await self._ok(cmd, {"weight": view.weight, "version": view.version})
        elif cmd.q == "components":
            await self._ok(
                cmd,
                {"components": view.n_components, "version": view.version},
            )
        else:  # stats
            await self._ok(cmd, self.daemon.stats())

    async def _handle_mutation(self, cmd: Mutate) -> None:
        daemon = self.daemon
        if daemon.draining:
            await self._err(cmd, "shutting-down", "daemon is draining")
            return
        if self.bucket is not None and not self.bucket.take():
            self.rate_strikes += 1
            await self._err(cmd, "rate-limited", "token bucket empty")
            evict_after = daemon.config.rate_evict_after
            if evict_after and self.rate_strikes >= evict_after:
                daemon.evict(self, "rate-limit")
            return
        self.rate_strikes = 0
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        # Bounded queue: this await is the backpressure point.
        await daemon.admission.put((self, cmd, fut))
        try:
            admitted = await fut
        except AdmissionError as exc:
            await self._err(cmd, exc.code, exc.message)
            return
        except asyncio.CancelledError:
            raise
        self.daemon.emit(
            "serve_cmd", op=_op_name(cmd), status="ok", client=self.name
        )
        await self._respond(
            OkResponse(
                id=cmd.id,
                result={
                    "seq": admitted.seq,
                    "tick": admitted.tick,
                    "version": daemon.reducer.view.version,
                },
            )
        )


def _op_name(cmd) -> str:
    if isinstance(cmd, Mutate):
        return cmd.update.kind
    if isinstance(cmd, Query):
        return f"query:{cmd.q}"
    return type(cmd).__name__.lower()


class MSTDaemon:
    """The daemon: one reducer, one admission queue, many sessions."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        telemetry=None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.telemetry = telemetry
        self.clock = clock if clock is not None else _loop_clock
        self.reducer = ServeReducer(self.config)
        if telemetry is not None:
            self.reducer.dm.attach_trace(telemetry)
        self.admission: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.admission_queue
        )
        self.sessions: Set[ClientSession] = set()
        self.draining = False
        self.evictions: Dict[str, int] = {}
        self.sessions_served = 0
        self._reduce_task: Optional[asyncio.Task] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._next_client = 0

    # -- telemetry ----------------------------------------------------
    def emit(self, etype: str, **fields: object) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(etype, **fields)

    # -- lifecycle ----------------------------------------------------
    async def start(self) -> None:
        """Start the reduce loop (in-process serving; no sockets)."""
        if self._reduce_task is None:
            self._reduce_task = asyncio.ensure_future(self._reduce_loop())
            cfg = self.config
            self.emit(
                "serve_start",
                k=cfg.k,
                policy=cfg.policy,
                host=cfg.host,
                port=cfg.port,
                backend=cfg.resolved_backend(),
                n=cfg.n,
                m=cfg.m,
                coalesce=cfg.coalesce,
            )

    async def start_tcp(self) -> int:
        """Additionally listen on ``config.host:config.port``; returns
        the bound port (useful with port 0)."""
        await self.start()
        self._tcp_server = await asyncio.start_server(
            self._on_tcp, self.config.host, self.config.port
        )
        return self._tcp_server.sockets[0].getsockname()[1]

    async def _on_tcp(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        session = self._attach(StreamTransport(reader, writer))
        await session.wait_closed()

    def connect_memory(self, queue_chunks: int = 16) -> ServeClient:
        """A new in-process client wired straight into a session."""
        server_end, client_end = MemoryTransport.pair(queue_chunks)
        self._attach(server_end)
        return ServeClient(client_end, max_frame=self.config.max_frame_bytes)

    def _attach(self, transport) -> ClientSession:
        name = f"c{self._next_client}"
        self._next_client += 1
        session = ClientSession(self, transport, name)
        self.sessions.add(session)
        self.sessions_served += 1
        self.emit(
            "serve_conn", action="connect", client=name, sessions=len(self.sessions)
        )
        session.start()
        return session

    def _session_closed(self, session: ClientSession, reason: Optional[str]) -> None:
        if session in self.sessions:
            self.sessions.discard(session)
            fields: Dict[str, object] = {
                "action": "evict" if reason else "close",
                "client": session.name,
                "sessions": len(self.sessions),
            }
            if reason:
                fields["reason"] = reason
            self.emit("serve_conn", **fields)

    def evict(self, session: ClientSession, reason: str) -> None:
        self.evictions[reason] = self.evictions.get(reason, 0) + 1
        session.kick(reason)

    # -- the single serialisation point -------------------------------
    async def _reduce_loop(self) -> None:
        while True:
            item = await self.admission.get()
            try:
                if item is None:
                    return
                session, cmd, fut = item
                try:
                    admitted = self.reducer.submit(cmd.update)
                except AdmissionError as exc:
                    self.emit(
                        "serve_cmd",
                        op=cmd.update.kind,
                        status="error",
                        client=session.name,
                        code=exc.code,
                    )
                    if not fut.done():
                        fut.set_exception(exc)
                    continue
                if not fut.done():
                    fut.set_result(admitted)
                for change in admitted.changes:
                    self._broadcast(change)
                # Queue.get returns without yielding while items are ready;
                # without this, a deep backlog lets the reduce loop publish
                # unboundedly before any subscriber's tasks run again.
                await asyncio.sleep(0)
            finally:
                self.admission.task_done()

    def _broadcast(self, change: MsfChange) -> None:
        data = encode_event(EventMessage("msf_change", change.as_fields()))
        for session in list(self.sessions):
            if session.subscribed:
                session.push_event(data)

    # -- shutdown + the determinism gate ------------------------------
    async def shutdown(self, drain: bool = True) -> List[MsfChange]:
        """Stop accepting mutations, flush the buffer, close everything."""
        self.draining = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        changes: List[MsfChange] = []
        if self._reduce_task is not None:
            await self.admission.join()
            await self.admission.put(None)
            await self._reduce_task
            self._reduce_task = None
        # A session that passed the draining check before we set it may
        # have queued behind the sentinel; reject, never strand its future.
        while not self.admission.empty():
            item = self.admission.get_nowait()
            if item is not None:
                _session, _cmd, fut = item
                if not fut.done():
                    fut.set_exception(
                        AdmissionError("shutting-down", "daemon is draining")
                    )
        if drain:
            changes = self.reducer.drain()
            for change in changes:
                self._broadcast(change)
        self.emit(
            "serve_stop",
            sessions=self.sessions_served,
            admitted=self.reducer.admitted,
            rejected=self.reducer.rejected,
            cuts=self.reducer.cuts,
            batches=self.reducer.batches,
            evicted=sum(self.evictions.values()),
            digest=self.reducer.ledger_digest(),
        )
        for session in list(self.sessions):
            session.kick()
        if self.telemetry is not None:
            self.reducer.dm.detach_trace()
        return changes

    def stats(self) -> Dict[str, object]:
        out = self.reducer.stats()
        out.update(
            sessions=len(self.sessions),
            sessions_served=self.sessions_served,
            evictions=dict(self.evictions),
            draining=self.draining,
            backend=self.config.resolved_backend(),
        )
        return out


def _loop_clock() -> float:
    return asyncio.get_running_loop().time()
