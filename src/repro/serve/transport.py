"""Transports: the byte pipes between clients and the daemon.

Two implementations of one tiny duplex interface:

* :class:`MemoryTransport` — an in-process duplex pair with a *bounded*
  chunk queue per direction, so writes exert real backpressure exactly
  like a TCP socket buffer: ``write()`` stages bytes, ``drain()`` blocks
  while the peer's receive queue is full.  This is what the test harness
  and the in-process load generator run over — thousands of clients, no
  sockets, deterministic scheduling.
* :class:`StreamTransport` — a thin wrapper over an asyncio
  ``(StreamReader, StreamWriter)`` pair for real TCP connections.

Both ends speak raw bytes; framing lives in
:class:`repro.serve.parser.FrameSplitter`.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Optional, Tuple


class MemoryTransport:
    """One endpoint of an in-process duplex byte pipe."""

    def __init__(self, queue_chunks: int = 16) -> None:
        self._rx: asyncio.Queue = asyncio.Queue(maxsize=queue_chunks)
        self._pending: Deque[bytes] = deque()
        self._peer: Optional["MemoryTransport"] = None
        self._closed = False
        self._eof = False

    # -- wiring -------------------------------------------------------
    @classmethod
    def pair(cls, queue_chunks: int = 16) -> Tuple["MemoryTransport", "MemoryTransport"]:
        a, b = cls(queue_chunks), cls(queue_chunks)
        a._peer, b._peer = b, a
        return a, b

    # -- reading ------------------------------------------------------
    async def read(self, n: int = 4096) -> bytes:
        """Next chunk (ignores ``n``); b"" at EOF, like a StreamReader."""
        if self._eof:
            return b""
        if self._closed and self._rx.empty():
            return b""
        chunk = await self._rx.get()
        if chunk is None:
            self._eof = True
            return b""
        return chunk

    # -- writing ------------------------------------------------------
    def write(self, data: bytes) -> None:
        if self._closed or not data:
            return
        self._pending.append(data)

    async def drain(self) -> None:
        """Push staged chunks to the peer, blocking while it is full."""
        while self._pending:
            if self._closed or self._peer is None or self._peer._closed:
                self._pending.clear()
                return
            chunk = self._pending.popleft()
            await self._peer._rx.put(chunk)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        peer = self._peer
        if peer is not None and not peer._closed:
            try:
                peer._rx.put_nowait(None)
            except asyncio.QueueFull:
                # The peer is full and not reading; drop its backlog so
                # EOF is the next thing it sees.
                while not peer._rx.empty():
                    peer._rx.get_nowait()
                peer._rx.put_nowait(None)
        # Unblock our own reader too.
        if not self._eof:
            try:
                self._rx.put_nowait(None)
            except asyncio.QueueFull:
                pass

    def is_closing(self) -> bool:
        return self._closed


class StreamTransport:
    """Adapter: asyncio stream pair → the duplex transport interface."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    async def read(self, n: int = 4096) -> bytes:
        try:
            return await self._reader.read(n)
        except (ConnectionError, asyncio.IncompleteReadError):
            return b""

    def write(self, data: bytes) -> None:
        if not self._writer.is_closing():
            self._writer.write(data)

    async def drain(self) -> None:
        if self._writer.is_closing():
            return
        try:
            await self._writer.drain()
        except ConnectionError:
            pass

    def close(self) -> None:
        if not self._writer.is_closing():
            self._writer.close()

    def is_closing(self) -> bool:
        return self._writer.is_closing()
