"""Typed commands and responses for the ``repro-serve/1`` wire protocol.

The daemon speaks line-delimited JSON: every frame is one JSON object
terminated by ``\\n``, at most :data:`~repro.serve.parser.MAX_FRAME_BYTES`
long.  A request carries an ``op`` string, an optional non-negative
integer ``id`` (echoed verbatim on the response so clients may pipeline),
and op-specific fields.  The parser (:mod:`repro.serve.parser`) turns
frames into the frozen dataclasses below — nothing past the parser ever
sees raw JSON, and nothing before the reducer ever sees graph state.

Responses are ``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``;
server-pushed subscription events are ``{"event": ..., ...}`` and carry
no ``id``.  Error codes are the closed set :data:`ERROR_CODES` — clients
can switch on them, and the fuzz suite asserts hostile input always maps
into this set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple, Union

from repro.graphs.streams import Update

#: Schema tag reported by ``hello`` and stamped into loadgen reports.
PROTOCOL_SCHEMA = "repro-serve/1"

#: Every error code the protocol can return.  Framing and shape errors
#: come from the parser; admission errors from the reducer's validation;
#: ``rate-limited``/``shutting-down`` from the server front-end.
ERROR_CODES: Tuple[str, ...] = (
    "bad-frame",        # not a JSON object / truncated final frame
    "oversized-frame",  # frame exceeded MAX_FRAME_BYTES before its newline
    "bad-command",      # JSON object with missing/ill-typed fields
    "unknown-op",       # op string outside the protocol
    "unknown-vertex",   # mutation endpoint not in the graph
    "edge-exists",      # add of an (effectively) present edge
    "edge-missing",     # delete of an (effectively) absent edge
    "rate-limited",     # client exceeded its token bucket
    "shutting-down",    # daemon is draining; no new mutations
)

#: Query kinds answered from the replicated post-batch view (zero rounds).
QUERY_KINDS: Tuple[str, ...] = (
    "in-forest", "component", "weight", "components", "stats",
)


@dataclass(frozen=True)
class Hello:
    """Handshake: returns the daemon's model/config so clients (and the
    load generator) can reconstruct the initial graph deterministically."""

    id: Optional[int] = None


@dataclass(frozen=True)
class Ping:
    """Liveness probe; returns the reducer's current logical tick."""

    id: Optional[int] = None


@dataclass(frozen=True)
class Mutate:
    """An edge insert or delete — the only op that can reach the core."""

    update: Update
    id: Optional[int] = None


@dataclass(frozen=True)
class Query:
    """A point query against the replicated forest view (zero rounds)."""

    q: str
    u: Optional[int] = None
    v: Optional[int] = None
    id: Optional[int] = None


@dataclass(frozen=True)
class Subscribe:
    """Start receiving ``msf_change`` events on this connection."""

    id: Optional[int] = None


@dataclass(frozen=True)
class Unsubscribe:
    id: Optional[int] = None


@dataclass(frozen=True)
class Bye:
    """Graceful close: the server replies then drops the connection."""

    id: Optional[int] = None


Command = Union[Hello, Ping, Mutate, Query, Subscribe, Unsubscribe, Bye]


@dataclass(frozen=True)
class OkResponse:
    id: Optional[int]
    result: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ErrorResponse:
    id: Optional[int]
    code: str
    message: str

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(f"unknown error code {self.code!r}")


@dataclass(frozen=True)
class EventMessage:
    """A server-pushed subscription event (``msf_change`` today)."""

    event: str
    fields: Mapping[str, object] = field(default_factory=dict)


Response = Union[OkResponse, ErrorResponse]
