"""The replicated forest view: zero-round reads of post-batch state.

After every applied cut the reducer captures a :class:`ForestView` — an
immutable snapshot of the minimum spanning forest (edge set, total
weight, connected-component labels) plus a monotone ``version`` and the
logical ``tick`` it became current.  Point queries ("in forest?",
"component of v?", "weight?") answer from this replica, exactly the
ROADMAP item-1 contract: reads never touch the charged distributed query
paths, so they cost zero rounds and cannot perturb the ledger digest the
determinism gate compares.

Successive views diff cheaply (:meth:`ForestView.diff`), which is what
the ``msf_change`` subscription channel broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Tuple

Pair = Tuple[int, int]


def _component_labels(
    vertices: List[int], edges: Mapping[Pair, float]
) -> Dict[int, int]:
    """Union-find over the forest; each vertex labelled by its
    component's minimum vertex id (a canonical, order-independent label)."""
    parent: Dict[int, int] = {v: v for v in vertices}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for (u, v) in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            # Union by label so every root is its component's minimum.
            if ru < rv:
                parent[rv] = ru
            else:
                parent[ru] = rv
    return {v: find(v) for v in vertices}


@dataclass(frozen=True)
class ForestView:
    """One immutable replica of the forest, stamped with version + tick."""

    version: int
    tick: int
    weight: float
    edges: Mapping[Pair, float]
    component: Mapping[int, int]
    n_components: int
    edge_set: FrozenSet[Pair] = field(default=frozenset())

    @classmethod
    def capture(cls, dm, version: int, tick: int) -> "ForestView":
        """Snapshot ``dm``'s forest (host-side reads only; zero rounds)."""
        edges = {(e.u, e.v): e.weight for e in dm.msf_edges()}
        vertices = sorted(dm.shadow.vertices())
        component = _component_labels(vertices, edges)
        return cls(
            version=version,
            tick=tick,
            weight=sum(edges.values()),
            edges=edges,
            component=component,
            n_components=len(set(component.values())),
            edge_set=frozenset(edges),
        )

    def in_forest(self, u: int, v: int) -> bool:
        pair = (u, v) if u <= v else (v, u)
        return pair in self.edges

    def has_vertex(self, v: int) -> bool:
        return v in self.component

    def component_of(self, v: int) -> int:
        return self.component[v]

    def same_component(self, u: int, v: int) -> bool:
        return self.component[u] == self.component[v]

    def diff(self, newer: "ForestView") -> Tuple[
        List[Tuple[int, int, float]], List[Tuple[int, int]]
    ]:
        """``(added, removed)`` between self and a newer view, sorted.

        A re-weighted forest edge appears in both lists (removed at the
        old weight's pair, added with the new weight).
        """
        added = sorted(
            (u, v, newer.edges[(u, v)])
            for (u, v) in newer.edge_set
            if (u, v) not in self.edges or self.edges[(u, v)] != newer.edges[(u, v)]
        )
        removed = sorted(
            pair
            for pair in self.edge_set
            if pair not in newer.edges or newer.edges[pair] != self.edges[pair]
        )
        return [(u, v, w) for (u, v, w) in added], list(removed)

    def stats(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "tick": self.tick,
            "weight": self.weight,
            "forest_edges": len(self.edges),
            "components": self.n_components,
        }
