"""Round-accurate simulator for synchronous message-passing cluster models.

The simulator replaces the physical cluster (see DESIGN.md, substitution
table): machines are objects holding local state, and communication happens
in synchronous *super-steps*.  Each super-step declares the words flowing
over every ordered machine pair; the network converts that load into a
round count under the model's per-link capacity and records it in a
:class:`~repro.sim.metrics.Ledger`.

The paper's models differ only in bandwidth scaling (§4, Lenzen):

* k-machine — every ordered pair carries 1 word (Θ(log n) bits) per round;
* CONGESTED CLIQUE — the k = n special case, same per-link capacity;
* MPC — each machine sends/receives O(S) words per round in total
  (modelled by :class:`~repro.sim.network.MPCNetwork`).
"""

from repro.sim.message import (
    WORDS_COMPONENT_EDGE,
    WORDS_EDGE,
    WORDS_ET_EDGE,
    WORDS_ID,
    WORDS_UPDATE,
    Message,
)
from repro.sim.metrics import Ledger, PhaseStats
from repro.sim.machine import Machine
from repro.sim.network import (
    FaultHook,
    FaultOutcome,
    KMachineNetwork,
    MPCNetwork,
    Network,
    RetryWave,
)
from repro.sim.partition import (
    VertexPartition,
    EdgePartition,
    lexicographic_edge_partition,
    random_vertex_partition,
)
from repro.sim.program import MachineProgram, run_programs
from repro.sim.executor import parallel_local_map
from repro.sim.strict import (
    GuardedState,
    estimate_payload_words,
    strict_from_env,
)

__all__ = [
    "Message",
    "WORDS_ID",
    "WORDS_EDGE",
    "WORDS_ET_EDGE",
    "WORDS_UPDATE",
    "WORDS_COMPONENT_EDGE",
    "Ledger",
    "PhaseStats",
    "Machine",
    "Network",
    "KMachineNetwork",
    "MPCNetwork",
    "FaultHook",
    "FaultOutcome",
    "RetryWave",
    "VertexPartition",
    "EdgePartition",
    "random_vertex_partition",
    "lexicographic_edge_partition",
    "MachineProgram",
    "run_programs",
    "parallel_local_map",
    "GuardedState",
    "estimate_payload_words",
    "strict_from_env",
]
