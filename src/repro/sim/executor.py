"""Optional process-parallel execution of machine-local computation.

The reproduction's primary metric is communication rounds (see
DESIGN.md), which the simulator measures exactly regardless of how the
*local* computation is scheduled.  Python's GIL prevents faithful
shared-memory thread parallelism, but the machine-local steps — cycle
deletion, M'-membership scans, candidate labelling — are pure functions
of one machine's state and parallelize across processes.

:func:`parallel_local_map` runs one pure function per machine in a
process pool and is a drop-in for the sequential loop.  It exists to
demonstrate (and measure, in ``bench_parallel_local.py``) that the
simulator's local phase scales across cores; the protocol code keeps the
sequential loop by default because at bench scales fork+pickle overhead
dominates.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_worker_fn: Optional[Callable[[Any], Any]] = None


def _init_pool(fn: Callable[[Any], Any]) -> None:
    # simlint: disable=SIM002 process-pool plumbing: each worker process owns a private copy, no cross-machine sharing
    global _worker_fn
    _worker_fn = fn


def _call(arg: Any) -> Any:
    assert _worker_fn is not None
    return _worker_fn(arg)


def parallel_local_map(
    fn: Callable[[T], R],
    per_machine_inputs: Sequence[T],
    workers: Optional[int] = None,
    chunk: int = 1,
) -> List[R]:
    """Apply a pure function to each machine's input, in parallel.

    ``fn`` must be a module-level picklable function of one argument and
    must not touch shared state (it models one machine's local step).
    Falls back to a sequential map for a single worker or tiny inputs.
    """
    n = len(per_machine_inputs)
    if workers is None:
        workers = min(n, os.cpu_count() or 1)
    if workers <= 1 or n <= 1:
        return [fn(x) for x in per_machine_inputs]
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    with ctx.Pool(workers, initializer=_init_pool, initargs=(fn,)) as pool:
        return pool.map(_call, per_machine_inputs, chunksize=max(chunk, 1))
