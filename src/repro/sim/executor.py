"""Execution backends: how machine-local computation is scheduled.

The reproduction's primary metric is communication rounds (see
DESIGN.md), which the simulator measures exactly regardless of how the
*local* computation is scheduled.  An :class:`ExecutionBackend` names
one scheduling strategy; all of them are held to the same contract —
**byte-identical ledgers, digests and trace events** — enforced by the
cross-backend equivalence suite in ``tests/perf``:

* ``reference`` — the scalar in-process engine; per-edge Python loops,
  the ground truth every other backend is diffed against;
* ``inproc-columnar`` — the NumPy columnar engine of :mod:`repro.perf`
  (the production default);
* ``parallel`` — the columnar engine with the pure label kernels and
  message-plane load gauges dispatched to a pool of worker processes
  over ``multiprocessing.shared_memory`` arrays, with a barrier at every
  dispatch (see :mod:`repro.perf.parallel`).  Workers only ever compute
  pure functions of shared-memory columns; the parent applies every
  send, charge and fault decision in the same deterministic order as
  the in-process backends, so worker scheduling can never reach the
  wire.

Backend selection goes through :func:`resolve_backend` — explicit
``backend=`` argument, then ``fast=``, then a scenario's ``backend``
field, then the ``REPRO_BACKEND`` environment variable, then the
fast-path default.  The active backend for a dynamic scope is managed by
:func:`repro.perf.config.override_backend`.

:func:`parallel_local_map` (below) is the older per-machine process-pool
map; it remains for the local-phase scaling demonstration in
``bench_parallel_local.py``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

T = TypeVar("T")
R = TypeVar("R")


class KernelPoolLike(Protocol):
    """What the simulator needs from a shared-memory worker pool.

    Implemented by :class:`repro.perf.parallel.pool.KernelPool`; declared
    here so the mypy-strict simulator kernel needs no import of (and no
    dependency on) the parallel layer.  Every method is a *barrier*: it
    returns only once all workers finished their shard, so the caller
    observes one superstep-synchronous result regardless of worker
    scheduling.
    """

    @property
    def workers(self) -> int: ...

    def run_elementwise(
        self, kind: str, spec: Tuple[int, ...], labels: "np.ndarray[Any, Any]"
    ) -> "np.ndarray[Any, Any]": ...

    def run_split(
        self, spec: Tuple[int, ...], labels: "np.ndarray[Any, Any]"
    ) -> Tuple["np.ndarray[Any, Any]", "np.ndarray[Any, Any]"]: ...

    def plane_loads(
        self,
        src: "np.ndarray[Any, Any]",
        dst: "np.ndarray[Any, Any]",
        words: "np.ndarray[Any, Any]",
        k: int,
    ) -> "np.ndarray[Any, Any]": ...


class ExecutionBackend:
    """One way of executing machine-local computation.

    Subclasses pin ``name`` (the registry key), ``fast`` (whether the
    columnar plane math drives supersteps) and optionally a kernel pool.
    Backends are stateless from the simulator's point of view: the
    ledger/wire contract is identical across all of them.
    """

    name: str = "reference"
    fast: bool = False

    @property
    def workers(self) -> int:
        """Worker processes backing this backend (0 = in-process)."""
        return 0

    def kernel_pool(self) -> Optional[KernelPoolLike]:
        """The shared-memory kernel pool, or ``None`` to compute inline."""
        return None

    def close(self) -> None:
        """Release any worker processes/shared memory (idempotent)."""

    def describe(self) -> Dict[str, object]:
        """Metadata for bench/trace output (JSON-serializable)."""
        return {"name": self.name, "fast": self.fast, "workers": self.workers}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ReferenceBackend(ExecutionBackend):
    """The scalar in-process engine — the equivalence ground truth."""

    name = "reference"
    fast = False


class ColumnarBackend(ExecutionBackend):
    """The in-process NumPy columnar engine (production default)."""

    name = "inproc-columnar"
    fast = True


#: Accepted spellings per canonical backend name.
BACKEND_ALIASES: Dict[str, str] = {
    "reference": "reference",
    "scalar": "reference",
    "inproc-columnar": "inproc-columnar",
    "columnar": "inproc-columnar",
    "parallel": "parallel",
}

_instances: Dict[str, ExecutionBackend] = {}


def backend_names() -> List[str]:
    """Canonical backend names, stable order (reference first)."""
    return ["reference", "inproc-columnar", "parallel"]


def get_backend(name: str) -> ExecutionBackend:
    """The (cached) backend registered under ``name`` or an alias.

    Raises ``ValueError`` naming the known backends on an unknown name.
    The ``parallel`` backend is imported lazily so the in-process
    backends never pay for the multiprocessing machinery.
    """
    canonical = BACKEND_ALIASES.get(name.strip().lower())
    if canonical is None:
        known = ", ".join(sorted(BACKEND_ALIASES))
        raise ValueError(
            f"unknown execution backend {name!r} (known backends and "
            f"aliases: {known})"
        )
    inst = _instances.get(canonical)
    if inst is None:
        if canonical == "reference":
            inst = ReferenceBackend()
        elif canonical == "inproc-columnar":
            inst = ColumnarBackend()
        else:
            from repro.perf.parallel import ParallelBackend

            inst = ParallelBackend()
        # simlint: disable=SIM002 process-level backend registry cache, not simulated machine state; all backends charge identical ledgers
        _instances[canonical] = inst
    return inst


def backend_from_env() -> ExecutionBackend:
    """The backend the environment selects when nothing explicit does.

    ``REPRO_BACKEND`` wins; otherwise the fast-path default decides
    between the two in-process backends (``REPRO_FAST`` unset/on →
    columnar).
    """
    name = os.environ.get("REPRO_BACKEND")
    if name is not None and name.strip():
        return get_backend(name)
    from repro.perf.config import fast_path_enabled

    return get_backend("inproc-columnar" if fast_path_enabled() else "reference")


def resolve_backend(
    backend: Optional[str] = None,
    fast: Optional[bool] = None,
    scenario: Optional[str] = None,
) -> Optional[ExecutionBackend]:
    """Resolve the backend for a run; ``None`` means "defer to ambient".

    Precedence (highest first): the explicit ``backend`` argument, the
    explicit ``fast`` argument, the scenario's ``backend`` field, the
    ``REPRO_BACKEND`` environment variable.  When none of them pins a
    backend the result is ``None`` and the caller keeps today's dynamic
    behaviour: every operation consults the ambient config
    (:func:`repro.perf.config.current_backend`) at call time.
    """
    if backend is not None:
        return get_backend(backend)
    if fast is not None:
        return get_backend("inproc-columnar" if fast else "reference")
    if scenario is not None:
        return get_backend(scenario)
    name = os.environ.get("REPRO_BACKEND")
    if name is not None and name.strip():
        return get_backend(name)
    return None

_worker_fn: Optional[Callable[[Any], Any]] = None


def _init_pool(fn: Callable[[Any], Any]) -> None:
    # simlint: disable=SIM002 process-pool plumbing: each worker process owns a private copy, no cross-machine sharing
    global _worker_fn
    _worker_fn = fn


def _call(arg: Any) -> Any:
    assert _worker_fn is not None
    return _worker_fn(arg)


def parallel_local_map(
    fn: Callable[[T], R],
    per_machine_inputs: Sequence[T],
    workers: Optional[int] = None,
    chunk: int = 1,
) -> List[R]:
    """Apply a pure function to each machine's input, in parallel.

    ``fn`` must be a module-level picklable function of one argument and
    must not touch shared state (it models one machine's local step).
    Falls back to a sequential map for a single worker or tiny inputs.
    """
    n = len(per_machine_inputs)
    if workers is None:
        workers = min(n, os.cpu_count() or 1)
    if workers <= 1 or n <= 1:
        return [fn(x) for x in per_machine_inputs]
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    with ctx.Pool(workers, initializer=_init_pool, initargs=(fn,)) as pool:
        return pool.map(_call, per_machine_inputs, chunksize=max(chunk, 1))
