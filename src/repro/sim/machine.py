"""A machine: local state plus space accounting.

The k-machine model allows each machine O(max(m/k + Δ, k)) words of state
(§3, Theorem 6.1); the MPC model allows S words.  Machines track space as a
set of named *gauges* (e.g. "edges", "euler", "witness", "scratch") whose
sum is the current usage; the peak is recorded so benchmarks can check the
bound.  Enforcement is opt-in: set ``budget`` to raise on overflow.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import SpaceExceeded


class Machine:
    """One machine of the cluster."""

    __slots__ = ("mid", "store", "budget", "_gauges", "peak_words")

    def __init__(self, mid: int, budget: Optional[int] = None) -> None:
        self.mid = mid
        #: Free-form local state.  Only the machine's own protocol steps
        #: may read or write this; cross-machine access must go through
        #: network primitives (tests enforce this by convention).
        self.store: Dict[str, Any] = {}
        self.budget = budget
        self._gauges: Dict[str, int] = {}
        self.peak_words = 0

    # ------------------------------------------------------------------
    # space accounting
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, words: int) -> None:
        """Declare that the state named ``name`` currently occupies ``words``."""
        if words < 0:
            raise ValueError("gauge must be non-negative")
        if words == 0:
            self._gauges.pop(name, None)
        else:
            self._gauges[name] = words
        used = self.space_words
        if used > self.peak_words:
            self.peak_words = used
        if self.budget is not None and used > self.budget:
            raise SpaceExceeded(
                f"machine {self.mid}: {used} words used, budget {self.budget}"
            )

    def bump_gauge(self, name: str, delta: int) -> None:
        self.set_gauge(name, self._gauges.get(name, 0) + delta)

    def crash_reset(self) -> None:
        """Fail-stop wipe: volatile state and this incarnation's space
        ledger are lost; the budget survives (it is a model parameter,
        not machine state).  Used by the fault-injection layer
        (:mod:`repro.faults`) when a machine crashes — the restarted
        incarnation re-accounts its space from zero as it is restored."""
        self.store.clear()
        self._gauges.clear()
        self.peak_words = 0

    @property
    def space_words(self) -> int:
        return sum(self._gauges.values())

    def gauge(self, name: str) -> int:
        return self._gauges.get(name, 0)

    def __repr__(self) -> str:
        return f"Machine({self.mid}, space={self.space_words}, peak={self.peak_words})"
