"""Messages and word-size accounting.

The models measure communication in words of Θ(log n) bits.  Rather than
serializing Python objects, every message declares its size in words; the
constants below fix the cost of the payload shapes the algorithms use, so
round counts are reproducible and independent of Python object layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: One identifier (vertex id, machine id, component label, counter).
WORDS_ID = 1
#: One weighted edge (u, v, weight).
WORDS_EDGE = 3
#: One Euler-tour annotated edge: (u, v, weight, e_in, e_out, direction,
#: tour id, tour size) — the unit shipped by the §5/§6 protocols.
WORDS_ET_EDGE = 8
#: One update (kind, u, v, weight).
WORDS_UPDATE = 4
#: One contracted ("component") edge: (comp_u, comp_v, weight, u, v) — a
#: candidate edge of the §6.2 reduction, carrying its original endpoints.
WORDS_COMPONENT_EDGE = 5


@dataclass(frozen=True, slots=True)
class Message:
    """A point-to-point message inside one communication super-step.

    ``slots=True`` drops the per-instance ``__dict__``: the reference
    path allocates one ``Message`` per (src, dst) word batch, so the
    layout matters at bench scales (measured by ``tools/bench_run.py``).
    """

    src: int
    dst: int
    payload: Any
    words: int = field(default=WORDS_ID)

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise ValueError("message size must be positive")
        if self.src == self.dst:
            raise ValueError("self-messages are free; do not send them")
