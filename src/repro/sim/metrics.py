"""Cost ledger: rounds, messages, words, per-phase breakdowns.

Every communication super-step reports its cost here.  The benchmark
harness reads ledgers to regenerate the paper's complexity claims, so the
ledger is the single source of truth for "how many rounds did that take".
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List


@dataclass
class PhaseStats:
    """Aggregated cost of one named phase."""

    rounds: int = 0
    messages: int = 0
    words: int = 0
    calls: int = 0

    def add(self, rounds: int, messages: int, words: int) -> None:
        self.rounds += rounds
        self.messages += messages
        self.words += words
        self.calls += 1

    def merged(self, other: "PhaseStats") -> "PhaseStats":
        return PhaseStats(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            words=self.words + other.words,
            calls=self.calls + other.calls,
        )


class Ledger:
    """Accumulates communication cost, optionally split by nested phases."""

    def __init__(self) -> None:
        self.rounds = 0
        self.messages = 0
        self.words = 0
        self.phases: Dict[str, PhaseStats] = {}
        self._phase_stack: List[str] = []

    # ------------------------------------------------------------------
    def charge(self, rounds: int, messages: int = 0, words: int = 0) -> None:
        if rounds < 0 or messages < 0 or words < 0:
            raise ValueError("costs must be non-negative")
        self.rounds += rounds
        self.messages += messages
        self.words += words
        for name in self._phase_stack:
            self.phases.setdefault(name, PhaseStats()).add(rounds, messages, words)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all charges inside the block to ``name`` (nestable)."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    # ------------------------------------------------------------------
    def snapshot(self) -> "LedgerSnapshot":
        return LedgerSnapshot(self.rounds, self.messages, self.words)

    def since(self, snap: "LedgerSnapshot") -> "LedgerSnapshot":
        return LedgerSnapshot(
            self.rounds - snap.rounds,
            self.messages - snap.messages,
            self.words - snap.words,
        )

    def reset(self) -> None:
        self.rounds = 0
        self.messages = 0
        self.words = 0
        self.phases.clear()

    def report(self) -> str:
        lines = [f"total: rounds={self.rounds} messages={self.messages} words={self.words}"]
        for name in sorted(self.phases):
            s = self.phases[name]
            lines.append(
                f"  {name}: rounds={s.rounds} messages={s.messages} "
                f"words={s.words} calls={s.calls}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Ledger(rounds={self.rounds}, messages={self.messages}, words={self.words})"


@dataclass(frozen=True)
class LedgerSnapshot:
    """Immutable point-in-time view of a ledger (for per-batch deltas)."""

    rounds: int
    messages: int
    words: int

    def __sub__(self, other: "LedgerSnapshot") -> "LedgerSnapshot":
        return LedgerSnapshot(
            self.rounds - other.rounds,
            self.messages - other.messages,
            self.words - other.words,
        )
