"""Cost ledger: rounds, messages, words, per-phase breakdowns.

Every communication super-step reports its cost here.  The benchmark
harness reads ledgers to regenerate the paper's complexity claims, so the
ledger is the single source of truth for "how many rounds did that take".

Three instrumentation hooks ride along:

* the **charge transcript** — every ``charge`` call is appended to
  ``transcript`` as a ``(rounds, messages, words)`` tuple, and
  :meth:`Ledger.digest` hashes it.  Two runs are *ledger-equivalent* iff
  their digests match: same charges, same order, byte for byte.  This is
  the contract the columnar fast path (:mod:`repro.perf`) is held to.
* the **phase profiler** — attach a :class:`PhaseProfiler` to
  ``ledger.profiler`` and every ``ledger.phase(...)`` block additionally
  records wall time and allocation counts (``sys.getallocatedblocks``
  deltas), surfaced by the ``--profile`` CLI flag and the bench harness.
* the **trace recorder** — attach any :class:`TraceSink` (in practice a
  :class:`repro.trace.recorder.TraceRecorder`) to ``ledger.recorder``
  and every charge and phase boundary is reported as a structured
  event; the network layer additionally reports per-superstep load
  vectors and strict violations through the same sink.  Detached (the
  default) the hooks cost one attribute read per charge.
"""

from __future__ import annotations

import hashlib
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, Tuple


@dataclass
class PhaseStats:
    """Aggregated cost of one named phase."""

    rounds: int = 0
    messages: int = 0
    words: int = 0
    calls: int = 0

    def add(self, rounds: int, messages: int, words: int) -> None:
        self.rounds += rounds
        self.messages += messages
        self.words += words
        self.calls += 1

    def merged(self, other: "PhaseStats") -> "PhaseStats":
        return PhaseStats(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            words=self.words + other.words,
            calls=self.calls + other.calls,
        )


@dataclass
class ProfileStats:
    """Wall-clock and allocation cost of one named phase (inclusive)."""

    wall_s: float = 0.0
    alloc_blocks: int = 0
    calls: int = 0

    def add(self, wall_s: float, alloc_blocks: int) -> None:
        self.wall_s += wall_s
        self.alloc_blocks += alloc_blocks
        self.calls += 1


class PhaseProfiler:
    """Lightweight per-phase wall-time / allocation counters.

    Attached to a :class:`Ledger` (``ledger.profiler = PhaseProfiler()``)
    it samples ``time.perf_counter`` and ``sys.getallocatedblocks`` around
    every ``ledger.phase(...)`` block.  Nested phases each record their
    own inclusive cost.  Overhead is two clock reads per phase — cheap
    enough to leave on for whole benchmark runs.
    """

    def __init__(self) -> None:
        self.phases: Dict[str, ProfileStats] = {}

    def record(self, name: str, wall_s: float, alloc_blocks: int) -> None:
        self.phases.setdefault(name, ProfileStats()).add(wall_s, alloc_blocks)

    def report(self) -> str:
        lines = ["phase                         wall_s    allocs    calls"]
        for name in sorted(self.phases, key=lambda n: -self.phases[n].wall_s):
            s = self.phases[name]
            lines.append(
                f"{name:<28} {s.wall_s:>8.3f} {s.alloc_blocks:>9d} {s.calls:>8d}"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {
                "wall_s": s.wall_s,
                "alloc_blocks": float(s.alloc_blocks),
                "calls": float(s.calls),
            }
            for name, s in self.phases.items()
        }


class TraceSink(Protocol):
    """The hook protocol the simulator speaks to a trace recorder.

    Implemented by :class:`repro.trace.recorder.TraceRecorder`; declared
    here so the mypy-strict simulator kernel needs no import of (and no
    dependency on) the observability layer.  All hooks must be cheap
    and must not touch the ledger they observe.
    """

    def on_charge(
        self, rounds: int, messages: int, words: int,
        index: int, phases: Sequence[str],
    ) -> None: ...

    def on_phase_start(self, name: str, depth: int) -> None: ...

    def on_phase_end(
        self, name: str, depth: int, rounds: int, messages: int, words: int
    ) -> None: ...

    def on_superstep(
        self, engine: str, n_messages: int, n_words: int,
        send: Sequence[int], recv: Sequence[int], sizes: Dict[int, int],
    ) -> None: ...

    def on_violation(self, kind: str, message: str) -> None: ...

    def on_engine(self, feature: str, engine: str) -> None: ...

    def emit(self, etype: str, **fields: object) -> None: ...


class Ledger:
    """Accumulates communication cost, optionally split by nested phases."""

    def __init__(self) -> None:
        self.rounds = 0
        self.messages = 0
        self.words = 0
        self.phases: Dict[str, PhaseStats] = {}
        self._phase_stack: List[str] = []
        #: Ordered record of every charge — the equivalence contract.
        self.transcript: List[Tuple[int, int, int]] = []
        #: Optional wall-time/allocation profiler fed by :meth:`phase`.
        self.profiler: Optional[PhaseProfiler] = None
        #: Optional structured-event recorder (see :mod:`repro.trace`).
        self.recorder: Optional[TraceSink] = None

    # ------------------------------------------------------------------
    def charge(self, rounds: int, messages: int = 0, words: int = 0) -> None:
        if rounds < 0 or messages < 0 or words < 0:
            raise ValueError("costs must be non-negative")
        self.rounds += rounds
        self.messages += messages
        self.words += words
        self.transcript.append((rounds, messages, words))
        for name in self._phase_stack:
            self.phases.setdefault(name, PhaseStats()).add(rounds, messages, words)
        recorder = self.recorder
        if recorder is not None:
            recorder.on_charge(
                rounds, messages, words, len(self.transcript) - 1, self._phase_stack
            )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all charges inside the block to ``name`` (nestable)."""
        profiler = self.profiler
        recorder = self.recorder
        depth = len(self._phase_stack)
        if recorder is not None:
            recorder.on_phase_start(name, depth)
            r0, m0, w0 = self.rounds, self.messages, self.words
        if profiler is not None:
            # simlint: disable=SIM003 profiling instrumentation only; wall time never feeds back into round accounting
            t0 = time.perf_counter()
            a0 = sys.getallocatedblocks()
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()
            if profiler is not None:
                profiler.record(
                    name,
                    # simlint: disable=SIM003 profiling instrumentation only; wall time never feeds back into round accounting
                    time.perf_counter() - t0,
                    sys.getallocatedblocks() - a0,
                )
            if recorder is not None:
                recorder.on_phase_end(
                    name, depth,
                    self.rounds - r0, self.messages - m0, self.words - w0,
                )

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 over the charge transcript (order-sensitive).

        Two protocol runs with equal digests made byte-identical charge
        sequences — the strongest form of "same rounds/messages/words".
        """
        h = hashlib.sha256()
        for rounds, messages, words in self.transcript:
            h.update(f"{rounds},{messages},{words};".encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    def snapshot(self) -> "LedgerSnapshot":
        return LedgerSnapshot(self.rounds, self.messages, self.words)

    def since(self, snap: "LedgerSnapshot") -> "LedgerSnapshot":
        return LedgerSnapshot(
            self.rounds - snap.rounds,
            self.messages - snap.messages,
            self.words - snap.words,
        )

    def reset(self) -> None:
        self.rounds = 0
        self.messages = 0
        self.words = 0
        self.phases.clear()
        self.transcript.clear()

    def report(self) -> str:
        lines = [f"total: rounds={self.rounds} messages={self.messages} words={self.words}"]
        for name in sorted(self.phases):
            s = self.phases[name]
            lines.append(
                f"  {name}: rounds={s.rounds} messages={s.messages} "
                f"words={s.words} calls={s.calls}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Ledger(rounds={self.rounds}, messages={self.messages}, words={self.words})"


@dataclass(frozen=True)
class LedgerSnapshot:
    """Immutable point-in-time view of a ledger (for per-batch deltas)."""

    rounds: int
    messages: int
    words: int

    def __sub__(self, other: "LedgerSnapshot") -> "LedgerSnapshot":
        return LedgerSnapshot(
            self.rounds - other.rounds,
            self.messages - other.messages,
            self.words - other.words,
        )
