"""Synchronous networks: round accounting and message delivery.

A protocol is expressed as a sequence of *supersteps*.  In one superstep
every machine may inject any number of messages; the network computes how
many synchronous rounds that load needs under the model's capacity rule,
charges the ledger, and delivers everything.  This mirrors how round
complexity is argued in the paper: a communication pattern costs
``ceil(worst link load / capacity)`` rounds because the schedule within a
pattern is oblivious.

Crucially the network is *dumb*: it never reroutes.  Load-balancing tricks
(the Rerouting Lemma, Lenzen routing) live in :mod:`repro.comm` as explicit
multi-superstep protocols, so their O(1)/O(B/k) guarantees are measured,
not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.errors import BandwidthExceeded, StrictModeViolation
from repro.sim.machine import Machine
from repro.sim.message import Message
from repro.sim.metrics import Ledger
from repro.sim.plane import MessagePlane
from repro.sim.strict import (
    EntropyGuard,
    check_message_words,
    strict_from_env,
    violation_kind,
)


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class RetryWave:
    """One retransmission wave of a faulty superstep.

    Produced by a :class:`FaultHook` when messages were dropped on the
    wire: the wave's per-pair load is charged as additional rounds under
    the ``fault-retry`` ledger phase, so recovery overhead is measured
    in the same currency as the protocol itself.
    """

    pair_words: Dict[Tuple[int, int], int]
    n_messages: int
    n_words: int


@dataclass
class FaultOutcome:
    """What a fault hook decided for one superstep.

    ``wire`` is the message multiset that actually occupied links
    (duplicates included, messages from crashed machines excluded) — the
    load the main charge is computed from.  ``deliver`` is the subset
    that ultimately reaches inboxes, in original send order (receiver
    reassembly; duplicates deduplicated, black-holed messages removed).
    ``retries`` are the retransmission waves needed to get dropped
    messages through, each charged separately after the main charge.
    """

    wire: List[Message]
    deliver: List[Message]
    retries: List[RetryWave] = field(default_factory=list)


class FaultHook(Protocol):
    """The hook protocol the network speaks to a fault injector.

    Implemented by :class:`repro.faults.injector.FaultInjector`; declared
    here so the mypy-strict simulator kernel needs no import of (and no
    dependency on) the fault layer.  ``enabled`` must be cheap: it is
    consulted once per superstep, and while it returns False the network
    takes its unmodified code path — byte-identical ledgers, transcripts
    and inboxes.
    """

    @property
    def enabled(self) -> bool: ...

    def intercept(self, messages: List[Message], net: "Network") -> FaultOutcome: ...


class Network:
    """Base synchronous network over ``k`` machines with a shared ledger.

    ``strict=True`` (or the ``REPRO_STRICT=1`` environment variable)
    arms the sanitizer checks of :mod:`repro.sim.strict`: honest message
    word costs, round conservation, and no hidden global-RNG use.
    Violations raise :class:`~repro.errors.StrictModeViolation` and are
    counted in ``strict_violations``.
    """

    def __init__(self, k: int, ledger: Optional[Ledger] = None,
                 machine_budget: Optional[int] = None,
                 strict: Optional[bool] = None) -> None:
        if k < 1:
            raise ValueError("need at least one machine")
        self.k = k
        self.ledger = ledger if ledger is not None else Ledger()
        self.machines: List[Machine] = [Machine(i, budget=machine_budget) for i in range(k)]
        #: Cumulative words delivered *into* each machine — the quantity
        #: the Theorem 7.1 information argument bounds from below.
        self.ingress_words: List[int] = [0] * k
        self.egress_words: List[int] = [0] * k
        self.strict = strict_from_env() if strict is None else strict
        self.strict_violations = 0
        self._entropy_guard: Optional[EntropyGuard] = (
            EntropyGuard() if self.strict else None
        )
        #: Optional fault-injection hook (see :mod:`repro.faults`).  None
        #: (the default) and a disabled hook both cost one attribute read
        #: per superstep and leave the wire untouched.
        self.faults: Optional[FaultHook] = None

    # -- model-specific ------------------------------------------------
    def rounds_for_load(
        self, pair_words: Dict[Tuple[int, int], int]
    ) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def relay_multiplicity(self, words: int) -> int:
        """How many ``words``-sized broadcasts one relay machine can emit
        per round without exceeding its egress budget.  1 in the
        k-machine model (per-link words/round is the binding limit); up
        to S/((k-1)·words) in MPC.  Used by the Rerouting Lemma scheduler
        to fill the available bandwidth in either model."""
        return 1

    # -- generic machinery ----------------------------------------------
    def superstep(self, messages: Iterable[Message]) -> Dict[int, List[Tuple[int, Any]]]:
        """Deliver ``messages``; charge the rounds their load requires.

        Returns per-destination inboxes as ``{dst: [(src, payload), ...]}``
        sorted by source machine for determinism.  An empty superstep is
        free (no rounds charged).
        """
        msgs = list(messages)
        if not msgs:
            return {}
        faults = self.faults
        outcome: Optional[FaultOutcome] = None
        if faults is not None and faults.enabled:
            outcome = faults.intercept(msgs, self)
            msgs = outcome.wire
            if not msgs:
                # Every message originated at a crashed machine: nothing
                # reached the wire, nothing is charged or delivered.
                return {}
        if self.strict:
            self._strict_pre_superstep(msgs)
        pair_words: Dict[Tuple[int, int], int] = {}
        n_msgs = 0
        n_words = 0
        for m in msgs:
            self._check_endpoint(m.src)
            self._check_endpoint(m.dst)
            pair_words[(m.src, m.dst)] = pair_words.get((m.src, m.dst), 0) + m.words
            n_msgs += 1
            n_words += m.words
            self.ingress_words[m.dst] += m.words
            self.egress_words[m.src] += m.words
        recorder = self.ledger.recorder
        if recorder is not None:
            send = [0] * self.k
            recv = [0] * self.k
            sizes: Dict[int, int] = {}
            for m in msgs:
                send[m.src] += m.words
                recv[m.dst] += m.words
                sizes[m.words] = sizes.get(m.words, 0) + 1
            recorder.on_superstep("scalar", n_msgs, n_words, send, recv, sizes)
        rounds = self.rounds_for_load(pair_words)
        if self.strict and n_words > 0 and rounds < 1:
            self._strict_violation(
                f"superstep moved {n_words} word(s) but "
                f"{type(self).__name__}.rounds_for_load charged {rounds} rounds"
            )
        self.ledger.charge(rounds, n_msgs, n_words)
        deliver = msgs
        if outcome is not None:
            self._charge_retries(outcome.retries)
            deliver = outcome.deliver
        inboxes: Dict[int, List[Tuple[int, Any]]] = {}
        for m in sorted(deliver, key=lambda m: (m.dst, m.src)):
            inboxes.setdefault(m.dst, []).append((m.src, m.payload))
        return inboxes

    def _charge_retries(self, retries: Sequence[RetryWave]) -> None:
        """Charge each retransmission wave under the ``fault-retry`` phase.

        A wave occupies at least one round even if its load would round
        down — retransmission happens after the original barrier, so it
        cannot hide inside the superstep it repairs.
        """
        for wave in retries:
            rounds = max(1, self.rounds_for_load(wave.pair_words))
            with self.ledger.phase("fault-retry"):
                self.ledger.charge(rounds, wave.n_messages, wave.n_words)

    def superstep_plane(self, plane: MessagePlane) -> Dict[int, List[Tuple[int, Any]]]:
        """Columnar twin of :meth:`superstep`: same charges, array math.

        Per-pair loads, ingress/egress gauges and message/word totals are
        computed with ``np.bincount`` instead of a Python accumulation
        loop, then fed through the **same** ``rounds_for_load`` — so the
        ledger's charge transcript is byte-identical to delivering the
        equivalent ``Message`` list.  Returns the same sorted inboxes.
        """
        n = len(plane)
        if n == 0:
            return {}
        faults = self.faults
        if faults is not None and faults.enabled:
            # Fault injection is a testing layer: route the plane through
            # the scalar path so drop/duplicate/crash decisions stay
            # per-message.  Charges are identical by the plane/scalar
            # equivalence contract; only the recorder's ``engine`` tag
            # reads "scalar" while faults are being injected.
            src_l = plane.src.tolist()
            dst_l = plane.dst.tolist()
            words_l = plane.words.tolist()
            return self.superstep(
                Message(src_l[i], dst_l[i], plane.payloads[i], words_l[i])
                for i in range(n)
            )
        if self.strict:
            self._strict_pre_plane(plane)
        src, dst, words = plane.src, plane.dst, plane.words
        bad = (src < 0) | (src >= self.k) | (dst < 0) | (dst >= self.k)
        if bool(bad.any()):
            i = int(np.argmax(bad))
            offender = int(src[i]) if not 0 <= int(src[i]) < self.k else int(dst[i])
            raise BandwidthExceeded(f"machine id {offender} outside [0, {self.k})")
        load_matrix = self._plane_load_matrix(src, dst, words)
        nz_src, nz_dst = np.nonzero(load_matrix)
        pair_words: Dict[Tuple[int, int], int] = {
            (int(s), int(d)): int(load_matrix[s, d])
            for s, d in zip(nz_src.tolist(), nz_dst.tolist())
        }
        n_words = int(load_matrix.sum())
        in_words = load_matrix.sum(axis=0)
        out_words = load_matrix.sum(axis=1)
        for m in np.flatnonzero(in_words).tolist():
            self.ingress_words[m] += int(in_words[m])
        for m in np.flatnonzero(out_words).tolist():
            self.egress_words[m] += int(out_words[m])
        recorder = self.ledger.recorder
        if recorder is not None:
            size_vals, size_counts = np.unique(words, return_counts=True)
            recorder.on_superstep(
                "columnar", n, n_words,
                [int(w) for w in out_words], [int(w) for w in in_words],
                dict(zip((int(w) for w in size_vals),
                         (int(c) for c in size_counts))),
            )
        rounds = self.rounds_for_load(pair_words)
        if self.strict and n_words > 0 and rounds < 1:
            self._strict_violation(
                f"superstep moved {n_words} word(s) but "
                f"{type(self).__name__}.rounds_for_load charged {rounds} rounds"
            )
        self.ledger.charge(rounds, n, n_words)
        inboxes: Dict[int, List[Tuple[int, Any]]] = {}
        payloads = plane.payloads
        src_list = src.tolist()
        dst_list = dst.tolist()
        for i in np.lexsort((src, dst)).tolist():
            inboxes.setdefault(dst_list[i], []).append((src_list[i], payloads[i]))
        return inboxes

    def _plane_load_matrix(self, src: Any, dst: Any, words: Any) -> Any:
        """Per-(src, dst) word loads as a dense ``(k, k)`` int64 matrix.

        Large planes are offloaded to the ``parallel`` backend's worker
        pool (each worker bincounts a shard, the parent sums the shards
        in fixed order); the inline twin is the same exact int64
        accumulation.  Every charge, gauge and pair load downstream is
        derived from this one matrix, so the transcript is identical
        whichever side computed it.
        """
        from repro.perf import config

        if words.size >= config.PARALLEL_MIN_ROWS and config.parallel_path_enabled():
            pool = config.parallel_kernels()
            if pool is not None:
                return pool.plane_loads(src, dst, words, self.k)
        pair = src * self.k + dst
        loads = np.bincount(pair, weights=words, minlength=self.k * self.k)
        return loads.astype(np.int64).reshape(self.k, self.k)

    def broadcast(self, src: int, payload: Any, words: int) -> None:
        """One machine sends the same ``words`` over all its links."""
        from repro.perf.config import fast_path_enabled

        if fast_path_enabled():
            self.superstep_plane(MessagePlane.fanout([(src, payload, words)], self.k))
        else:
            self.superstep(
                Message(src, dst, payload, words)
                for dst in range(self.k)
                if dst != src
            )

    def charge_rounds(self, rounds: int) -> None:
        """Charge rounds with no messages (e.g. synchronization barriers)."""
        self.ledger.charge(rounds)

    def _check_endpoint(self, mid: int) -> None:
        if not 0 <= mid < self.k:
            raise BandwidthExceeded(f"machine id {mid} outside [0, {self.k})")

    # -- strict mode -----------------------------------------------------
    def _count_violation(self, exc: StrictModeViolation) -> None:
        """Count a violation and surface it to an attached trace recorder."""
        self.strict_violations += 1
        recorder = self.ledger.recorder
        if recorder is not None:
            recorder.on_violation(violation_kind(exc), str(exc))

    def _strict_violation(self, message: str) -> None:
        exc = StrictModeViolation(message, kind="round-conservation")
        self._count_violation(exc)
        raise exc

    def _strict_pre_superstep(self, msgs: List[Message]) -> None:
        guard = self._entropy_guard
        if guard is not None:
            try:
                guard.check("this superstep")
            except StrictModeViolation as exc:
                self._count_violation(exc)
                raise
        for m in msgs:
            try:
                check_message_words(m.src, m.dst, m.payload, m.words)
            except StrictModeViolation as exc:
                self._count_violation(exc)
                raise

    def _strict_pre_plane(self, plane: MessagePlane) -> None:
        guard = self._entropy_guard
        if guard is not None:
            try:
                guard.check("this superstep")
            except StrictModeViolation as exc:
                self._count_violation(exc)
                raise
        src = plane.src.tolist()
        dst = plane.dst.tolist()
        words = plane.words.tolist()
        for i, payload in enumerate(plane.payloads):
            try:
                check_message_words(src[i], dst[i], payload, words[i])
            except StrictModeViolation as exc:
                self._count_violation(exc)
                raise

    def resync_entropy(self) -> None:
        """Accept global-RNG use that happened *outside* protocol code.

        Call after intentionally consuming global randomness between
        supersteps (e.g. test scaffolding); protocols themselves must
        not need this.
        """
        if self._entropy_guard is not None:
            self._entropy_guard.resync()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k}, {self.ledger!r})"


class KMachineNetwork(Network):
    """The k-machine / CONGESTED-CLIQUE communication rule.

    Every ordered machine pair carries ``words_per_round`` words (i.e.
    Θ(log n) bits) per round; the cost of a superstep is the worst
    per-pair load.  The CONGESTED CLIQUE is this network with k = n.
    """

    def __init__(
        self,
        k: int,
        words_per_round: int = 1,
        ledger: Optional[Ledger] = None,
        machine_budget: Optional[int] = None,
        strict: Optional[bool] = None,
    ) -> None:
        super().__init__(k, ledger, machine_budget, strict=strict)
        if words_per_round < 1:
            raise ValueError("words_per_round must be >= 1")
        self.words_per_round = words_per_round

    def rounds_for_load(self, pair_words: Dict[Tuple[int, int], int]) -> int:
        worst = max(pair_words.values(), default=0)
        return _ceil_div(worst, self.words_per_round)


class MPCNetwork(Network):
    """The MPC communication rule: per-machine total I/O of S words/round.

    A machine may talk to anyone, but its aggregate send and aggregate
    receive volumes are each capped at ``space`` words per round (§3).
    """

    def __init__(
        self,
        k: int,
        space: int,
        ledger: Optional[Ledger] = None,
        enforce_budget: bool = True,
        strict: Optional[bool] = None,
    ) -> None:
        super().__init__(
            k, ledger, machine_budget=space if enforce_budget else None, strict=strict
        )
        if space < 1:
            raise ValueError("space must be >= 1")
        self.space = space

    def relay_multiplicity(self, words: int) -> int:
        if self.k <= 1:
            return 1
        return max(1, self.space // max(1, (self.k - 1) * words))

    def rounds_for_load(self, pair_words: Dict[Tuple[int, int], int]) -> int:
        out: Dict[int, int] = {}
        inc: Dict[int, int] = {}
        for (src, dst), w in pair_words.items():
            out[src] = out.get(src, 0) + w
            inc[dst] = inc.get(dst, 0) + w
        worst = max(list(out.values()) + list(inc.values()), default=0)
        return _ceil_div(worst, self.space)
