"""Graph partitioning: random vertex partition (k-machine) and
lexicographic edge partition (MPC, §8).

* k-machine: each vertex lands on a uniformly random machine; an edge is
  stored on *both* endpoint machines (§3 "Graph distribution").
* MPC: every edge is duplicated into its two directed copies, the copies
  are sorted lexicographically and cut into contiguous chunks of size at
  most S, so each vertex occupies a contiguous run of machines and has a
  well-defined *leader machine* (the first of the run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.generators import RngLike, as_rng
from repro.graphs.graph import WeightedGraph


@dataclass
class VertexPartition:
    """Assignment of vertices to machines in the random-vertex-partition model.

    ``edge_machines`` is a hot lookup (every graph edge consults it on
    every routing decision), so its results are memoized.  The cache is
    invalidation-safe: it is keyed to ``len(machine_of)``, so any
    size-changing mutation of the assignment — :meth:`add_vertex`,
    :meth:`remove_vertex`, or even a direct ``del`` — flushes it before
    the next lookup.  (Reassigning an existing vertex in place is not a
    supported operation anywhere in the codebase.)
    """

    k: int
    machine_of: Dict[int, int]
    vertices_of: List[List[int]] = field(default_factory=list)
    _edge_cache: Dict[Tuple[int, int], Tuple[int, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _cache_len: int = field(default=-1, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.vertices_of:
            self.vertices_of = [[] for _ in range(self.k)]
            for v, m in sorted(self.machine_of.items()):
                self.vertices_of[m].append(v)

    def home(self, v: int) -> int:
        """The machine hosting vertex ``v``."""
        return self.machine_of[v]

    def edge_machines(self, u: int, v: int) -> Tuple[int, ...]:
        """The (one or two) machines storing edge (u, v)."""
        if len(self.machine_of) != self._cache_len:
            self._edge_cache.clear()
            self._cache_len = len(self.machine_of)
        key = (u, v) if u <= v else (v, u)
        got = self._edge_cache.get(key)
        if got is None:
            mu, mv = self.machine_of[u], self.machine_of[v]
            got = (mu,) if mu == mv else (mu, mv)
            self._edge_cache[key] = got
        return got

    def add_vertex(self, v: int, machine: int) -> None:
        if v in self.machine_of:
            raise ValueError(f"vertex {v} already placed")
        self.machine_of[v] = machine
        self.vertices_of[machine].append(v)

    def remove_vertex(self, v: int) -> None:
        """Unplace ``v`` and flush the edge-machine cache."""
        machine = self.machine_of.pop(v)
        self.vertices_of[machine].remove(v)
        self._edge_cache.clear()
        self._cache_len = len(self.machine_of)


def random_vertex_partition(
    vertices: Sequence[int], k: int, rng: RngLike = None
) -> VertexPartition:
    """Uniform random vertex partition over ``k`` machines."""
    rng = as_rng(rng)
    vs = sorted(vertices)
    assignment = rng.integers(0, k, size=len(vs))
    return VertexPartition(k, {v: int(m) for v, m in zip(vs, assignment)})


def round_robin_vertex_partition(vertices: Sequence[int], k: int) -> VertexPartition:
    """Deterministic v mod k partition (useful for reproducible tests)."""
    vs = sorted(vertices)
    return VertexPartition(k, {v: v % k for v in vs})


@dataclass
class EdgePartition:
    """Lexicographic directed-edge partition for the MPC model (§8).

    ``slots_of[m]`` lists the directed copies (tail, head) stored on
    machine m; ``vertex_range[v] = (first_machine, last_machine)`` is the
    contiguous run of machines holding copies with tail v, and
    ``leader[v]`` is the first machine of that run (vertices with no edges
    get a round-robin leader so every vertex has one).
    """

    k: int
    space: int
    slots_of: List[List[Tuple[int, int]]]
    vertex_range: Dict[int, Tuple[int, int]]
    leader: Dict[int, int]

    def machines_of_vertex(self, v: int) -> List[int]:
        if v not in self.vertex_range:
            return [self.leader[v]]
        lo, hi = self.vertex_range[v]
        return list(range(lo, hi + 1))


def lexicographic_edge_partition(
    graph: WeightedGraph, k: int, space: Optional[int] = None
) -> EdgePartition:
    """Duplicate, sort and chunk the edges of ``graph`` over ``k`` machines."""
    directed: List[Tuple[int, int]] = []
    for e in graph.edges():
        directed.append((e.u, e.v))
        directed.append((e.v, e.u))
    directed.sort()
    if space is None:
        space = max(1, -(-len(directed) // k))
    slots_of: List[List[Tuple[int, int]]] = [[] for _ in range(k)]
    vertex_range: Dict[int, Tuple[int, int]] = {}
    for idx, (u, v) in enumerate(directed):
        m = min(idx // space, k - 1)
        slots_of[m].append((u, v))
        lo, hi = vertex_range.get(u, (m, m))
        vertex_range[u] = (min(lo, m), max(hi, m))
    leader: Dict[int, int] = {}
    for i, v in enumerate(sorted(graph.vertices())):
        if v in vertex_range:
            leader[v] = vertex_range[v][0]
        else:
            leader[v] = i % k
    return EdgePartition(k, space, slots_of, vertex_range, leader)
