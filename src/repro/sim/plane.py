"""Columnar message batches: one superstep as NumPy arrays.

A :class:`MessagePlane` is the columnar twin of a list of
:class:`~repro.sim.message.Message` objects: parallel ``src``/``dst``/
``words`` ``int64`` arrays plus an aligned payload list.  It exists so
hot communication patterns (broadcast fan-outs, relay hops) can skip the
per-word Python object churn of the reference path while charging the
**exact same ledger**: :meth:`Network.superstep_plane
<repro.sim.network.Network.superstep_plane>` computes per-pair loads
with ``np.bincount`` and then routes the result through the same
``rounds_for_load`` as the per-``Message`` path, so the charge
transcript is byte-identical by construction.

Validation mirrors ``Message.__post_init__`` (no self-messages, positive
word counts) at plane construction time, and strict mode runs the same
per-message honesty checks as the reference path.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

import numpy as np

from repro.sim.message import Message

IntArray = Any  # np.ndarray[int64]; kept loose for the strict-typed sim layer


class MessagePlane:
    """A batch of point-to-point messages in columnar (structure-of-arrays) form."""

    __slots__ = ("src", "dst", "words", "payloads")

    def __init__(
        self,
        src: IntArray,
        dst: IntArray,
        words: IntArray,
        payloads: Sequence[Any],
    ) -> None:
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.words = np.asarray(words, dtype=np.int64)
        n = len(self.src)
        if len(self.dst) != n or len(self.words) != n or len(payloads) != n:
            raise ValueError("plane columns must have equal length")
        self.payloads: List[Any] = list(payloads)
        if n:
            # Same contract as Message.__post_init__, checked columnar-ly.
            if bool((self.words <= 0).any()):
                raise ValueError("message size must be positive")
            if bool((self.src == self.dst).any()):
                raise ValueError("self-messages are free; do not send them")

    def __len__(self) -> int:
        return len(self.src)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "MessagePlane":
        zero = np.empty(0, dtype=np.int64)
        return cls(zero, zero.copy(), zero.copy(), [])

    @classmethod
    def from_messages(cls, messages: Iterable[Message]) -> "MessagePlane":
        msgs = list(messages)
        return cls(
            np.fromiter((m.src for m in msgs), dtype=np.int64, count=len(msgs)),
            np.fromiter((m.dst for m in msgs), dtype=np.int64, count=len(msgs)),
            np.fromiter((m.words for m in msgs), dtype=np.int64, count=len(msgs)),
            [m.payload for m in msgs],
        )

    @classmethod
    def point_to_point(
        cls, triples: Sequence[Any]
    ) -> "MessagePlane":
        """Build from ``(src, dst, payload, words)`` tuples."""
        return cls(
            np.fromiter((t[0] for t in triples), dtype=np.int64, count=len(triples)),
            np.fromiter((t[1] for t in triples), dtype=np.int64, count=len(triples)),
            np.fromiter((t[3] for t in triples), dtype=np.int64, count=len(triples)),
            [t[2] for t in triples],
        )

    @classmethod
    def fanout(
        cls, requests: Sequence[Any], k: int
    ) -> "MessagePlane":
        """All-destination broadcasts: ``(src, payload, words)`` requests.

        Each request becomes ``k - 1`` messages (one per machine except
        the source) — the exact multiset the reference path's generator
        expressions produce, without materializing ``Message`` objects.
        """
        n = len(requests)
        if n == 0 or k <= 1:
            return cls.empty()
        srcs = np.fromiter((r[0] for r in requests), dtype=np.int64, count=n)
        wrds = np.fromiter((r[2] for r in requests), dtype=np.int64, count=n)
        src = np.repeat(srcs, k - 1)
        words = np.repeat(wrds, k - 1)
        # Destinations 0..k-1 minus the source, preserved in ascending
        # order exactly like ``for dst in range(k) if dst != src``.
        grid = np.tile(np.arange(k - 1, dtype=np.int64), n)
        dst = grid + (grid >= srcs.repeat(k - 1))
        payloads: List[Any] = []
        for r in requests:
            payloads.extend([r[1]] * (k - 1))
        return cls(src, dst, words, payloads)

    # ------------------------------------------------------------------
    def total_words(self) -> int:
        return int(self.words.sum()) if len(self) else 0

    def __repr__(self) -> str:
        return f"MessagePlane(n={len(self)}, words={self.total_words()})"
