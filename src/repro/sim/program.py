"""Message-driven per-machine programs.

The protocol code in :mod:`repro.core` is written coordinator-style: one
code path computes what every machine does, machine-local state is only
touched through per-machine objects, and all cross-machine data flows
through supersteps.  That style is compact and auditable, but a fair
question is whether the protocols really decompose into autonomous
per-machine programs.  This module provides the alternative execution
model — machines as reactive state machines — and
:mod:`tests.sim.test_program` re-implements distributed Borůvka in it,
reproducing the reference MSF with comparable round counts.

A :class:`MachineProgram` sees only its own state and its inbox; the
:func:`run_programs` loop advances true synchronous rounds: all outboxes
of round t are delivered at round t+1, charged through the same
``Network.superstep`` accounting as everything else.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.sim.message import Message
from repro.sim.network import Network
from repro.sim.strict import guard_states

#: An inbox: list of (source machine, payload).
Inbox = List[Tuple[int, Any]]
#: An outbox: list of (destination machine, payload, words).
Outbox = List[Tuple[int, Any, int]]


class MachineProgram:
    """One machine's reactive protocol code.

    Subclasses override :meth:`on_start` (produce the first outbox) and
    :meth:`on_round` (consume an inbox, produce the next outbox, or
    return None to signal local termination).  The program may read and
    write only ``self.state`` — its machine-local memory.
    """

    def __init__(
        self, mid: int, k: int, state: Optional[Dict[str, Any]] = None
    ) -> None:
        self.mid = mid
        self.k = k
        self.state: Dict[str, Any] = state if state is not None else {}
        self.done = False

    def on_start(self) -> Outbox:
        return []

    def on_round(self, inbox: Inbox) -> Optional[Outbox]:  # pragma: no cover
        raise NotImplementedError

    # -- convenience ----------------------------------------------------
    def broadcast(self, payload: Any, words: int) -> Outbox:
        return [(dst, payload, words) for dst in range(self.k) if dst != self.mid]


def run_programs(
    net: Network,
    programs: Sequence[MachineProgram],
    max_rounds: int = 10_000,
) -> int:
    """Drive the programs to quiescence; returns the number of supersteps.

    Termination: a superstep where every program has signalled done and
    no messages are in flight.  Exceeding ``max_rounds`` supersteps
    raises (a livelocked protocol is a bug, not a hang).

    Under a strict network (``Network(strict=True)`` / ``REPRO_STRICT=1``)
    every program's state dict is wrapped so that reads or writes from
    any other machine's callback raise
    :class:`~repro.errors.StrictModeViolation` — machine isolation is
    enforced dynamically, not just by convention.
    """
    if len(programs) != net.k:
        raise ProtocolError("need exactly one program per machine")
    active = guard_states(programs) if getattr(net, "strict", False) else None

    def _as_machine(
        p: MachineProgram, fn: Callable[..., Optional[Outbox]], *args: Any
    ) -> Optional[Outbox]:
        if active is None:
            return fn(*args)
        active.mid = p.mid
        try:
            return fn(*args)
        finally:
            active.mid = None

    outboxes: List[Outbox] = [list(_as_machine(p, p.on_start) or []) for p in programs]
    supersteps = 0
    # simlint: disable=SIM004 this loop IS the round structure: supersteps are the measured quantity and are returned to the caller
    while True:
        msgs = [
            Message(p.mid, dst, payload, words)
            for p, out in zip(programs, outboxes)
            for (dst, payload, words) in out
        ]
        in_flight = bool(msgs)
        if not in_flight and all(p.done for p in programs):
            return supersteps
        inboxes = net.superstep(msgs)
        supersteps += 1
        if supersteps > max_rounds:
            raise ProtocolError(f"programs did not quiesce in {max_rounds} supersteps")
        new_outboxes: List[Outbox] = []
        for p in programs:
            if p.done and p.mid not in inboxes:
                new_outboxes.append([])
                continue
            out = _as_machine(p, p.on_round, inboxes.get(p.mid, []))
            if out is None:
                p.done = True
                new_outboxes.append([])
            else:
                p.done = False
                new_outboxes.append(list(out))
        outboxes = new_outboxes
