"""Runtime strict mode: sanitizer-style checks for the simulator.

The static analyzer (:mod:`repro.analysis`) catches the *patterns*
through which model violations enter the code; this module catches the
*behaviors* the AST cannot see.  With ``Network(strict=True)`` — or the
``REPRO_STRICT=1`` environment variable — every superstep additionally
verifies:

* **declared word costs are honest** — a message whose payload carries
  more than twice as many distinct scalars as its declared ``words``
  understates the load (the factor-2 slack absorbs routing metadata and
  shared tuple structure, both Θ(1) per message and so free in words of
  Θ(log n) bits);
* **rounds are conserved** — a superstep that moves words must charge at
  least one round;
* **no hidden entropy** — the global :mod:`random` and legacy
  ``numpy.random`` states must not advance between supersteps: protocols
  must thread explicit seeded generators, or round counts silently stop
  being reproducible.

:func:`guard_states` additionally wraps each
:class:`~repro.sim.program.MachineProgram`'s state dict so that any read
or write from a machine other than the owner raises — the dynamic twin
of rule ``SIM002``.

Violations raise :class:`~repro.errors.StrictModeViolation` immediately
(fail-fast, like a sanitizer) and are counted on the network in
``strict_violations`` for post-mortem assertions.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import StrictModeViolation

#: Stable machine-readable categories for strict violations; every
#: raiser passes one as ``StrictModeViolation(..., kind=...)`` and the
#: trace layer surfaces it in typed ``violation`` events.
VIOLATION_KINDS = (
    "undercharged-words",   # declared word cost understates the payload
    "round-conservation",   # words moved for zero charged rounds
    "hidden-entropy",       # global RNG advanced between supersteps
    "state-isolation",      # a machine touched another machine's state
    "machine-crash",        # a crashed machine spoke before being recovered
    "other",
)


def violation_kind(exc: BaseException) -> str:
    """The category of a strict violation (``"other"`` if untagged)."""
    kind = getattr(exc, "kind", "other")
    return kind if kind in VIOLATION_KINDS else "other"


#: Payloads may carry up to this factor more distinct scalars than their
#: declared word cost before strict mode calls the cost dishonest.
WORDS_SLACK_FACTOR = 2
#: Flat allowance for per-message routing/provenance metadata (source
#: ids, sequence positions) — Θ(1) identifiers per message that real
#: implementations pack into the Θ(log n)-bit word envelope.
WORDS_ROUTING_ALLOWANCE = 2


def strict_from_env(default: bool = False) -> bool:
    """Read the ``REPRO_STRICT`` switch (unset/"0"/"" mean off)."""
    value = os.environ.get("REPRO_STRICT")
    if value is None:
        return default
    return value.strip() not in ("", "0", "false", "no")


# ----------------------------------------------------------------------
# payload word-cost estimation
# ----------------------------------------------------------------------
def _scalar_leaves(payload: Any, out: set, depth: int = 0) -> None:
    if depth > 8 or payload is None or isinstance(payload, str):
        # Strings are protocol tags (message type markers), charged to the
        # Θ(log n)-bit word envelope, not counted as data.
        return
    if isinstance(payload, bool):
        out.add(int(payload))
    elif isinstance(payload, (int, float)):
        out.add(payload)
    elif isinstance(payload, (tuple, list, set, frozenset)):
        for item in payload:
            _scalar_leaves(item, out, depth + 1)
    elif isinstance(payload, dict):
        for key, value in payload.items():
            _scalar_leaves(key, out, depth + 1)
            _scalar_leaves(value, out, depth + 1)
    elif hasattr(payload, "__dict__"):
        for value in vars(payload).values():
            _scalar_leaves(value, out, depth + 1)
    elif hasattr(payload, "__slots__"):
        for name in payload.__slots__:
            _scalar_leaves(getattr(payload, name, None), out, depth + 1)
    else:
        try:  # numpy scalars and other number-likes
            out.add(float(payload))
        except (TypeError, ValueError):
            pass


def estimate_payload_words(payload: Any) -> int:
    """A conservative lower bound on the words a payload must occupy.

    Counts *distinct* numeric scalars reachable in the payload: repeated
    values (shared endpoints, tie-break copies) compress to one word,
    strings count as tags, structure is free.  By construction this
    never exceeds the true information content, so a declared cost far
    below it is a genuine understatement.
    """
    leaves: set = set()
    _scalar_leaves(payload, leaves)
    return len(leaves)


def check_message_words(src: int, dst: int, payload: Any, words: int) -> None:
    """Raise if ``words`` grossly understates the payload's content.

    The tolerance is ``2·words + 2``: a factor for shared structure and
    tuple framing plus a flat routing-metadata allowance.  Anything past
    that cannot be absorbed by Θ(log n)-bit words and means the ledger
    is charging fewer words than the protocol actually moves.
    """
    estimate = estimate_payload_words(payload)
    if estimate > WORDS_SLACK_FACTOR * words + WORDS_ROUTING_ALLOWANCE:
        raise StrictModeViolation(
            f"message {src}->{dst} declares {words} word(s) but its payload "
            f"carries at least {estimate} distinct scalars "
            f"({payload!r:.120}); the ledger is being undercharged",
            kind="undercharged-words",
        )


# ----------------------------------------------------------------------
# hidden-entropy detection
# ----------------------------------------------------------------------
def _rng_fingerprint() -> Tuple[int, Optional[bytes]]:
    state = hash(random.getstate())  # simlint: disable=SIM003 reading RNG state to *detect* its use, not to derive protocol decisions
    np_state: Optional[bytes] = None
    try:
        import numpy as np

        legacy = np.random.get_state()  # simlint: disable=SIM003 reading RNG state to *detect* its use, not to derive protocol decisions
        np_state = bytes(legacy[1].data) + str((legacy[0], *legacy[2:])).encode()
    except Exception:  # pragma: no cover - numpy always present in this repo
        np_state = None
    return state, np_state


@dataclass
class EntropyGuard:
    """Detects consumption of global RNG state between checkpoints."""

    _last: Tuple[int, Optional[bytes]] = field(default_factory=_rng_fingerprint)

    def check(self, where: str) -> None:
        current = _rng_fingerprint()
        if current != self._last:
            self._last = current
            raise StrictModeViolation(
                f"global RNG state advanced before {where}: protocol code "
                "consumed random/numpy.random global entropy — thread a "
                "seeded Generator instead",
                kind="hidden-entropy",
            )
        self._last = current

    def resync(self) -> None:
        """Accept the current global state (e.g. after user code ran)."""
        self._last = _rng_fingerprint()


# ----------------------------------------------------------------------
# machine-state isolation (dynamic SIM002)
# ----------------------------------------------------------------------
@dataclass
class _ActiveMachine:
    """Shared cell naming the machine whose program is executing."""

    mid: Optional[int] = None


class GuardedState(Dict[str, Any]):
    """A program's state dict that only its owning machine may touch."""

    __slots__ = ("_owner", "_active")

    def __init__(
        self, data: Dict[str, Any], owner: int, active: _ActiveMachine
    ) -> None:
        super().__init__(data)
        self._owner = owner
        self._active = active

    def _check(self, op: str) -> None:
        mid = self._active.mid
        if mid is not None and mid != self._owner:
            raise StrictModeViolation(
                f"machine {mid} {op} machine {self._owner}'s state — "
                "cross-machine facts must travel through the network",
                kind="state-isolation",
            )

    def __getitem__(self, key: Any) -> Any:
        self._check("read")
        return super().__getitem__(key)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._check("wrote")
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        self._check("deleted from")
        super().__delitem__(key)

    def __contains__(self, key: Any) -> bool:
        self._check("probed")
        return super().__contains__(key)

    def __iter__(self) -> Iterator[Any]:
        self._check("iterated")
        return super().__iter__()

    def get(self, key: Any, default: Any = None) -> Any:
        self._check("read")
        return super().get(key, default)

    def pop(self, *args: Any) -> Any:
        self._check("popped from")
        return super().pop(*args)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._check("wrote")
        return super().setdefault(key, default)

    def update(self, *args: Any, **kwargs: Any) -> None:
        self._check("wrote")
        super().update(*args, **kwargs)


def guard_states(programs: Any) -> _ActiveMachine:
    """Wrap every program's state for isolation; returns the active cell.

    The caller (``run_programs``) sets ``cell.mid`` to the machine whose
    callback is executing and resets it to None between callbacks; any
    access to a foreign state dict while a different machine is active
    raises.
    """
    cell = _ActiveMachine()
    for program in programs:
        if not isinstance(program.state, GuardedState):
            program.state = GuardedState(program.state, program.mid, cell)
    return cell
