"""Dynamic Steiner trees in the k-machine model (the paper's future work).

§9 names "expanding the approach to the problem of Steiner trees" as the
natural next step, observing the structure is "very similar to minimum
spanning trees".  This package prototypes exactly that: the classic
MST-induced Steiner approximation (prune the spanning forest to the
union of terminal-to-terminal paths — the Steiner subtree of the MSF),
maintained batch-dynamically.

The punchline is how little new machinery it needs: terminal membership
of an MST edge is the *same interval-counting predicate* the §6.1 batch
addition uses for M' (an edge is in the Steiner subtree iff some but not
all terminals lie below it — :func:`repro.core.decomposition.in_m_prime`
with A = terminals).  Terminal and edge updates both cost O(batch/k + 1)
rounds.
"""

from repro.steiner.dynamic import DynamicSteinerTree

__all__ = ["DynamicSteinerTree"]
