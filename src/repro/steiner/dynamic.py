"""Batch-dynamic MST-induced Steiner approximation.

State: a :class:`~repro.core.api.DynamicMST` plus a replicated terminal
set (terminal churn is broadcast, O(t/k + 1) rounds per batch).  Every
machine holds the current terminals' parent intervals, so each machine
knows *locally* which of its MST edges are Steiner edges — queries are
free, maintenance is one broadcast batch per change.

Quality: on the metric closure this pruned tree is the classic
2-approximation; on the raw graph it is the best Steiner subtree
available inside the maintained MSF (exact when all vertices are
terminals, where it degenerates to the MSF itself).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.comm.rerouting import scheduled_broadcasts
from repro.core.api import BatchReport, DynamicMST
from repro.core.decomposition import in_m_prime
from repro.errors import InconsistentUpdate
from repro.graphs.graph import Edge
from repro.graphs.streams import Update
from repro.sim.message import WORDS_ID


class DynamicSteinerTree:
    """Maintain the Steiner subtree of the dynamic MSF over a terminal set."""

    def __init__(self, dm: DynamicMST, terminals: Iterable[int] = ()) -> None:
        self.dm = dm
        self.terminals: Set[int] = set()
        #: replicated: terminal -> (tour id, parent interval) in current labels
        self._anchor: Dict[int, Tuple[int, Tuple[int, int]]] = {}
        if terminals:
            self.update_terminals(add=terminals)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def update_terminals(
        self, add: Iterable[int] = (), remove: Iterable[int] = ()
    ) -> BatchReport:
        """Apply a batch of terminal insertions/removals.

        Cost: O((|add| + |remove|)/k + 1) rounds — removals are free
        locally (the set is replicated), insertions broadcast nothing new
        beyond membership, and the anchor refresh re-broadcasts every
        terminal's parent interval (O(t/k + 1)).
        """
        add, remove = set(add), set(remove)
        if add & remove:
            raise InconsistentUpdate("terminal added and removed in one batch")
        unknown = [x for x in add | remove if not self.dm.shadow.has_vertex(x)]
        if unknown:
            raise InconsistentUpdate(f"unknown vertices {unknown}")
        missing = [x for x in remove if x not in self.terminals]
        if missing:
            raise InconsistentUpdate(f"not terminals: {missing}")
        before = self.dm.net.ledger.snapshot()
        self.terminals |= add
        self.terminals -= remove
        for x in remove:
            self._anchor.pop(x, None)
        self._refresh_anchors()
        delta = self.dm.net.ledger.since(before)
        return BatchReport(
            size=len(add) + len(remove), rounds=delta.rounds,
            messages=delta.messages, words=delta.words, mode="terminals",
        )

    def apply_batch(self, batch: Sequence[Update]) -> BatchReport:
        """Forward an edge-update batch to the MST, then refresh anchors.

        Anchor refresh costs O(t/k + 1) rounds; a production variant
        would transform the replicated intervals through the same
        Lemma 5.9 scripts the machines already apply (zero extra
        communication) — we re-broadcast for simplicity and charge it.
        """
        report = self.dm.apply_batch(batch)
        self._refresh_anchors()
        return report

    def _refresh_anchors(self) -> None:
        net, vp, states = self.dm.net, self.dm.vp, self.dm.states
        reqs = []
        for x in sorted(self.terminals):
            st = states[vp.home(x)]
            tid = st.tour_of[x]
            interval = st.parent_interval(x)
            if interval is None:
                interval = (-1, st.tour_size.get(tid, 0))
            reqs.append((vp.home(x), ("steiner_anchor", x, tid, interval), WORDS_ID * 4))
        got = scheduled_broadcasts(net, reqs)
        self._anchor = {
            x: (tid, tuple(interval)) for _src, (_t, x, tid, interval) in got
        }

    # ------------------------------------------------------------------
    # queries (local; every machine can answer for its own edges)
    # ------------------------------------------------------------------
    def _entries_by_tour(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {}
        for x, (tid, interval) in self._anchor.items():
            out.setdefault(tid, []).append(interval[0])
        return out

    def is_steiner_edge(self, u: int, v: int) -> bool:
        """Membership test, answerable locally by either home machine."""
        st = self.dm.states[self.dm.vp.home(min(u, v))]
        ete = st.mst.get((min(u, v), max(u, v)))
        if ete is None:
            return False
        entries = self._entries_by_tour().get(ete.tour)
        if not entries or len(entries) < 2:
            return False
        return in_m_prime(ete.labels(), entries)

    def steiner_edges(self) -> Set[Edge]:
        """The maintained Steiner subtree (union of machine-local views)."""
        entries_by_tour = self._entries_by_tour()
        out: Dict[Tuple[int, int], Edge] = {}
        for st in self.dm.states:
            for (u, v), ete in st.mst.items():
                entries = entries_by_tour.get(ete.tour)
                if entries and len(entries) >= 2 and in_m_prime(ete.labels(), entries):
                    out[(u, v)] = ete.as_edge()
        return set(out.values())

    def weight(self) -> float:
        return sum(e.weight for e in self.steiner_edges())

    def connected_terminal_groups(self) -> int:
        """Number of tours containing at least one terminal."""
        return len({tid for (tid, _i) in self._anchor.values()})
