"""Streaming ingestion in front of the batch-dynamic core (ROADMAP item 4).

The paper fixes the batch size at Θ(k) (Theorem 6.1) / Θ(S) (MPC §8)
and leaves *when to cut a batch* to the system.  This package is that
system: a deterministic admission buffer + coalescer
(:mod:`repro.stream.coalescer`), pluggable cut policies
(:mod:`repro.stream.policy`), and the tick-clocked ingestor
(:mod:`repro.stream.ingest`) that rides the throughput/staleness
frontier.  Scheduling is host-side and charges zero rounds; the
ledger-charged core is untouched.

    >>> from repro.core import DynamicMST
    >>> from repro.stream import make_shape
    >>> stream = make_shape("sliding-window", seed=0, ticks=12, rate=4)
    >>> dm = DynamicMST.build(stream.initial, k=8, rng=0, init="free")
    >>> report = dm.ingest(stream, policy="adaptive", coalesce=True)
    >>> report.shipped <= report.admitted
    True
"""

from repro.stream.coalescer import AdmissionBuffer, CoalescingBuffer, CutResult
from repro.stream.ingest import StreamIngestor, StreamReport
from repro.stream.metrics import FrontierPoint, percentile
from repro.stream.policy import (
    POLICIES,
    AdaptivePolicy,
    AdaptStep,
    BatchPolicy,
    DeadlinePolicy,
    FixedSizePolicy,
    SchedulerView,
    make_policy,
)
from repro.stream.shapes import SHAPES, make_shape, shape_names

__all__ = [
    "AdmissionBuffer",
    "CoalescingBuffer",
    "CutResult",
    "StreamIngestor",
    "StreamReport",
    "FrontierPoint",
    "percentile",
    "POLICIES",
    "BatchPolicy",
    "FixedSizePolicy",
    "DeadlinePolicy",
    "AdaptivePolicy",
    "AdaptStep",
    "SchedulerView",
    "make_policy",
    "SHAPES",
    "make_shape",
    "shape_names",
]
