"""Admission buffers: the raw FIFO and the coalescing normaliser.

Both buffers sit between an :class:`~repro.graphs.streams.ArrivalStream`
and the batch-dynamic core.  They admit one raw update at a time and,
when the scheduler decides to cut, emit a list of *sub-batches* that are
each valid :meth:`~repro.core.api.DynamicMST.apply_batch` input: no edge
pair appears twice within one sub-batch, and every update is consistent
against the applied graph at the moment its sub-batch lands.

:class:`AdmissionBuffer` ships every admitted update (the uncoalesced
baseline).  :class:`CoalescingBuffer` normalises churn before it costs
any rounds:

* duplicate inserts / duplicate deletes of the same pair dedup
  (last-write-wins on the weight for inserts);
* an insert chased by a delete of the same still-queued edge
  *annihilates* — neither update ships;
* a delete of an applied edge followed by a re-insert collapses to a
  *re-weight*, shipped as delete + add split across two sub-batches.

The per-pair state machine is relative to the **applied** graph (what
the cluster has actually executed), so a cut may select any prefix of
pending entries: pairs are independent, and each entry's net effect is
valid against the applied graph whether or not other entries ship in
the same cut.  Coalescing therefore never changes the final graph — it
only reduces how many updates reach the Θ(k)/Θ(S) machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graphs.streams import Update

Pair = Tuple[int, int]


@dataclass
class CutResult:
    """What one scheduler cut hands to the batch machinery."""

    #: Pair-disjoint sub-batches, to be applied in order.
    batches: List[List[Update]]
    #: Arrival tick of every raw update the cut ships (one entry per
    #: shipped update; a re-weight contributes its delete's and its
    #: add's ticks).
    shipped_ticks: List[int]

    @property
    def shipped(self) -> int:
        return len(self.shipped_ticks)


class AdmissionBuffer:
    """The uncoalesced baseline: a FIFO that ships everything it admits.

    A cut takes the oldest ``limit`` updates in arrival order and splits
    them into consecutive sub-batches, starting a new sub-batch whenever
    the current one already touches the pair or is ``max_batch`` full.
    Order preservation plus per-emission stream consistency make every
    sub-batch valid at its application point.
    """

    coalesces = False

    def __init__(self) -> None:
        self._q: List[Tuple[int, Update]] = []
        self.admitted = 0
        self.absorbed = 0

    def admit(self, update: Update, arrival_tick: int, now: int) -> None:
        self.admitted += 1
        self._q.append((arrival_tick, update))

    @property
    def pending_cost(self) -> int:
        """Updates that would ship if everything were cut now."""
        return len(self._q)

    @property
    def oldest_tick(self) -> Optional[int]:
        return self._q[0][0] if self._q else None

    def pending_pairs(self) -> set:
        """Edge pairs with at least one queued update (validation overlay)."""
        return {upd.endpoints for _, upd in self._q}

    def cut(self, limit: int, max_batch: int) -> CutResult:
        take = self._q[: max(limit, 1)]
        del self._q[: max(limit, 1)]
        batches: List[List[Update]] = []
        cur: List[Update] = []
        pairs: set = set()
        ticks: List[int] = []
        for tick, upd in take:
            if upd.endpoints in pairs or len(cur) >= max_batch:
                batches.append(cur)
                cur, pairs = [], set()
            cur.append(upd)
            pairs.add(upd.endpoints)
            ticks.append(tick)
        if cur:
            batches.append(cur)
        return CutResult(batches=batches, shipped_ticks=ticks)

    def drain_resolved(self) -> List[int]:
        """Latencies of arrivals resolved without shipping (always none)."""
        return []


@dataclass
class _Entry:
    """Net pending effect for one edge pair, relative to the applied graph.

    ``kind`` is "add" (pair absent in the applied graph, insert queued),
    "delete" (pair present, removal queued) or "reweight" (pair present,
    delete + re-insert queued).  ``ticks`` holds the arrival tick of each
    raw update the entry still represents — exactly one for add/delete,
    exactly two (delete's, then add's) for reweight — so its length is
    the entry's shipping cost.
    """

    kind: str
    weight: Optional[float]
    ticks: List[int] = field(default_factory=list)

    @property
    def cost(self) -> int:
        return 2 if self.kind == "reweight" else 1


class CoalescingBuffer:
    """Per-pair coalescing admission buffer (dedup / annihilate / LWW)."""

    coalesces = True

    def __init__(self) -> None:
        # Insertion-ordered: the first entry is always the one whose
        # earliest pending arrival is oldest, because an entry's ticks[0]
        # is its creation tick and entries only leave by shipping or
        # annihilating.
        self._entries: Dict[Pair, _Entry] = {}
        self._cost = 0
        self._resolved: List[int] = []
        self.admitted = 0
        self.absorbed = 0

    def _absorb(self, arrival_tick: int, now: int) -> None:
        self.absorbed += 1
        self._resolved.append(max(now - arrival_tick, 0))

    def admit(self, update: Update, arrival_tick: int, now: int) -> None:
        self.admitted += 1
        pair = update.endpoints
        e = self._entries.get(pair)
        if e is None:
            self._entries[pair] = _Entry(update.kind, update.weight, [arrival_tick])
            self._cost += 1
            return
        if update.kind == "add":
            if e.kind == "delete":
                # Delete of an applied edge chased by a re-insert: a
                # re-weight — both raw updates still ship.
                e.kind = "reweight"
                e.weight = update.weight
                e.ticks.append(arrival_tick)
                self._cost += 1
            else:
                # Duplicate insert ("add" or the re-insert leg of a
                # "reweight"): last write wins on the weight.
                self._absorb(e.ticks.pop(), now)
                e.weight = update.weight
                e.ticks.append(arrival_tick)
        else:
            if e.kind == "add":
                # Queued insert annihilated before it ever cost a round;
                # the delete itself is absorbed too.
                del self._entries[pair]
                self._cost -= 1
                for t in e.ticks:
                    self._absorb(t, now)
                self._absorb(arrival_tick, now)
            elif e.kind == "delete":
                # Duplicate delete: drop the newcomer.
                self._absorb(arrival_tick, now)
            else:
                # Re-weight chased by a delete: net effect is the plain
                # delete of the applied edge (the re-insert annihilates).
                self._absorb(e.ticks[1], now)
                self._absorb(arrival_tick, now)
                e.kind = "delete"
                e.weight = None
                e.ticks = [e.ticks[0]]
                self._cost -= 1

    @property
    def pending_cost(self) -> int:
        """Updates that would ship if everything were cut now."""
        return self._cost

    @property
    def oldest_tick(self) -> Optional[int]:
        if not self._entries:
            return None
        return next(iter(self._entries.values())).ticks[0]

    def pending_pairs(self) -> set:
        """Edge pairs with a live pending entry (validation overlay)."""
        return set(self._entries)

    def cut(self, limit: int, max_batch: int) -> CutResult:
        take: List[Tuple[Pair, _Entry]] = []
        cost = 0
        for pair, e in self._entries.items():
            if take and cost + e.cost > max(limit, 1):
                break
            take.append((pair, e))
            cost += e.cost
        first_wave: List[Update] = []   # deletes, adds, re-weight deletes
        second_wave: List[Update] = []  # re-weight re-inserts
        ticks: List[int] = []
        for pair, e in take:
            del self._entries[pair]
            self._cost -= e.cost
            if e.kind == "add":
                first_wave.append(Update.add(*pair, e.weight))
            elif e.kind == "delete":
                first_wave.append(Update.delete(*pair))
            else:
                first_wave.append(Update.delete(*pair))
                second_wave.append(Update.add(*pair, e.weight))
            ticks.extend(e.ticks)
        batches = _chunk(first_wave, max_batch) + _chunk(second_wave, max_batch)
        return CutResult(batches=batches, shipped_ticks=ticks)

    def drain_resolved(self) -> List[int]:
        """Latencies of arrivals coalesced away since the last drain."""
        out, self._resolved = self._resolved, []
        return out


def _chunk(wave: List[Update], max_batch: int) -> List[List[Update]]:
    size = max(max_batch, 1)
    return [wave[i : i + size] for i in range(0, len(wave), size)]
