"""The streaming ingestor: the tick loop that drives arrivals into batches.

:class:`StreamIngestor` replays an :class:`~repro.graphs.streams.ArrivalStream`
against a live :class:`~repro.core.api.DynamicMST` (or its MPC subclass)
under a :class:`~repro.stream.policy.BatchPolicy`.  Time is modelled in
*ticks*, one tick per communication round — the convention of
:mod:`repro.core.stream_driver`:

* arrivals whose tick has come are admitted into the buffer (raw FIFO or
  coalescing, see :mod:`repro.stream.coalescer`);
* the policy inspects the queue and either waits (the clock advances one
  tick) or cuts; a cut's sub-batches are applied back-to-back and the
  clock advances by ``max(1, rounds charged)``;
* an update's *staleness* is the tick its batch completes minus the tick
  it arrived; coalesced-away updates resolve at the moment the
  absorbing update is admitted.

Everything here is host-side bookkeeping: the ledger sees exactly the
``apply_batch`` calls and nothing else, so scheduling charges zero
rounds, and the whole loop is a deterministic function of (stream,
policy, capacity) — wall-clock is read only to report throughput, never
to decide anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.graphs.mst import forest_digest
from repro.graphs.streams import ArrivalStream
from repro.stream.coalescer import AdmissionBuffer, CoalescingBuffer
from repro.stream.metrics import FrontierPoint, percentile
from repro.stream.policy import BatchPolicy, SchedulerView, make_policy


@dataclass
class StreamReport:
    """Outcome and cost of one streamed run."""

    policy: str
    coalesced: bool
    admitted: int
    shipped: int
    absorbed: int
    cuts: int
    batches: int
    rounds: int
    messages: int
    words: int
    elapsed_ticks: int
    wall_s: float
    p50_ticks: float
    p99_ticks: float
    peak_queue_depth: int
    msf_weight: float
    forest_digest: str
    cut_reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def updates_per_s(self) -> float:
        """Raw admitted arrivals per wall second (offered-load throughput)."""
        return self.admitted / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def rounds_per_update(self) -> float:
        return self.rounds / self.admitted if self.admitted else 0.0

    def frontier_point(self, shape: str) -> FrontierPoint:
        return FrontierPoint(
            shape=shape,
            policy=self.policy,
            coalesced=self.coalesced,
            updates_per_s=self.updates_per_s,
            p50_ticks=self.p50_ticks,
            p99_ticks=self.p99_ticks,
            rounds_per_update=self.rounds_per_update,
            shipped_fraction=self.shipped / self.admitted if self.admitted else 0.0,
            forest_digest=self.forest_digest,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "coalesced": self.coalesced,
            "admitted": self.admitted,
            "shipped": self.shipped,
            "absorbed": self.absorbed,
            "cuts": self.cuts,
            "batches": self.batches,
            "rounds": self.rounds,
            "messages": self.messages,
            "words": self.words,
            "elapsed_ticks": self.elapsed_ticks,
            "wall_s": self.wall_s,
            "updates_per_s": self.updates_per_s,
            "rounds_per_update": self.rounds_per_update,
            "p50_ticks": self.p50_ticks,
            "p99_ticks": self.p99_ticks,
            "peak_queue_depth": self.peak_queue_depth,
            "msf_weight": self.msf_weight,
            "forest_digest": self.forest_digest,
            "cut_reasons": dict(self.cut_reasons),
        }


class StreamIngestor:
    """Admission buffer + batch scheduler in front of a dynamic-MST core."""

    def __init__(
        self,
        dm,
        policy: Union[str, BatchPolicy] = "adaptive",
        coalesce: bool = True,
        max_batch: Optional[int] = None,
        **policy_kwargs: object,
    ) -> None:
        capacity = dm.batch_capacity
        self.dm = dm
        self.max_batch = max_batch if max_batch is not None else capacity
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if isinstance(policy, BatchPolicy):
            self.policy = policy
        else:
            self.policy = make_policy(policy, capacity, **policy_kwargs)
        self.coalesce = coalesce
        self.buffer = CoalescingBuffer() if coalesce else AdmissionBuffer()

    def run(self, arrivals: ArrivalStream) -> StreamReport:
        """Replay the whole stream; returns the run's frontier numbers."""
        dm, buf, policy = self.dm, self.buffer, self.policy
        ledger = dm.net.ledger
        recorder = ledger.recorder
        arr = arrivals.arrivals
        i = 0
        now = 0
        cuts = 0
        batches_applied = 0
        peak_queue = 0
        latencies: List[int] = []
        reasons: Dict[str, int] = {}
        run_before = ledger.snapshot()
        t0 = time.perf_counter()  # simlint: disable=SIM003 host-side throughput report; never feeds a scheduling or protocol decision
        while i < len(arr) or buf.pending_cost:
            while i < len(arr) and arr[i].tick <= now:
                buf.admit(arr[i].update, arr[i].tick, now)
                i += 1
            depth = buf.pending_cost
            peak_queue = max(peak_queue, depth)
            exhausted = i >= len(arr)
            oldest = buf.oldest_tick
            age = now - oldest if oldest is not None else 0
            reason = (
                policy.should_cut(SchedulerView(tick=now, queue_depth=depth, oldest_age=age))
                if depth
                else None
            )
            if reason is None and exhausted and depth:
                reason = "flush"
            if reason is None:
                if exhausted:
                    break
                # Nothing to do this tick: idle forward (jump straight to
                # the next arrival when the queue is empty).
                now = arr[i].tick if depth == 0 else now + 1
                continue
            cut = buf.cut(policy.target, self.max_batch)
            before = ledger.snapshot()
            for batch in cut.batches:
                dm.apply_batch(batch)
                batches_applied += 1
            delta = ledger.since(before)
            now += max(1, delta.rounds)
            for t in cut.shipped_ticks:
                latencies.append(max(now - t, 0))
            latencies.extend(buf.drain_resolved())
            cuts += 1
            reasons[reason] = reasons.get(reason, 0) + 1
            if recorder is not None:
                recorder.emit(
                    "sched_cut",
                    policy=policy.name,
                    reason=reason,
                    raw=len(cut.shipped_ticks),
                    shipped=cut.shipped,
                    queue_depth=buf.pending_cost,
                    tick=now,
                    oldest_age=age,
                    target=policy.target,
                    batches=len(cut.batches),
                )
            step = policy.observe_cut(buf.pending_cost)
            if step is not None and recorder is not None:
                recorder.emit(
                    "sched_adapt",
                    policy=policy.name,
                    target=step.target,
                    previous=step.previous,
                    signal=step.signal,
                    tick=now,
                )
        wall = time.perf_counter() - t0  # simlint: disable=SIM003 host-side throughput report; never feeds a scheduling or protocol decision
        latencies.extend(buf.drain_resolved())
        run_delta = ledger.since(run_before)
        report = StreamReport(
            policy=policy.name,
            coalesced=self.coalesce,
            admitted=buf.admitted,
            shipped=buf.admitted - buf.absorbed,
            absorbed=buf.absorbed,
            cuts=cuts,
            batches=batches_applied,
            rounds=run_delta.rounds,
            messages=run_delta.messages,
            words=run_delta.words,
            elapsed_ticks=now,
            wall_s=wall,
            p50_ticks=percentile(latencies, 50),
            p99_ticks=percentile(latencies, 99),
            peak_queue_depth=peak_queue,
            msf_weight=dm.total_weight(),
            forest_digest=forest_digest(dm.msf_edges()),
            cut_reasons=reasons,
        )
        if recorder is not None:
            recorder.emit(
                "stream_end",
                admitted=report.admitted,
                shipped=report.shipped,
                cuts=report.cuts,
                elapsed_ticks=report.elapsed_ticks,
                batches=report.batches,
                absorbed=report.absorbed,
                p50_ticks=report.p50_ticks,
                p99_ticks=report.p99_ticks,
            )
        return report
