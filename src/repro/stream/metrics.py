"""Frontier arithmetic: staleness quantiles and throughput points."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence


def percentile(values: Sequence[int], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a sequence; 0 if empty."""
    if not values:
        return 0.0
    s = sorted(values)
    idx = min(len(s) - 1, max(0, math.ceil(q / 100.0 * len(s)) - 1))
    return float(s[idx])


@dataclass(frozen=True)
class FrontierPoint:
    """One (shape × policy × coalescing) point on the frontier plot.

    ``updates_per_s`` is raw admitted arrivals per wall second (the work
    the stream offered, not the post-coalescing residue — so coalescing
    improvements show up as throughput, not as a smaller denominator);
    ``p50_ticks``/``p99_ticks`` are staleness quantiles in arrival
    ticks; ``rounds_per_update`` charges the ledger's rounds against
    admitted arrivals.
    """

    shape: str
    policy: str
    coalesced: bool
    updates_per_s: float
    p50_ticks: float
    p99_ticks: float
    rounds_per_update: float
    shipped_fraction: float
    forest_digest: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "shape": self.shape,
            "policy": self.policy,
            "coalesced": self.coalesced,
            "updates_per_s": self.updates_per_s,
            "p50_ticks": self.p50_ticks,
            "p99_ticks": self.p99_ticks,
            "rounds_per_update": self.rounds_per_update,
            "shipped_fraction": self.shipped_fraction,
            "forest_digest": self.forest_digest,
        }
