"""Batch-cut policies: when does the scheduler turn the buffer into work?

A policy looks at a :class:`SchedulerView` — the host-side queue state at
the current tick — and answers "cut now?" with a reason string.  It never
touches the ledger: scheduling charges zero rounds, the Θ(k)/Θ(S) core
is what it always was.  Three policies span the frontier:

``fixed``
    The paper's stance: cut exactly when a full Θ(k) (k-machine) or
    Θ(S) (MPC) batch is available.  Maximum amortisation, unbounded
    staleness under a slow trickle.

``deadline``
    Latency-bounded: cut a full batch when available, but never let the
    oldest queued update wait more than ``deadline`` ticks.  The
    low-staleness end of the frontier.

``adaptive``
    Queue-pressure AIMD on the cut size: grow the target additively (by
    one capacity) while a cut leaves backlog behind, halve it back
    toward capacity when the queue fully drains.  Under burst or
    backlog the scheduler cuts bigger and bigger slices — more
    coalescing window, fewer per-batch fixed costs — and relaxes when
    the stream quiets down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass(frozen=True)
class SchedulerView:
    """What a policy may observe: host-side queue state, never graph state."""

    tick: int
    queue_depth: int   # updates that would ship if everything were cut
    oldest_age: int    # ticks the oldest pending update has waited


@dataclass(frozen=True)
class AdaptStep:
    """One AIMD move of an adaptive policy's cut-size target."""

    previous: int
    target: int
    signal: str  # "backlog" or "drained"


class BatchPolicy:
    """Base class; subclasses decide when to cut and how much to take."""

    name = "?"

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("batch capacity must be positive")
        self.capacity = capacity

    @property
    def target(self) -> int:
        """How many updates the next cut should take (≥ 1)."""
        return self.capacity

    def should_cut(self, view: SchedulerView) -> Optional[str]:
        """Return a cut reason ("size", "deadline", …) or None to wait."""
        raise NotImplementedError

    def observe_cut(self, queue_depth_after: int) -> Optional[AdaptStep]:
        """Feedback after a cut; adaptive policies may move their target."""
        return None


class FixedSizePolicy(BatchPolicy):
    """The Θ(k)/Θ(S) baseline: cut exactly at one full batch."""

    name = "fixed"

    def should_cut(self, view: SchedulerView) -> Optional[str]:
        return "size" if view.queue_depth >= self.capacity else None


class DeadlinePolicy(BatchPolicy):
    """Cut at a full batch, or when the oldest update hits the deadline."""

    name = "deadline"

    def __init__(self, capacity: int, deadline: int = 4) -> None:
        super().__init__(capacity)
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.deadline = deadline

    def should_cut(self, view: SchedulerView) -> Optional[str]:
        if view.queue_depth >= self.capacity:
            return "size"
        if view.queue_depth and view.oldest_age >= self.deadline:
            return "deadline"
        return None


class AdaptivePolicy(BatchPolicy):
    """Queue-pressure AIMD: additive-increase the cut target under
    backlog, multiplicatively decay it when the queue drains."""

    name = "adaptive"

    def __init__(
        self,
        capacity: int,
        deadline: int = 8,
        max_target_factor: int = 32,
    ) -> None:
        super().__init__(capacity)
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.deadline = deadline
        self.max_target = capacity * max(max_target_factor, 1)
        self._target = capacity

    @property
    def target(self) -> int:
        return self._target

    def should_cut(self, view: SchedulerView) -> Optional[str]:
        if view.queue_depth >= self._target:
            return "size"
        if view.queue_depth and view.oldest_age >= self.deadline:
            return "deadline"
        return None

    def observe_cut(self, queue_depth_after: int) -> Optional[AdaptStep]:
        prev = self._target
        if queue_depth_after >= self._target:
            self._target = min(self._target + self.capacity, self.max_target)
            signal = "backlog"
        elif queue_depth_after == 0 and self._target > self.capacity:
            self._target = max(self.capacity, self._target // 2)
            signal = "drained"
        else:
            return None
        if self._target == prev:
            return None
        return AdaptStep(previous=prev, target=self._target, signal=signal)


POLICIES: Dict[str, Callable[..., BatchPolicy]] = {
    FixedSizePolicy.name: FixedSizePolicy,
    DeadlinePolicy.name: DeadlinePolicy,
    AdaptivePolicy.name: AdaptivePolicy,
}


def make_policy(name: str, capacity: int, **kwargs: object) -> BatchPolicy:
    """Instantiate a registered policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown batch policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
    return cls(capacity, **kwargs)
