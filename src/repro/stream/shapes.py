"""Named stream shapes for the frontier harness, CLI, and CI smoke.

Each shape is a seeded builder producing an
:class:`~repro.graphs.streams.ArrivalStream`; the bench sweep, the
``repro stream`` subcommand, and the tests all draw from this registry
so "sliding-window at seed 0" means the same workload everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graphs.generators import random_weighted_graph
from repro.graphs.graph import WeightedGraph
from repro.graphs.streams import (
    ArrivalStream,
    adversarial_arrival_stream,
    flash_crowd_arrival_stream,
    sliding_window_arrival_stream,
    uniform_arrival_stream,
)


def _uniform(seed: int, ticks: int, rate: int) -> ArrivalStream:
    initial = random_weighted_graph(48, 96, rng=seed)
    return uniform_arrival_stream(initial, float(rate), ticks, rng=seed + 1)


def _sliding_window(seed: int, ticks: int, rate: int) -> ArrivalStream:
    return sliding_window_arrival_stream(48, 4, rate, ticks, rng=seed + 1)


def _flash_crowd(seed: int, ticks: int, rate: int) -> ArrivalStream:
    initial = random_weighted_graph(40, 80, rng=seed)
    return flash_crowd_arrival_stream(
        initial,
        base_rate=max(rate / 4.0, 1.0),
        n_ticks=ticks,
        burst_every=8,
        burst_size=6 * rate,
        hotspot=8,
        rng=seed + 1,
    )


def _adversarial(seed: int, ticks: int, rate: int) -> ArrivalStream:
    # The Theorem 7.1 clique instance must land on pairs absent from the
    # initial graph, so the waves run over an initially empty graph.
    initial = WeightedGraph(range(24))
    return adversarial_arrival_stream(
        initial, range(16), float(rate), waves=max(ticks // 8, 2), rng=seed + 1
    )


SHAPES: Dict[str, Callable[[int, int, int], ArrivalStream]] = {
    "uniform": _uniform,
    "sliding-window": _sliding_window,
    "flash-crowd": _flash_crowd,
    "adversarial": _adversarial,
}


def shape_names() -> List[str]:
    return sorted(SHAPES)


def make_shape(name: str, seed: int = 0, ticks: int = 24, rate: int = 8) -> ArrivalStream:
    """Build a named arrival stream (same name+args ⇒ same stream)."""
    try:
        builder = SHAPES[name]
    except KeyError:
        raise ValueError(
            f"unknown stream shape {name!r}; known: {shape_names()}"
        ) from None
    return builder(seed, ticks, rate)
