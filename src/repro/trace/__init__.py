"""repro.trace — structured round-event tracing and metrics export.

The observability layer over the round-accurate simulator: attach a
:class:`TraceRecorder` to a ledger and every superstep, charge, phase
boundary, strict violation and engine selection becomes one line of
schema-versioned JSONL; roll traces into per-phase / per-machine
metrics (:mod:`repro.trace.report`); and, when two runs that should be
ledger-equivalent are not, locate the first divergent charge
(:mod:`repro.trace.diff`).

CLI surface: ``repro trace``, ``repro report``, ``repro trace-diff``.
"""

from repro.trace.diff import Divergence, first_divergence, render_divergence
from repro.trace.events import TRACE_SCHEMA, TraceFormatError, validate_events
from repro.trace.recorder import TraceRecorder, read_trace, recording
from repro.trace.report import render_text, summarize, to_json, to_prometheus
from repro.trace.scenarios import SCENARIOS, Scenario, get_scenario, run_traced

__all__ = [
    "TRACE_SCHEMA",
    "Divergence",
    "SCENARIOS",
    "Scenario",
    "TraceFormatError",
    "TraceRecorder",
    "first_divergence",
    "get_scenario",
    "read_trace",
    "recording",
    "render_divergence",
    "render_text",
    "run_traced",
    "summarize",
    "to_json",
    "to_prometheus",
    "validate_events",
]
